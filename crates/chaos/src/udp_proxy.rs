//! Real-socket UDP chaos proxy for the gateway backhaul.
//!
//! Sits between a live packet forwarder (`gateway::forwarder::client`)
//! and `netserver::udp::UdpIngest`: point the forwarder at
//! [`ChaosUdpProxy::addr`] instead of the server. Uplink datagrams
//! (forwarder → server) get the plan's backhaul faults — loss, delay +
//! jitter, duplication, reordering (via per-datagram holds); downlink
//! datagrams (server → forwarder) pass through untouched, so ACK and
//! PULL_RESP plumbing keeps working while the uplink path degrades.
//!
//! Fault decisions come from [`FaultSchedule::datagram_fate`] keyed by
//! the datagram's arrival sequence number, so the *pattern* of faults
//! is replayable even though wall-clock arrival times are not.

use crate::schedule::FaultSchedule;
use crate::DatagramFate;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct Stats {
    uplink_seen: AtomicU64,
    uplink_dropped: AtomicU64,
    uplink_duplicated: AtomicU64,
    downlink_seen: AtomicU64,
}

/// A UDP proxy applying scheduled backhaul faults to the uplink
/// direction. Times in the fault plan are µs since the proxy started.
pub struct ChaosUdpProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<Stats>,
    thread: Option<JoinHandle<()>>,
}

impl ChaosUdpProxy {
    /// Bind `127.0.0.1:0` and start proxying to `upstream` (the real
    /// server's address).
    pub fn start(upstream: SocketAddr, schedule: FaultSchedule) -> io::Result<ChaosUdpProxy> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        let addr = socket.local_addr()?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Stats::default());

        let loop_shutdown = Arc::clone(&shutdown);
        let loop_stats = Arc::clone(&stats);
        let thread = std::thread::Builder::new()
            .name("chaos-udp-proxy".into())
            .spawn(move || {
                let epoch = Instant::now();
                let client: Arc<Mutex<Option<SocketAddr>>> = Arc::new(Mutex::new(None));
                let mut seq = 0u64;
                let mut sleepers: Vec<JoinHandle<()>> = Vec::new();
                let mut buf = [0u8; 65_536];
                while !loop_shutdown.load(Ordering::SeqCst) {
                    let (n, peer) = match socket.recv_from(&mut buf) {
                        Ok(x) => x,
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            sleepers.retain(|h| !h.is_finished());
                            continue;
                        }
                        Err(_) => break,
                    };
                    if peer == upstream {
                        // Downlink: pass through to the last client.
                        loop_stats.downlink_seen.fetch_add(1, Ordering::Relaxed);
                        if let Some(c) = *client.lock().unwrap() {
                            let _ = socket.send_to(&buf[..n], c);
                        }
                        continue;
                    }
                    // Uplink: remember the return path, apply the fate.
                    *client.lock().unwrap() = Some(peer);
                    loop_stats.uplink_seen.fetch_add(1, Ordering::Relaxed);
                    let now_us = epoch.elapsed().as_micros() as u64;
                    let fate = schedule.datagram_fate(seq, now_us);
                    seq += 1;
                    match fate {
                        DatagramFate::Drop => {
                            loop_stats.uplink_dropped.fetch_add(1, Ordering::Relaxed);
                        }
                        DatagramFate::Deliver {
                            delay_us: 0,
                            copies: 1,
                            ..
                        } => {
                            let _ = socket.send_to(&buf[..n], upstream);
                        }
                        DatagramFate::Deliver {
                            delay_us,
                            copies,
                            copy_lag_us,
                        } => {
                            loop_stats
                                .uplink_duplicated
                                .fetch_add(u64::from(copies - 1), Ordering::Relaxed);
                            let payload = buf[..n].to_vec();
                            let out = socket.try_clone().expect("clone proxy socket");
                            sleepers.push(std::thread::spawn(move || {
                                std::thread::sleep(Duration::from_micros(delay_us));
                                let _ = out.send_to(&payload, upstream);
                                for _ in 1..copies {
                                    std::thread::sleep(Duration::from_micros(copy_lag_us));
                                    let _ = out.send_to(&payload, upstream);
                                }
                            }));
                        }
                    }
                }
                for h in sleepers {
                    let _ = h.join();
                }
            })?;

        Ok(ChaosUdpProxy {
            addr,
            shutdown,
            stats,
            thread: Some(thread),
        })
    }

    /// Address the packet forwarder should send to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Uplink datagrams seen so far.
    pub fn uplink_seen(&self) -> u64 {
        self.stats.uplink_seen.load(Ordering::Relaxed)
    }

    /// Uplink datagrams dropped by the fault plan.
    pub fn uplink_dropped(&self) -> u64 {
        self.stats.uplink_dropped.load(Ordering::Relaxed)
    }

    /// Extra uplink copies injected by the fault plan.
    pub fn uplink_duplicated(&self) -> u64 {
        self.stats.uplink_duplicated.load(Ordering::Relaxed)
    }

    /// Downlink datagrams passed through.
    pub fn downlink_seen(&self) -> u64 {
        self.stats.downlink_seen.load(Ordering::Relaxed)
    }

    /// Stop the proxy.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosUdpProxy {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultPlan, FaultSpec};
    use gateway::forwarder::client::PacketForwarder;
    use gateway::forwarder::codec::{GatewayEui, RxPacket, TxPacket};
    use lora_phy::channel::Channel;
    use lora_phy::types::SpreadingFactor;
    use netserver::udp::UdpIngest;

    fn rxpk(tmst: u64) -> RxPacket {
        RxPacket::new(
            tmst,
            Channel::khz125(916_900_000),
            SpreadingFactor::SF8,
            -100.0,
            5.0,
            &[0x40, 1, 2, 3],
        )
    }

    fn proxy_for(server: &UdpIngest, faults: Vec<FaultSpec>) -> ChaosUdpProxy {
        let schedule = FaultSchedule::compile(&FaultPlan { seed: 5, faults }).unwrap();
        ChaosUdpProxy::start(server.addr(), schedule).unwrap()
    }

    #[test]
    fn clean_proxy_is_transparent() {
        let server = UdpIngest::start().unwrap();
        let proxy = proxy_for(&server, vec![]);
        let mut fwd = PacketForwarder::new(proxy.addr(), GatewayEui(0x11)).unwrap();
        fwd.push(vec![rxpk(42)]).unwrap();
        let got = server.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.gateway, GatewayEui(0x11));
        assert_eq!(got.rxpk.tmst, 42);
        // Downlink passthrough: PULL then PULL_RESP through the proxy.
        fwd.pull().unwrap();
        let txpk = TxPacket {
            tmst: 9,
            freq: 916.9,
            datr: "SF9BW125".into(),
            powe: 14,
            size: 1,
            data: gateway::forwarder::b64::encode(&[0x60]),
        };
        server
            .send_downlink(GatewayEui(0x11), txpk.clone())
            .unwrap();
        assert_eq!(fwd.recv_downlink().unwrap(), txpk);
        assert!(proxy.uplink_seen() >= 2); // PUSH + PULL
        assert_eq!(proxy.uplink_dropped(), 0);
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn total_loss_blackholes_uplinks() {
        let server = UdpIngest::start().unwrap();
        let proxy = proxy_for(
            &server,
            vec![FaultSpec::BackhaulLoss {
                probability: 1.0,
                start_us: 0,
                end_us: u64::MAX,
            }],
        );
        let mut fwd = PacketForwarder::new(proxy.addr(), GatewayEui(0x22)).unwrap();
        // push() waits for an ACK that can never come; use the short-
        // timeout erroring path.
        let _ = fwd.push(vec![rxpk(1)]);
        assert!(server.recv_timeout(Duration::from_millis(300)).is_none());
        assert!(proxy.uplink_dropped() >= 1);
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn duplication_reaches_the_server_twice() {
        let server = UdpIngest::start().unwrap();
        let proxy = proxy_for(
            &server,
            vec![FaultSpec::BackhaulDuplicate {
                probability: 1.0,
                lag_us: 1_000,
                start_us: 0,
                end_us: u64::MAX,
            }],
        );
        let mut fwd = PacketForwarder::new(proxy.addr(), GatewayEui(0x33)).unwrap();
        let _ = fwd.push(vec![rxpk(7)]);
        let a = server.recv_timeout(Duration::from_secs(2)).unwrap();
        let b = server.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(a, b, "same uplink delivered twice");
        assert!(proxy.uplink_duplicated() >= 1);
        proxy.shutdown();
        server.shutdown();
    }
}
