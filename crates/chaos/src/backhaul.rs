//! Simulation-time backhaul fault model.
//!
//! [`FaultyLink`] is the socket-free twin of [`crate::udp_proxy`]: it
//! answers "when does each offered datagram arrive, if at all" so
//! server-side pipelines (`netserver::dedup`, forwarder replay tests)
//! can be driven through loss, latency, duplication and reordering in
//! virtual time, with the same per-datagram decisions the UDP proxy
//! would make for the same plan.

use crate::schedule::FaultSchedule;

/// What happens to one datagram crossing a faulty backhaul.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatagramFate {
    /// Dropped on the floor.
    Drop,
    /// Delivered after `delay_us`; `copies > 1` means duplicates follow,
    /// each `copy_lag_us` after the previous copy.
    Deliver {
        /// Delivery latency of the first copy, µs.
        delay_us: u64,
        /// Total copies delivered (1 = no duplication).
        copies: u32,
        /// Gap between consecutive copies, µs.
        copy_lag_us: u64,
    },
}

impl DatagramFate {
    /// Arrival times (µs) for a datagram sent at `sent_us`, oldest
    /// first. Empty when dropped.
    pub fn arrivals(&self, sent_us: u64) -> Vec<u64> {
        match *self {
            DatagramFate::Drop => Vec::new(),
            DatagramFate::Deliver {
                delay_us,
                copies,
                copy_lag_us,
            } => {
                let first = sent_us.saturating_add(delay_us);
                (0..copies as u64)
                    .map(|i| first.saturating_add(i * copy_lag_us))
                    .collect()
            }
        }
    }
}

/// One direction of a backhaul link with scheduled faults. Each offered
/// datagram takes the next sequence number; its fate is decided by the
/// schedule's seeded hash, so two links built from the same schedule see
/// the same fault pattern on replay.
#[derive(Debug, Clone)]
pub struct FaultyLink {
    schedule: FaultSchedule,
    next_seq: u64,
    offered: u64,
    dropped: u64,
    duplicated: u64,
}

impl FaultyLink {
    /// Wrap a compiled schedule as one backhaul direction.
    pub fn new(schedule: FaultSchedule) -> FaultyLink {
        FaultyLink {
            schedule,
            next_seq: 0,
            offered: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Offer a datagram to the link at `sent_us`; returns its arrival
    /// times on the far side (empty = lost).
    pub fn offer(&mut self, sent_us: u64) -> Vec<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.offered += 1;
        let fate = self.schedule.datagram_fate(seq, sent_us);
        match fate {
            DatagramFate::Drop => self.dropped += 1,
            DatagramFate::Deliver { copies, .. } if copies > 1 => {
                self.duplicated += u64::from(copies - 1);
            }
            DatagramFate::Deliver { .. } => {}
        }
        fate.arrivals(sent_us)
    }

    /// Datagrams offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Datagrams dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Extra copies created so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultPlan, FaultSpec};

    fn link(faults: Vec<FaultSpec>) -> FaultyLink {
        FaultyLink::new(FaultSchedule::compile(&FaultPlan { seed: 11, faults }).unwrap())
    }

    #[test]
    fn clean_link_delivers_instantly() {
        let mut l = link(vec![]);
        assert_eq!(l.offer(1_000), vec![1_000]);
        assert_eq!(l.offer(2_000), vec![2_000]);
        assert_eq!(l.offered(), 2);
        assert_eq!(l.dropped(), 0);
    }

    #[test]
    fn lossy_link_drops_and_counts() {
        let mut l = link(vec![FaultSpec::BackhaulLoss {
            probability: 0.5,
            start_us: 0,
            end_us: u64::MAX,
        }]);
        let mut delivered = 0;
        for i in 0..1_000 {
            if !l.offer(i).is_empty() {
                delivered += 1;
            }
        }
        assert_eq!(l.offered(), 1_000);
        assert_eq!(l.dropped(), 1_000 - delivered);
        assert!((400..600).contains(&delivered), "{delivered}");
    }

    #[test]
    fn duplicating_link_emits_lagged_copies() {
        let mut l = link(vec![FaultSpec::BackhaulDuplicate {
            probability: 1.0,
            lag_us: 10,
            start_us: 0,
            end_us: u64::MAX,
        }]);
        assert_eq!(l.offer(100), vec![100, 110]);
        assert_eq!(l.duplicated(), 1);
    }

    #[test]
    fn reordering_link_lets_later_datagrams_overtake() {
        let mut l = link(vec![FaultSpec::BackhaulReorder {
            probability: 0.5,
            hold_us: 1_000_000,
            start_us: 0,
            end_us: u64::MAX,
        }]);
        // With a huge hold, any held datagram arrives after every
        // unheld successor sent within the hold window.
        let mut arrivals = Vec::new();
        for i in 0..100u64 {
            let sent = i * 1_000;
            for a in l.offer(sent) {
                arrivals.push((a, i));
            }
        }
        arrivals.sort();
        let order: Vec<u64> = arrivals.iter().map(|&(_, i)| i).collect();
        let sorted = {
            let mut s = order.clone();
            s.sort();
            s
        };
        assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "nothing lost");
        assert_ne!(order, sorted, "some datagrams overtook others");
    }

    #[test]
    fn two_links_same_schedule_agree() {
        let faults = vec![
            FaultSpec::BackhaulLoss {
                probability: 0.3,
                start_us: 0,
                end_us: u64::MAX,
            },
            FaultSpec::BackhaulDelay {
                base_us: 500,
                jitter_us: 300,
                start_us: 0,
                end_us: u64::MAX,
            },
        ];
        let mut a = link(faults.clone());
        let mut b = link(faults);
        for i in 0..500 {
            assert_eq!(a.offer(i * 7), b.offer(i * 7));
        }
    }
}
