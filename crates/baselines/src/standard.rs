//! Standard LoRaWAN operation: the paper's primary baseline.
//!
//! "Standard LoRaWAN … uniformly configures gateways using three
//! standard channel plans" (§5.1.1): every gateway listens on the same
//! standard plan(s), so co-located gateways observe identical packets
//! in identical order and redundant gateways add nothing (§3.2).

use lora_phy::channel::Channel;
use lora_phy::region::StandardChannelPlan;
use lora_phy::types::DataRate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Homogeneous gateway configurations: every gateway gets the channels
/// of the first `n_plans` standard plans covering the spectrum, starting
/// at `band_low_hz` (every gateway identical — the defining property).
///
/// Each 8-channel plan spans 1.6 MHz, the radio bandwidth of one COTS
/// gateway, so a gateway is configured with exactly one plan; with
/// multiple plans, gateways cycle through them *in the same way* by
/// fleet convention (gateway `j` takes plan `j mod n_plans`), which is
/// how operators spread wide spectrum over a homogeneous fleet.
pub fn standard_gateway_configs(
    band_low_hz: u32,
    spectrum_hz: u32,
    n_gateways: usize,
) -> Vec<Vec<Channel>> {
    let n_plans = (spectrum_hz / 1_600_000).max(1) as usize;
    let plans: Vec<Vec<Channel>> = (0..n_plans)
        .map(|p| StandardChannelPlan::dynamic(band_low_hz, p).channels)
        .collect();
    (0..n_gateways)
        .map(|j| plans[j % n_plans].clone())
        .collect()
}

/// Standard node provisioning: each node picks a uniformly random
/// channel from the operator's spectrum and a data rate — either fixed
/// (`adr = None`, the "w/o ADR" baseline uses the most robust DR0) or
/// per-node from the supplied ADR choice function.
pub fn standard_assignments(
    nodes: &[usize],
    channels: &[Channel],
    adr_choice: Option<&dyn Fn(usize) -> DataRate>,
    seed: u64,
) -> Vec<(usize, Channel, DataRate)> {
    let mut rng = StdRng::seed_from_u64(seed);
    nodes
        .iter()
        .map(|&n| {
            let ch = channels[rng.gen_range(0..channels.len())];
            let dr = match adr_choice {
                Some(f) => f(n),
                None => DataRate::DR0,
            };
            (n, ch, dr)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_single_plan() {
        let cfgs = standard_gateway_configs(916_800_000, 1_600_000, 3);
        assert_eq!(cfgs.len(), 3);
        assert_eq!(cfgs[0], cfgs[1]);
        assert_eq!(cfgs[1], cfgs[2]);
        assert_eq!(cfgs[0].len(), 8);
    }

    #[test]
    fn wide_spectrum_cycles_plans() {
        // 4.8 MHz = 3 plans; gateways 0..6 cycle 0,1,2,0,1,2.
        let cfgs = standard_gateway_configs(916_800_000, 4_800_000, 6);
        assert_eq!(cfgs[0], cfgs[3]);
        assert_eq!(cfgs[1], cfgs[4]);
        assert_ne!(cfgs[0], cfgs[1]);
    }

    #[test]
    fn assignments_cover_nodes_deterministically() {
        let chans = StandardChannelPlan::dynamic(916_800_000, 0).channels;
        let nodes: Vec<usize> = (0..20).collect();
        let a = standard_assignments(&nodes, &chans, None, 7);
        let b = standard_assignments(&nodes, &chans, None, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|(_, _, dr)| *dr == DataRate::DR0));
    }

    #[test]
    fn adr_choice_applied() {
        let chans = StandardChannelPlan::dynamic(916_800_000, 0).channels;
        let nodes: Vec<usize> = (0..4).collect();
        let f = |n: usize| {
            if n.is_multiple_of(2) {
                DataRate::DR5
            } else {
                DataRate::DR2
            }
        };
        let a = standard_assignments(&nodes, &chans, Some(&f), 7);
        assert_eq!(a[0].2, DataRate::DR5);
        assert_eq!(a[1].2, DataRate::DR2);
    }
}
