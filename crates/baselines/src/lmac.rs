//! LMAC (Gamage et al., SIGCOMM'20): carrier-sense multiple access for
//! LoRa. Before transmitting, a node senses the channel (CAD) and defers
//! while another transmission with the same channel + SF is on air.
//!
//! Modeled as a *traffic reshaping* pass over a planned workload: any
//! transmission that would overlap a same-channel same-SF transmission
//! is pushed back until the channel clears (plus a small random
//! backoff). This eliminates channel contention — and, as the paper
//! shows (Fig. 13), does nothing for decoder contention.

use lora_phy::airtime::PacketParams;
use lora_phy::types::Bandwidth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim::traffic::TxPlan;

/// Like [`lmac_reshape`], but a transmission whose total deferral would
/// exceed `deadline_us(plan)` is *given up* (CSMA abandons the packet —
/// its next duty window is already due). Returns the surviving plans
/// and the give-up count.
pub fn lmac_reshape_with_deadline<F: Fn(&TxPlan) -> u64>(
    plans: &[TxPlan],
    max_backoff_us: u64,
    seed: u64,
    deadline_us: F,
) -> (Vec<TxPlan>, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sorted: Vec<TxPlan> = plans.to_vec();
    sorted.sort_by_key(|p| p.start_us);

    let mut busy: std::collections::HashMap<(u32, u32), u64> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(sorted.len());
    let mut gave_up = 0u64;
    for mut p in sorted {
        let airtime =
            PacketParams::lorawan_uplink(p.dr.spreading_factor(), Bandwidth::Khz125, p.payload_len)
                .airtime()
                .total_us();
        let key = (p.channel.center_hz, p.dr.spreading_factor().value());
        let free_at = busy.get(&key).copied().unwrap_or(0);
        if p.start_us < free_at {
            let backoff = if max_backoff_us > 0 {
                rng.gen_range(0..=max_backoff_us)
            } else {
                0
            };
            let deferred = free_at + backoff;
            if deferred - p.start_us > deadline_us(&p) {
                gave_up += 1;
                continue;
            }
            p.start_us = deferred;
        }
        busy.insert(key, p.start_us + airtime);
        out.push(p);
    }
    out.sort_by_key(|p| p.start_us);
    (out, gave_up)
}

/// Reshape a workload with LMAC carrier sensing. Transmissions are
/// processed in start-time order; each defers past any conflicting
/// earlier transmission's end (+ up to `max_backoff_us` random backoff).
pub fn lmac_reshape(plans: &[TxPlan], max_backoff_us: u64, seed: u64) -> Vec<TxPlan> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sorted: Vec<TxPlan> = plans.to_vec();
    sorted.sort_by_key(|p| p.start_us);

    // Busy-until per (channel center, SF).
    let mut busy: std::collections::HashMap<(u32, u32), u64> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(sorted.len());
    for mut p in sorted {
        let airtime =
            PacketParams::lorawan_uplink(p.dr.spreading_factor(), Bandwidth::Khz125, p.payload_len)
                .airtime()
                .total_us();
        let key = (p.channel.center_hz, p.dr.spreading_factor().value());
        let free_at = busy.get(&key).copied().unwrap_or(0);
        if p.start_us < free_at {
            let backoff = if max_backoff_us > 0 {
                rng.gen_range(0..=max_backoff_us)
            } else {
                0
            };
            p.start_us = free_at + backoff;
        }
        busy.insert(key, p.start_us + airtime);
        out.push(p);
    }
    out.sort_by_key(|p| p.start_us);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::channel::Channel;
    use lora_phy::types::DataRate;

    fn plan(node: usize, ch: u32, dr: DataRate, start: u64) -> TxPlan {
        TxPlan {
            node,
            channel: Channel::khz125(ch),
            dr,
            start_us: start,
            payload_len: 10,
        }
    }

    #[test]
    fn conflicting_transmissions_serialized() {
        let ch = 920_100_000;
        let plans = vec![
            plan(0, ch, DataRate::DR5, 0),
            plan(1, ch, DataRate::DR5, 10_000), // overlaps node 0
        ];
        let shaped = lmac_reshape(&plans, 0, 1);
        let airtime = 41_216; // SF7, 10-byte PHY payload
        assert_eq!(shaped[0].start_us, 0);
        assert!(shaped[1].start_us >= airtime, "{}", shaped[1].start_us);
        // No time overlap remains on the same (channel, SF).
        assert!(shaped[1].start_us >= shaped[0].start_us + airtime);
    }

    #[test]
    fn orthogonal_sf_not_deferred() {
        let ch = 920_100_000;
        let plans = vec![
            plan(0, ch, DataRate::DR5, 0),
            plan(1, ch, DataRate::DR4, 10_000), // different SF: fine
        ];
        let shaped = lmac_reshape(&plans, 0, 1);
        assert_eq!(shaped[1].start_us, 10_000);
    }

    #[test]
    fn different_channels_not_deferred() {
        let plans = vec![
            plan(0, 920_100_000, DataRate::DR5, 0),
            plan(1, 920_300_000, DataRate::DR5, 10_000),
        ];
        let shaped = lmac_reshape(&plans, 0, 1);
        assert_eq!(shaped[1].start_us, 10_000);
    }

    #[test]
    fn chain_of_deferrals() {
        let ch = 920_100_000;
        let plans = vec![
            plan(0, ch, DataRate::DR5, 0),
            plan(1, ch, DataRate::DR5, 1_000),
            plan(2, ch, DataRate::DR5, 2_000),
        ];
        let shaped = lmac_reshape(&plans, 0, 1);
        let airtime = 41_216u64;
        assert!(shaped[1].start_us >= airtime);
        assert!(shaped[2].start_us >= 2 * airtime);
    }

    #[test]
    fn deterministic_with_backoff() {
        let ch = 920_100_000;
        let plans = vec![
            plan(0, ch, DataRate::DR5, 0),
            plan(1, ch, DataRate::DR5, 100),
        ];
        let a = lmac_reshape(&plans, 5_000, 9);
        let b = lmac_reshape(&plans, 5_000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn output_sorted_by_start() {
        let plans = vec![
            plan(0, 920_100_000, DataRate::DR5, 50_000),
            plan(1, 920_100_000, DataRate::DR5, 0),
        ];
        let shaped = lmac_reshape(&plans, 0, 1);
        assert!(shaped.windows(2).all(|w| w[0].start_us <= w[1].start_us));
    }
}
