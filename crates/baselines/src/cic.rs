//! CIC (Concurrent Interference Cancellation, Shahid et al.,
//! SIGCOMM'21): decodes multi-packet same-channel same-SF collisions at
//! the PHY.
//!
//! The mechanism itself is a one-line switch on the simulator
//! ([`sim::SimWorld::cic`]); this module packages the paper's
//! evaluation methodology around it: "we only use CIC for resolving
//! packet collisions and apply the same decoder resource constraints of
//! COTS gateways (i.e., 16 decoders per gateway) to CIC" (§5.2.1).

use sim::world::SimWorld;

/// Enable CIC on a world, returning it for chaining.
pub fn with_cic(mut world: SimWorld) -> SimWorld {
    world.cic = true;
    world
}

#[cfg(test)]
mod tests {
    use super::*;
    use gateway::config::GatewayConfig;
    use gateway::profile::GatewayProfile;
    use gateway::radio::Gateway;
    use lora_phy::pathloss::PathLossModel;
    use lora_phy::region::StandardChannelPlan;
    use lora_phy::types::DataRate;
    use sim::topology::Topology;
    use sim::traffic::TxPlan;

    fn world(cic: bool) -> SimWorld {
        let model = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let mut topo = Topology::new((100.0, 100.0), 2, 1, model, 1);
        topo.loss_db[0][0] = 80.0;
        topo.loss_db[1][0] = 80.0;
        let profile = GatewayProfile::rak7268cv2();
        let plan = StandardChannelPlan::us915_subband(0);
        let gw = Gateway::new(
            0,
            1,
            profile,
            GatewayConfig::new(profile, plan.channels.clone()).unwrap(),
        );
        let w = SimWorld::new(topo, vec![1, 1], vec![gw]);
        if cic {
            with_cic(w)
        } else {
            w
        }
    }

    fn colliding_plans() -> Vec<TxPlan> {
        let ch = StandardChannelPlan::us915_subband(0).channels[0];
        vec![
            TxPlan {
                node: 0,
                channel: ch,
                dr: DataRate::DR5,
                start_us: 0,
                payload_len: 10,
            },
            TxPlan {
                node: 1,
                channel: ch,
                dr: DataRate::DR5,
                start_us: 1_000,
                payload_len: 10,
            },
        ]
    }

    #[test]
    fn cic_resolves_the_collision_standard_does_not() {
        let recs_std = world(false).run(&colliding_plans());
        assert_eq!(recs_std.iter().filter(|r| r.delivered).count(), 0);

        let recs_cic = world(true).run(&colliding_plans());
        assert_eq!(recs_cic.iter().filter(|r| r.delivered).count(), 2);
    }

    #[test]
    fn cic_still_bounded_by_decoders() {
        // 20 colliding-free users through a 16-decoder gateway: CIC
        // cannot lift the decoder cap.
        let model = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let topo = Topology::new((100.0, 100.0), 20, 1, model, 1);
        let profile = GatewayProfile::rak7268cv2();
        let plan = StandardChannelPlan::us915_subband(0);
        let gw = Gateway::new(
            0,
            1,
            profile,
            GatewayConfig::new(profile, plan.channels.clone()).unwrap(),
        );
        let w = SimWorld::new(topo, vec![1; 20], vec![gw]);
        let mut w = with_cic(w);
        let assigns: Vec<(usize, lora_phy::channel::Channel, DataRate)> = (0..20)
            .map(|i| {
                (
                    i,
                    plan.channels[i % 8],
                    DataRate::from_index(i / 8 % 6).unwrap(),
                )
            })
            .collect();
        let plans = sim::traffic::concurrent_burst(
            &assigns,
            10,
            1_000_000,
            2_000,
            sim::traffic::BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        assert_eq!(recs.iter().filter(|r| r.delivered).count(), 16);
    }
}
