//! Random CP: the ablation baseline of §5.1.1 — "a randomized channel
//! planning strategy, which adjusts the number of channels per gateway
//! following Strategy ① but assigns channels to gateways at random."

use lora_phy::channel::Channel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random channel configurations: each gateway gets `channels_per_gw`
/// channels sampled uniformly (without replacement, window-constrained
/// to `window` consecutive grid slots so the config remains valid for a
/// COTS radio).
pub fn random_cp_configs(
    channels: &[Channel],
    n_gateways: usize,
    channels_per_gw: usize,
    window: usize,
    seed: u64,
) -> Vec<Vec<Channel>> {
    assert!(channels_per_gw >= 1 && !channels.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let window = window.clamp(1, channels.len());
    let per = channels_per_gw.min(window);
    (0..n_gateways)
        .map(|_| {
            let start = rng.gen_range(0..=channels.len() - window);
            let mut idx: Vec<usize> = (start..start + window).collect();
            for i in 0..per {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(per);
            idx.sort_unstable();
            idx.into_iter().map(|k| channels[k]).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::channel::ChannelGrid;

    fn grid() -> Vec<Channel> {
        ChannelGrid::standard(916_800_000, 4_800_000).channels()
    }

    #[test]
    fn shapes_and_determinism() {
        let a = random_cp_configs(&grid(), 5, 2, 8, 42);
        let b = random_cp_configs(&grid(), 5, 2, 8, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        for cfg in &a {
            assert_eq!(cfg.len(), 2);
        }
    }

    #[test]
    fn window_constraint_respected() {
        // All channels of one gateway must fit an 8-slot (1.6 MHz) span.
        let cfgs = random_cp_configs(&grid(), 20, 8, 8, 3);
        for cfg in &cfgs {
            let lo = cfg.iter().map(|c| c.center_hz).min().unwrap();
            let hi = cfg.iter().map(|c| c.center_hz).max().unwrap();
            assert!(hi - lo <= 7 * 200_000, "span too wide");
        }
    }

    #[test]
    fn channels_distinct_within_gateway() {
        let cfgs = random_cp_configs(&grid(), 10, 4, 8, 9);
        for cfg in &cfgs {
            let mut c = cfg.clone();
            c.dedup();
            assert_eq!(c.len(), cfg.len());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            random_cp_configs(&grid(), 5, 2, 8, 1),
            random_cp_configs(&grid(), 5, 2, 8, 2)
        );
    }
}
