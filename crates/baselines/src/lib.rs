//! # baselines — the operating strategies AlphaWAN is evaluated against
//!
//! Every comparison point in the paper's §5 evaluation:
//!
//! * [`standard`] — **standard LoRaWAN**: all gateways configured with
//!   the same standard channel plans (the homogeneous setup that caps
//!   capacity at one gateway's decoder count), nodes on random channels
//!   with either fixed or ADR-chosen data rates;
//! * [`random_cp`] — **Random CP**: adjusts the number of channels per
//!   gateway like Strategy ① but assigns channels at random (§5.1.1);
//! * [`lmac`] — **LMAC** (Gamage et al.): carrier-sense MAC that defers
//!   transmissions which would collide on the same channel + SF —
//!   avoids channel contention, cannot touch decoder contention;
//! * [`cic`] — **CIC** (Shahid et al.): PHY-layer collision resolution,
//!   modeled via [`sim::SimWorld::cic`] with COTS decoder limits
//!   retained, per the paper's methodology.

pub mod cic;
pub mod lmac;
pub mod random_cp;
pub mod standard;

pub use lmac::lmac_reshape;
pub use random_cp::random_cp_configs;
pub use standard::{standard_assignments, standard_gateway_configs};
