//! Infrastructure-fault hook for the simulation world.
//!
//! The `chaos` crate compiles a declarative fault plan into an
//! implementation of [`InfraFaults`]; the world consults it at each
//! event so gateway crashes and decoder lock-ups perturb reception
//! deterministically. The default [`NoFaults`] answers "everything is
//! healthy" and is what [`crate::world::SimWorld::run`] uses — keeping
//! the fault-free hot path free of any schedule lookups beyond three
//! trivially inlinable calls.
//!
//! The trait lives here (not in `chaos`) so `sim` stays independent of
//! the fault-injection layer: `chaos` depends on `sim`, never the
//! reverse.

/// Queries the world makes about infrastructure health. Times are
/// simulation microseconds, gateways are indexed as in
/// [`crate::world::SimWorld::gateways`].
///
/// Implementations must be **pure functions of (gateway, time)** — the
/// world may ask in any order and must get identical answers on replay;
/// that purity is what makes fault runs deterministic.
pub trait InfraFaults {
    /// Is gateway `gw` down (crashed / rebooting) at `t_us`? A down
    /// gateway detects nothing; receptions in flight when it goes down
    /// are lost.
    fn gateway_down(&self, gw: usize, t_us: u64) -> bool {
        let _ = (gw, t_us);
        false
    }

    /// Was gateway `gw` down at any instant of `[from_us, to_us]`?
    /// Used to fail receptions that span a crash window. The default
    /// checks the endpoints, which is exact for fault schedules whose
    /// down windows are at least as long as a packet; implementations
    /// with shorter windows should override it.
    fn gateway_down_during(&self, gw: usize, from_us: u64, to_us: u64) -> bool {
        self.gateway_down(gw, from_us) || self.gateway_down(gw, to_us)
    }

    /// Number of decoders at gateway `gw` locked up (unusable) at
    /// `t_us`, clamped by callers to the pool capacity. Models partial
    /// hardware lock-ups where the gateway stays up but admits fewer
    /// concurrent packets.
    fn locked_decoders(&self, gw: usize, t_us: u64) -> usize {
        let _ = (gw, t_us);
        0
    }

    /// May gateway `gw` be down at *any* instant of the run? A cheap
    /// whole-run summary the world samples once per run: when it
    /// returns `false` the implementation promises [`Self::gateway_down`]
    /// and [`Self::gateway_down_during`] are `false` for `gw` at every
    /// time, letting the hot path skip per-event crash checks entirely.
    /// The conservative default (`true`) is always safe.
    fn gateway_ever_down(&self, gw: usize) -> bool {
        let _ = gw;
        true
    }

    /// May gateway `gw` have locked-up decoders at *any* instant of the
    /// run? Same whole-run-summary contract as
    /// [`Self::gateway_ever_down`]: when it returns `false` the
    /// implementation promises [`Self::locked_decoders`] is `0` for
    /// `gw` at every time, letting the hot path skip the per-admission
    /// lock query. The conservative default (`true`) is always safe.
    fn decoder_lockups_possible(&self, gw: usize) -> bool {
        let _ = gw;
        true
    }

    /// Clock skew of gateway `gw` at `t_us` (signed microseconds).
    /// Does not change medium arbitration — it perturbs the timestamps
    /// a gateway *reports* (forwarder `tmst`), which is what matters to
    /// server-side deduplication and downlink scheduling.
    fn clock_skew_us(&self, gw: usize, t_us: u64) -> i64 {
        let _ = (gw, t_us);
        0
    }
}

/// The healthy-infrastructure implementation used by plain runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl InfraFaults for NoFaults {
    fn gateway_ever_down(&self, _gw: usize) -> bool {
        false
    }

    fn decoder_lockups_possible(&self, _gw: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_healthy() {
        let f = NoFaults;
        assert!(!f.gateway_down(0, 0));
        assert!(!f.gateway_down_during(3, 0, u64::MAX));
        assert_eq!(f.locked_decoders(1, 99), 0);
        assert_eq!(f.clock_skew_us(2, 5), 0);
    }

    #[test]
    fn down_during_defaults_to_endpoint_checks() {
        struct DownAt {
            t: u64,
        }
        impl InfraFaults for DownAt {
            fn gateway_down(&self, _gw: usize, t_us: u64) -> bool {
                t_us == self.t
            }
        }
        let f = DownAt { t: 10 };
        assert!(f.gateway_down_during(0, 10, 20));
        assert!(f.gateway_down_during(0, 0, 10));
        assert!(!f.gateway_down_during(0, 11, 20));
    }
}
