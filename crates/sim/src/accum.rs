//! Incremental per-(channel, SF, gateway) interference accumulators —
//! the O(Δ)-per-event replacement for the O(on-air × gateways) verdict
//! scan.
//!
//! # What gets accumulated
//!
//! The quantity that decides a PHY verdict at a gateway is a small
//! per-gateway aggregate over every transmission whose airtime
//! overlapped the victim's:
//!
//! * the **leaked interference sum** (partial-overlap channels below
//!   the detection threshold) entering the SINR denominator,
//! * the **strongest same-SF collider** (capture arbitration — the
//!   victim survives iff `rssi_v − rssi_o ≥ 6 dB` against *every*
//!   collider, i.e. against the strongest), and
//! * the **strongest cross-SF interferer** (quasi-orthogonality — the
//!   victim is killed iff `rssi_v − rssi_o < −25 dB` for *any*
//!   interferer, i.e. for the strongest).
//!
//! # The exact-undo trick
//!
//! A verdict must count every transmission that *ever* overlapped the
//! victim — including ones that ended mid-flight — so contributions
//! cannot simply be removed at the interferer's TxEnd. Instead two
//! monotone sums are kept per (victim channel, interferer SF, gateway):
//! `S`, everything that ever **started**, and `E`, everything that has
//! **ended**. A victim snapshots `E` at its own TxStart and reads `S`
//! at its TxEnd; by event order, `S_end − E_start` is *exactly* the sum
//! over the overlap set (started-before-my-end minus
//! ended-before-my-start). Both sums are **fixed-point integers**
//! (linear power × 2⁹⁶, wrapping), so addition is associative, the
//! difference is order-independent, and an interferer's exit undoes its
//! entry bit for bit — the PR-4 `IncrementalEval` exact-undo pattern,
//! here stretched across the S/E pair.
//!
//! The max aggregates live in per-(channel, SF, gateway) max indexes
//! — vectors kept sorted strongest-first — with **lazy deletion**:
//! entries are never removed at TxEnd (an older on-air victim may
//! still need them) and are dropped only when their slot is recycled,
//! which the shard loop defers until no live transmission can have
//! overlapped them. A query walks the prefix in order, compacting out
//! recycled entries in place and stepping over entries invisible to
//! *this* victim (same node, or ended before the victim started) —
//! skipped entries stay where they are, so repeated queries pay a few
//! sequential reads, never a heap rebalance.
//!
//! # Determinism and the statistical gate
//!
//! The fixed-point sum is summation-order independent — shard count
//! and event interleaving cannot change it — but it is *not* bitwise
//! the f64 left-to-right sum of the scan path, so accumulator-mode
//! runs are gated by [`crate::metrics::RunSummary::statistically_equivalent`]
//! rather than record identity; the scan stays the proptest oracle.
//! The capture and cross-SF decisions compare the same two f64s the
//! scan compares and are bit-exact. See `docs/SCALING.md` for the cost
//! model and `docs/ARCHITECTURE.md` for the determinism contract.

use crate::runctx::{PairClass, RunContext};

/// Binary point of the fixed-point linear-power representation.
/// Linear powers span roughly 1e-18 (a −140 dBm leak under a −40 dB
/// gain) to 1e2 mW; scaled by 2⁹⁶ the largest single contribution is
/// ~2¹⁰³, leaving 24 bits of headroom for the wrapping sums while the
/// smallest keeps ~40 significant bits — far below the thermal noise
/// floor the sum is added to.
const FIXED_SHIFT: u32 = 96;

/// Convert a linear power to fixed point. Multiplying by a power of
/// two is exact in f64; the truncation to integer is deterministic, so
/// equal inputs convert identically everywhere.
#[inline]
pub(crate) fn to_fixed(lin: f64) -> u128 {
    (lin * (2f64).powi(FIXED_SHIFT as i32)) as u128
}

/// Convert a (wrapping-difference) fixed-point sum back to linear f64.
#[inline]
fn from_fixed(fx: u128) -> f64 {
    fx as f64 / (2f64).powi(FIXED_SHIFT as i32)
}

/// Spreading-factor slots per channel (SF7..SF12).
pub(crate) const N_SF: usize = 6;

/// Counters for the accumulator hot path, surfaced through
/// [`crate::shard::ShardRunStats`] and the obs registry.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct AccumStats {
    /// Contributions added at TxStart (leak sums + max-index inserts).
    pub updates: u64,
    /// Contributions undone at TxEnd (additions to the ended sums).
    pub undos: u64,
    /// Stale max-index entries dropped during queries (lazy deletion).
    pub evictions: u64,
}

/// One max-index entry: an interferer's RSSI at one gateway, plus
/// everything needed to validate it against a particular victim.
#[derive(Debug, Clone, Copy)]
struct MaxEntry {
    rssi: f64,
    /// Shard-global TxStart sequence — the tie-break: among equal-RSSI
    /// colliders the scan keeps the first registered, and registration
    /// order is start order.
    start_seq: u64,
    network: u32,
    node: u32,
    slot: u32,
    gen: u32,
}

impl MaxEntry {
    /// Strongest-first index order: higher RSSI first, earliest start
    /// on ties (the RSSIs are finite link-table entries, so total_cmp
    /// is a plain numeric order).
    #[inline]
    fn before(&self, other: &Self) -> bool {
        match self.rssi.total_cmp(&other.rssi) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => self.start_seq < other.start_seq,
        }
    }
}

/// Per-victim snapshot of the ended-sums at its TxStart, plus the
/// exact same-node correction accumulated while it was on air. One per
/// candidate gateway of the victim's channel.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LeakSnap {
    /// `E_same[cv][sf_v][lg]` at victim start.
    e_same: u128,
    /// `E_orth_total[cv][lg]` at victim start.
    e_orth_tot: u128,
    /// `E_orth[cv][sf_v][lg]` at victim start.
    e_orth_sfv: u128,
    /// Leak contributions from the victim's own node's overlapping
    /// transmissions — the scan never counts a node against itself, so
    /// these are subtracted back out exactly.
    own_corr: u128,
}

impl LeakSnap {
    /// Add an own-node leak contribution to subtract at verdict time.
    #[inline]
    pub(crate) fn add_own(&mut self, fx: u128) {
        self.own_corr = self.own_corr.wrapping_add(fx);
    }
}

/// Slot liveness arrays the queries validate entries against (the
/// shard machine's SoA columns).
pub(crate) struct SlotView<'a> {
    /// Per slot: recycling generation (bumped on free).
    pub gen: &'a [u32],
    /// Per slot: event sequence of its TxEnd (`u64::MAX` while live).
    pub end_evseq: &'a [u64],
}

/// Identity of a transmission contributing to the accumulators.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TxKey {
    /// Slot id in the shard machine.
    pub slot: u32,
    /// Slot generation at registration.
    pub gen: u32,
    /// Sending node.
    pub node: u32,
    /// Sender's network (collision attribution).
    pub network: u32,
    /// Shard-global TxStart sequence.
    pub start_seq: u64,
}

/// The accumulator state for one shard: fixed-point leak sums and
/// lazy-deletion sorted max indexes, indexed `[cv][sf][lg]` flat.
pub(crate) struct AccumState {
    n_lg: usize,
    /// Per interferer channel: the victim channels it affects, with
    /// the precomputed pair class (inverted `RunContext::pair` rows).
    effects: Vec<Vec<(u32, PairClass)>>,
    /// Started-sum, same-SF leak gain, `[cv*6*n_lg + sf_o*n_lg + lg]`.
    s_same: Vec<u128>,
    /// Started-sum, cross-SF leak gain.
    s_orth: Vec<u128>,
    /// Started-sum, cross-SF gain, totalled over `sf_o`, `[cv*n_lg+lg]`.
    s_orth_tot: Vec<u128>,
    /// Ended-sums mirroring the three above.
    e_same: Vec<u128>,
    e_orth: Vec<u128>,
    e_orth_tot: Vec<u128>,
    /// Max index per `[cv*6*n_lg + sf_o*n_lg + lg]`: kept sorted
    /// strongest-first so a query is a short in-order prefix walk.
    maxes: Vec<Vec<MaxEntry>>,
    /// Hot-path counters.
    pub(crate) stats: AccumStats,
}

impl AccumState {
    /// Build the accumulator index for a shard with `n_lg` local
    /// gateways over `ctx`'s channel universe.
    pub(crate) fn new(ctx: &RunContext, n_lg: usize) -> AccumState {
        let n_ch = ctx.n_channels();
        let mut effects: Vec<Vec<(u32, PairClass)>> = vec![Vec::new(); n_ch];
        for cv in 0..n_ch {
            for &co in &ctx.overlapping[cv] {
                effects[co as usize].push((cv as u32, ctx.pair[cv * n_ch + co as usize]));
            }
        }
        let sums = n_ch * N_SF * n_lg;
        let tots = n_ch * n_lg;
        AccumState {
            n_lg,
            effects,
            s_same: vec![0; sums],
            s_orth: vec![0; sums],
            s_orth_tot: vec![0; tots],
            e_same: vec![0; sums],
            e_orth: vec![0; sums],
            e_orth_tot: vec![0; tots],
            maxes: vec![Vec::new(); sums],
            stats: AccumStats::default(),
        }
    }

    #[inline]
    fn idx(&self, cv: usize, sf: usize, lg: usize) -> usize {
        (cv * N_SF + sf) * self.n_lg + lg
    }

    /// Register a transmission entering the air on channel `co` with
    /// SF index `sf_o`: one leaked-RSSI row into the started-sums and
    /// one max-index insert per affected (victim channel, candidate
    /// gateway).
    pub(crate) fn register(
        &mut self,
        co: usize,
        sf_o: usize,
        link_row: &[f64],
        cand_local: &[Vec<u32>],
        key: TxKey,
    ) {
        self.apply(co, sf_o, link_row, cand_local, Some(key));
    }

    /// Undo a transmission leaving the air: the identical contributions
    /// enter the ended-sums, cancelling exactly for every future
    /// victim. Max-index entries stay for lazy deletion.
    pub(crate) fn retire(
        &mut self,
        co: usize,
        sf_o: usize,
        link_row: &[f64],
        cand_local: &[Vec<u32>],
    ) {
        self.apply(co, sf_o, link_row, cand_local, None);
    }

    fn apply(
        &mut self,
        co: usize,
        sf_o: usize,
        link_row: &[f64],
        cand_local: &[Vec<u32>],
        key: Option<TxKey>,
    ) {
        let effects = std::mem::take(&mut self.effects[co]);
        let mut touched = 0u64;
        for &(cv, class) in &effects {
            let cv = cv as usize;
            match class {
                PairClass::Disjoint => {}
                PairClass::Detect => {
                    if let Some(key) = key {
                        for &lg in &cand_local[cv] {
                            let i = self.idx(cv, sf_o, lg as usize);
                            let e = MaxEntry {
                                rssi: link_row[lg as usize],
                                start_seq: key.start_seq,
                                network: key.network,
                                node: key.node,
                                slot: key.slot,
                                gen: key.gen,
                            };
                            let v = &mut self.maxes[i];
                            let pos = v.partition_point(|x| x.before(&e));
                            v.insert(pos, e);
                            touched += 1;
                        }
                    }
                }
                PairClass::Leak {
                    gain_same,
                    gain_orth,
                } => {
                    for &lg in &cand_local[cv] {
                        let rssi_o = link_row[lg as usize];
                        let lg = lg as usize;
                        if let Some(g) = gain_same {
                            let fx = to_fixed(10f64.powf((rssi_o + g) / 10.0));
                            let i = self.idx(cv, sf_o, lg);
                            let tgt = if key.is_some() {
                                &mut self.s_same[i]
                            } else {
                                &mut self.e_same[i]
                            };
                            *tgt = tgt.wrapping_add(fx);
                            touched += 1;
                        }
                        if let Some(g) = gain_orth {
                            let fx = to_fixed(10f64.powf((rssi_o + g) / 10.0));
                            let i = self.idx(cv, sf_o, lg);
                            let j = cv * self.n_lg + lg;
                            let (o, t) = if key.is_some() {
                                (&mut self.s_orth[i], &mut self.s_orth_tot[j])
                            } else {
                                (&mut self.e_orth[i], &mut self.e_orth_tot[j])
                            };
                            *o = o.wrapping_add(fx);
                            *t = t.wrapping_add(fx);
                            touched += 1;
                        }
                    }
                }
            }
        }
        self.effects[co] = effects;
        if key.is_some() {
            self.stats.updates += touched;
        } else {
            self.stats.undos += touched;
        }
    }

    /// Snapshot the ended-sums for a victim starting on channel `cv`
    /// with SF index `sf_v`, one [`LeakSnap`] per candidate gateway,
    /// appended to `out` (cleared first).
    pub(crate) fn snapshot(&self, cv: usize, sf_v: usize, cand: &[u32], out: &mut Vec<LeakSnap>) {
        out.clear();
        for &lg in cand {
            let lg = lg as usize;
            out.push(LeakSnap {
                e_same: self.e_same[self.idx(cv, sf_v, lg)],
                e_orth_tot: self.e_orth_tot[cv * self.n_lg + lg],
                e_orth_sfv: self.e_orth[self.idx(cv, sf_v, lg)],
                own_corr: 0,
            });
        }
    }

    /// The victim's accumulated leaked interference, linear power: the
    /// wrapping S−E differences (same-SF gain at its own SF, cross-SF
    /// gain at every other SF) minus the own-node correction.
    pub(crate) fn leak_lin(&self, cv: usize, sf_v: usize, lg: usize, snap: &LeakSnap) -> f64 {
        let same = self.s_same[self.idx(cv, sf_v, lg)].wrapping_sub(snap.e_same);
        let orth_tot = self.s_orth_tot[cv * self.n_lg + lg].wrapping_sub(snap.e_orth_tot);
        let orth_sfv = self.s_orth[self.idx(cv, sf_v, lg)].wrapping_sub(snap.e_orth_sfv);
        let fx = same
            .wrapping_add(orth_tot)
            .wrapping_sub(orth_sfv)
            .wrapping_sub(snap.own_corr);
        from_fixed(fx)
    }

    /// Walk-validate-skip loop shared by the two max queries: the
    /// index is sorted strongest-first, so the first entry this victim
    /// can see is the answer. Recycled entries met on the way are
    /// compacted out in place (order is preserved); entries merely
    /// invisible to *this* victim (same node, or ended before the
    /// victim started) are stepped over and stay put.
    fn query(
        &mut self,
        idx: usize,
        victim_node: u32,
        victim_start_evseq: u64,
        slots: &SlotView<'_>,
    ) -> Option<(f64, u32)> {
        let v = &mut self.maxes[idx];
        let mut found = None;
        let mut w = 0usize;
        let mut r = 0usize;
        while r < v.len() {
            let e = v[r];
            if slots.gen[e.slot as usize] != e.gen {
                r += 1;
                self.stats.evictions += 1;
                continue;
            }
            if e.node == victim_node || slots.end_evseq[e.slot as usize] <= victim_start_evseq {
                if w != r {
                    v[w] = e;
                }
                w += 1;
                r += 1;
                continue;
            }
            found = Some((e.rssi, e.network));
            break;
        }
        if w != r {
            // Close the gap left by the recycled entries: shift the
            // unread tail (including the found entry, if any) down.
            v.copy_within(r.., w);
            let n = v.len() - (r - w);
            v.truncate(n);
        }
        found
    }

    /// Strongest same-SF collider visible to the victim at one
    /// gateway: `(rssi, network)` of the max-RSSI (earliest-start on
    /// ties) on-air-overlapping transmission with the victim's SF on
    /// its channel's detect class — exactly the entry the scan's
    /// registration-order max would keep.
    pub(crate) fn strongest_same_sf(
        &mut self,
        cv: usize,
        sf_v: usize,
        lg: usize,
        victim_node: u32,
        victim_start_evseq: u64,
        slots: &SlotView<'_>,
    ) -> Option<(f64, u32)> {
        let i = self.idx(cv, sf_v, lg);
        self.query(i, victim_node, victim_start_evseq, slots)
    }

    /// Strongest cross-SF detect-class interferer visible to the
    /// victim at one gateway (max over the five other SF indexes). The
    /// caller applies the scan's own comparison
    /// (`rssi_v − rssi_o < CROSS_SF_REJECTION_DB`), which is monotone
    /// in `rssi_o`, so testing the max is bit-equivalent to testing
    /// every interferer.
    pub(crate) fn strongest_cross_sf(
        &mut self,
        cv: usize,
        sf_v: usize,
        lg: usize,
        victim_node: u32,
        victim_start_evseq: u64,
        slots: &SlotView<'_>,
    ) -> Option<f64> {
        let mut best: Option<f64> = None;
        for sf in 0..N_SF {
            if sf == sf_v {
                continue;
            }
            let i = self.idx(cv, sf, lg);
            if let Some((rssi, _)) = self.query(i, victim_node, victim_start_evseq, slots) {
                best = Some(match best {
                    Some(b) if b >= rssi => b,
                    _ => rssi,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runctx::RunContext;
    use lora_phy::channel::ChannelGrid;
    use proptest::prelude::*;
    use std::collections::{HashMap, VecDeque};

    const N_CH: usize = 3;
    const N_LG: usize = 2;
    const N_NODES: usize = 4;

    /// RSSI rows per node — nodes 0 and 1 tie at gateway 0 on purpose,
    /// so the start-order tie-break in the max index is exercised.
    const LINK: [[f64; N_LG]; N_NODES] = [
        [-60.0, -70.0],
        [-60.0, -75.0],
        [-80.0, -70.0],
        [-55.0, -66.0],
    ];

    /// A transmission in a test schedule:
    /// `(node, channel, sf index, start µs, duration µs)`. This is the
    /// type proptest shrinks, so a failure prints the minimal schedule
    /// verbatim.
    type Sched = (u8, u8, u8, u64, u64);

    /// A hand-rolled adversarial channel universe: self-Detect on every
    /// channel, cross-channel Detect between 1 and 2, asymmetric Leak
    /// between 0 and 1 (including a `None` orthogonal gain), channel 2
    /// disjoint from 0.
    fn test_ctx() -> RunContext {
        let mut ctx = RunContext::default();
        ctx.channels = ChannelGrid::standard(916_800_000, 1_600_000)
            .channels()
            .into_iter()
            .take(N_CH)
            .collect();
        ctx.overlapping = vec![vec![0, 1], vec![0, 1, 2], vec![1, 2]];
        ctx.pair = vec![PairClass::Disjoint; N_CH * N_CH];
        for c in 0..N_CH {
            ctx.pair[c * N_CH + c] = PairClass::Detect;
        }
        ctx.pair[1] = PairClass::Leak {
            gain_same: Some(-12.0),
            gain_orth: Some(-18.0),
        };
        ctx.pair[N_CH] = PairClass::Leak {
            gain_same: Some(-9.0),
            gain_orth: None,
        };
        ctx.pair[N_CH + 2] = PairClass::Detect;
        ctx.pair[2 * N_CH + 1] = PairClass::Detect;
        ctx
    }

    /// Candidate gateways per channel (channel 2 is single-gateway so
    /// snapshot alignment with a shorter candidate list is covered).
    fn cand_local() -> Vec<Vec<u32>> {
        vec![vec![0, 1], vec![0, 1], vec![0]]
    }

    /// Oracle-side record of one scheduled transmission.
    struct TxRec {
        node: usize,
        network: u32,
        ch: usize,
        sf: usize,
        start_seq: u64,
        start_evseq: u64,
        /// `u64::MAX` until its TxEnd is processed.
        end_evseq: u64,
        registered: bool,
        snap: Vec<LeakSnap>,
    }

    /// Whether interferer `o` is visible to victim `v` under the scan's
    /// rules: on air at some instant of `v`'s airtime (did not end
    /// before `v` started) and not `v`'s own node.
    fn visible(o: &TxRec, v: &TxRec) -> bool {
        o.registered && o.node != v.node && o.end_evseq > v.start_evseq
    }

    /// Brute-force recompute every accumulated quantity for victim `v`
    /// from the full transmission history and compare bit-for-bit with
    /// the accumulator's answers.
    fn check_victim(
        ac: &mut AccumState,
        txs: &[TxRec],
        v: usize,
        ctx: &RunContext,
        cand: &[Vec<u32>],
        slot_gen: &[u32],
        slot_end: &[u64],
    ) -> Result<(), TestCaseError> {
        let vic = &txs[v];
        let view = SlotView {
            gen: slot_gen,
            end_evseq: slot_end,
        };
        for (k, &lg) in cand[vic.ch].iter().enumerate() {
            let lg = lg as usize;

            // Leak sum: every visible Leak-class interferer's leaked
            // power, summed in fixed point in schedule order (the
            // representation is order-independent, so any order is the
            // same integer).
            let mut fx = 0u128;
            for o in txs.iter() {
                if !visible(o, vic) {
                    continue;
                }
                if let PairClass::Leak {
                    gain_same,
                    gain_orth,
                } = ctx.pair[vic.ch * N_CH + o.ch]
                {
                    let g = if o.sf == vic.sf { gain_same } else { gain_orth };
                    if let Some(g) = g {
                        fx = fx.wrapping_add(to_fixed(10f64.powf((LINK[o.node][lg] + g) / 10.0)));
                    }
                }
            }
            let got = ac.leak_lin(vic.ch, vic.sf, lg, &vic.snap[k]);
            prop_assert_eq!(
                got.to_bits(),
                from_fixed(fx).to_bits(),
                "leak mismatch for victim {} at gw {}: got {}, want {}",
                v,
                lg,
                got,
                from_fixed(fx)
            );

            // Strongest same-SF collider: max RSSI, first-started wins
            // ties — exactly the scan's registration-order max.
            let mut same: Option<(f64, u64, u32)> = None;
            let mut cross: Option<f64> = None;
            for o in txs.iter() {
                if !visible(o, vic) || !matches!(ctx.pair[vic.ch * N_CH + o.ch], PairClass::Detect)
                {
                    continue;
                }
                let rssi = LINK[o.node][lg];
                if o.sf == vic.sf {
                    same = Some(match same {
                        Some(b) if b.0 > rssi || (b.0 == rssi && b.1 < o.start_seq) => b,
                        _ => (rssi, o.start_seq, o.network),
                    });
                } else {
                    cross = Some(match cross {
                        Some(b) if b >= rssi => b,
                        _ => rssi,
                    });
                }
            }
            let got_same =
                ac.strongest_same_sf(vic.ch, vic.sf, lg, vic.node as u32, vic.start_evseq, &view);
            prop_assert_eq!(
                got_same,
                same.map(|(r, _, n)| (r, n)),
                "same-SF max mismatch for victim {} at gw {}",
                v,
                lg
            );
            let got_cross =
                ac.strongest_cross_sf(vic.ch, vic.sf, lg, vic.node as u32, vic.start_evseq, &view);
            prop_assert_eq!(
                got_cross,
                cross,
                "cross-SF max mismatch for victim {} at gw {}",
                v,
                lg
            );
        }
        Ok(())
    }

    /// Drive a schedule through the accumulator exactly as the shard
    /// machine would — same event order, evseq discipline, slot
    /// recycling and own-node corrections — checking every live victim
    /// against the brute-force oracle after every event, plus the
    /// ending victim at its verdict point (end recorded, before its
    /// own retire), which is the read the shard actually performs.
    fn run_schedule(sched: &[Sched]) -> Result<(), TestCaseError> {
        let ctx = test_ctx();
        let cand = cand_local();
        let mut ac = AccumState::new(&ctx, N_LG);

        let mut txs: Vec<TxRec> = sched
            .iter()
            .map(|&(node, ch, sf, _, _)| TxRec {
                node: node as usize % N_NODES,
                network: (node as u32) % 2,
                ch: ch as usize % N_CH,
                sf: sf as usize % N_SF,
                start_seq: 0,
                start_evseq: 0,
                end_evseq: u64::MAX,
                registered: false,
                snap: Vec::new(),
            })
            .collect();
        // (t, prio, tx index): TxEnd (0) sorts before TxStart (1) at
        // the same instant, as in the event queue — a transmission
        // ending exactly when another starts is not an overlap.
        let mut events: Vec<(u64, u8, usize)> = Vec::new();
        for (i, &(_, _, _, start, dur)) in sched.iter().enumerate() {
            events.push((start, 1, i));
            events.push((start + dur.max(1), 0, i));
        }
        events.sort_unstable();

        // Mirror of the shard machine's slot columns and queues.
        let mut slot_gen: Vec<u32> = Vec::new();
        let mut slot_end: Vec<u64> = Vec::new();
        let mut slot_of_tx: Vec<u32> = vec![u32::MAX; txs.len()];
        let mut free: Vec<u32> = Vec::new();
        let mut live_q: VecDeque<(u64, u32, u32)> = VecDeque::new();
        let mut pending_free: VecDeque<(u64, u32)> = VecDeque::new();
        let mut node_live: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut evseq = 0u64;
        let mut seq = 0u64;

        for &(_, prio, i) in &events {
            evseq += 1;
            if prio == 1 {
                // TxStart: allocate (or recycle) a slot, register,
                // snapshot, record same-node corrections both ways.
                let s = free.pop().unwrap_or_else(|| {
                    slot_gen.push(0);
                    slot_end.push(u64::MAX);
                    (slot_gen.len() - 1) as u32
                });
                let si = s as usize;
                slot_end[si] = u64::MAX;
                slot_of_tx[i] = s;
                let (node, c, sf_i) = (txs[i].node, txs[i].ch, txs[i].sf);
                txs[i].start_seq = seq;
                seq += 1;
                txs[i].start_evseq = evseq;
                txs[i].registered = true;
                let key = TxKey {
                    slot: s,
                    gen: slot_gen[si],
                    node: node as u32,
                    network: txs[i].network,
                    start_seq: txs[i].start_seq,
                };
                ac.register(c, sf_i, &LINK[node], &cand, key);
                let mut snap = std::mem::take(&mut txs[i].snap);
                ac.snapshot(c, sf_i, &cand[c], &mut snap);
                txs[i].snap = snap;
                let own: Vec<usize> = node_live.get(&node).cloned().unwrap_or_default();
                for &o in &own {
                    let (co, sf_o) = (txs[o].ch, txs[o].sf);
                    if let PairClass::Leak {
                        gain_same,
                        gain_orth,
                    } = ctx.pair[c * N_CH + co]
                    {
                        let gain = if sf_o != sf_i { gain_orth } else { gain_same };
                        if let Some(g) = gain {
                            for (k, &lg) in cand[c].iter().enumerate() {
                                txs[i].snap[k].add_own(to_fixed(
                                    10f64.powf((LINK[node][lg as usize] + g) / 10.0),
                                ));
                            }
                        }
                    }
                    if let PairClass::Leak {
                        gain_same,
                        gain_orth,
                    } = ctx.pair[co * N_CH + c]
                    {
                        let gain = if sf_i != sf_o { gain_orth } else { gain_same };
                        if let Some(g) = gain {
                            for (k, &lg) in cand[co].iter().enumerate() {
                                txs[o].snap[k].add_own(to_fixed(
                                    10f64.powf((LINK[node][lg as usize] + g) / 10.0),
                                ));
                            }
                        }
                    }
                }
                node_live.entry(node).or_default().push(i);
                live_q.push_back((evseq, s, slot_gen[si]));
            } else {
                // TxEnd: record the end, take the verdict-point reads
                // (before retire, as the shard does), then undo and
                // run the reclamation queues.
                let s = slot_of_tx[i];
                let si = s as usize;
                slot_end[si] = evseq;
                txs[i].end_evseq = evseq;
                check_victim(&mut ac, &txs, i, &ctx, &cand, &slot_gen, &slot_end)?;
                let (node, c, sf_i) = (txs[i].node, txs[i].ch, txs[i].sf);
                ac.retire(c, sf_i, &LINK[node], &cand);
                if let Some(live) = node_live.get_mut(&node) {
                    if let Some(p) = live.iter().position(|&x| x == i) {
                        live.swap_remove(p);
                    }
                    if live.is_empty() {
                        node_live.remove(&node);
                    }
                }
                while let Some(&(_, sl, g)) = live_q.front() {
                    let sli = sl as usize;
                    if slot_gen[sli] != g || slot_end[sli] != u64::MAX {
                        live_q.pop_front();
                    } else {
                        break;
                    }
                }
                pending_free.push_back((evseq, s));
                let min_live = live_q.front().map(|&(se, _, _)| se).unwrap_or(u64::MAX);
                while let Some(&(ee, sl)) = pending_free.front() {
                    if ee < min_live {
                        pending_free.pop_front();
                        slot_gen[sl as usize] = slot_gen[sl as usize].wrapping_add(1);
                        free.push(sl);
                    } else {
                        break;
                    }
                }
            }
            // After every event, every still-live victim's accumulated
            // state must equal a fresh scan of the history.
            for v in 0..txs.len() {
                if txs[v].registered && txs[v].end_evseq == u64::MAX {
                    check_victim(&mut ac, &txs, v, &ctx, &cand, &slot_gen, &slot_end)?;
                }
            }
        }
        Ok(())
    }

    #[test]
    fn end_at_start_boundary_is_not_an_overlap() {
        // Node 0 on channel 0 ends at t=10 exactly as node 1 starts on
        // channel 1: TxEnd's lower priority means the accumulator must
        // not count the leak — and the same-instant reverse (node 2
        // starting at node 1's end) must count nothing either.
        run_schedule(&[(0, 0, 2, 0, 10), (1, 1, 2, 10, 5), (2, 1, 2, 15, 5)]).unwrap();
    }

    #[test]
    fn same_node_overlap_is_excluded_exactly() {
        // One node with three overlapping transmissions across the
        // Leak pair: the own-node corrections must cancel its own
        // contributions bit-for-bit while another node's leak stands.
        run_schedule(&[
            (0, 0, 1, 0, 20),
            (0, 1, 1, 5, 20),
            (0, 1, 3, 10, 20),
            (1, 0, 1, 12, 20),
        ])
        .unwrap();
    }

    proptest! {
        /// Satellite 3: adversarial TxStart/TxEnd sequences — narrow
        /// time ranges force many simultaneous ends and zero-duration
        /// gaps at event boundaries; duplicate nodes force own-node
        /// corrections; slot recycling is driven by the same queues
        /// the shard uses. After every event the accumulator must
        /// equal a fresh scan. On failure proptest shrinks and prints
        /// the minimal `(node, ch, sf, start, dur)` schedule.
        #[test]
        fn accum_matches_fresh_scan_after_every_event(
            sched in proptest::collection::vec(
                (0u8..N_NODES as u8, 0u8..N_CH as u8, 0u8..N_SF as u8, 0u64..12, 1u64..5),
                1..24,
            ),
        ) {
            run_schedule(&sched)?;
        }
    }
}
