//! The simulation world: medium arbitration + gateway pipeline + server
//! deduplication + loss-cause classification.
//!
//! A run processes three events per transmission — start (interference
//! registration), lock-on (decoder admission at every gateway, in global
//! lock-on order) and end (PHY verdicts, decoder release, delivery).
//!
//! A packet is *delivered* if at least one gateway of its own network
//! receives it (LoRaWAN's any-gateway reception, Appendix B). Lost
//! packets are classified per the paper's taxonomy (Fig. 4 / Fig. 13c):
//!
//! * **Decoder contention** — some own-network gateway detected the
//!   packet and would have decoded it, but had no free decoder; *inter*
//!   if foreign-network packets were holding decoders there, else
//!   *intra*;
//! * **Channel contention** — every detecting own-network gateway lost
//!   the packet to a same-channel same-SF collision ("multiple nodes
//!   using identical transmission settings"); *inter*/*intra* by the
//!   strongest colliding network;
//! * **Other** — below-threshold SNR, cross-SF interference, or no
//!   gateway in detection range.

use crate::engine::{Event, EventQueue};
use crate::topology::Topology;
use crate::traffic::TxPlan;
use gateway::radio::{Gateway, LockOnOutcome, PacketAtGateway};
use lora_phy::airtime::PacketParams;
use lora_phy::channel::{overlap_ratio, Channel};
use lora_phy::interference::{
    capture_outcome, leakage_gain_db, CaptureOutcome, CROSS_SF_REJECTION_DB,
    DETECTION_OVERLAP_THRESHOLD,
};
use lora_phy::snr::{decodable, noise_floor_dbm};
use lora_phy::types::{Bandwidth, DataRate, TxPowerDbm};
use obs::{NullSink, ObsEvent, ObsSink};
use serde::{Deserialize, Serialize};

/// A materialized transmission (a [`TxPlan`] with computed airtime).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmission {
    /// Simulator-global transmission id (index into the plan list).
    pub id: u64,
    /// Packet-lifecycle trace id ([`obs::packet_trace`] of the world's
    /// run epoch and `id`), threaded through every event this
    /// transmission generates. Deterministic for a fixed (epoch, id).
    pub trace: u64,
    /// Sending node index.
    pub node: usize,
    /// Operator/network of the sender.
    pub network_id: u32,
    /// Uplink channel.
    pub channel: Channel,
    /// Uplink data rate.
    pub dr: DataRate,
    /// First preamble symbol on air, µs.
    pub start_us: u64,
    /// Preamble end (gateway lock-on instant), µs.
    pub lock_on_us: u64,
    /// Airtime end, µs.
    pub end_us: u64,
    /// PHY payload length, bytes.
    pub payload_len: usize,
}

/// Why a packet was lost (paper taxonomy, Fig. 4, plus the chaos
/// layer's infrastructure bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossCause {
    /// Own-network packets exhausted the decoder pool.
    DecoderContentionIntra,
    /// Foreign-network packets held the decoders (Fig. 3e/f).
    DecoderContentionInter,
    /// Same-channel same-SF collision within the network.
    ChannelContentionIntra,
    /// Same-channel same-SF collision with a coexisting network.
    ChannelContentionInter,
    /// Interference, poor SNR, out of range, …
    Other,
    /// Lost to injected infrastructure failure (gateway crash mid-run,
    /// decoder lock-up, …): the packet would have been delivered on
    /// healthy hardware. Separates "lost to contention" from "lost to
    /// infrastructure" in fault-injection runs.
    Infrastructure,
}

impl LossCause {
    /// The observability mirror of this cause (`obs` is a leaf crate
    /// and defines its own copy of the taxonomy).
    pub fn obs_kind(self) -> obs::LossKind {
        match self {
            LossCause::DecoderContentionIntra => obs::LossKind::DecoderIntra,
            LossCause::DecoderContentionInter => obs::LossKind::DecoderInter,
            LossCause::ChannelContentionIntra => obs::LossKind::ChannelIntra,
            LossCause::ChannelContentionInter => obs::LossKind::ChannelInter,
            LossCause::Other => obs::LossKind::Other,
            LossCause::Infrastructure => obs::LossKind::Infrastructure,
        }
    }
}

/// Per-packet outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketRecord {
    /// Transmission id.
    pub tx_id: u64,
    /// Sending node index.
    pub node: usize,
    /// Operator/network of the sender.
    pub network_id: u32,
    /// Uplink channel.
    pub channel: Channel,
    /// Uplink data rate.
    pub dr: DataRate,
    /// First preamble symbol on air, µs.
    pub start_us: u64,
    /// Airtime end, µs.
    pub end_us: u64,
    /// PHY payload length, bytes.
    pub payload_len: usize,
    /// Whether at least one own-network gateway received the packet.
    pub delivered: bool,
    /// Gateways (by index) that successfully received the packet.
    pub receiving_gateways: Vec<usize>,
    /// Loss cause when not delivered.
    pub cause: Option<LossCause>,
}

/// How one gateway saw one transmission during admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seen {
    Admitted,
    Dropped {
        foreign_held: bool,
        /// Locked-up decoders contributed to the drop: physical
        /// capacity was still free when the packet was rejected.
        lockup: bool,
    },
    /// The gateway would have detected the packet but was crashed at
    /// lock-on.
    DownAtLockOn,
}

/// PHY verdict for one (transmission, gateway) pair, independent of
/// decoder availability.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Verdict {
    Ok,
    /// Lost to a same-channel same-SF collision with this network's node.
    Collision {
        with_network: u32,
    },
    /// Lost to interference / insufficient SINR.
    Interference,
}

/// The simulation world.
pub struct SimWorld {
    /// Deployment geometry and frozen link losses.
    pub topo: Topology,
    /// The gateways under simulation.
    pub gateways: Vec<Gateway>,
    /// Operator of each node.
    pub node_network: Vec<u32>,
    /// Current Tx power of each node (set by ADR / planning).
    pub node_power: Vec<TxPowerDbm>,
    /// CIC mode (Shahid et al., SIGCOMM'21): same-channel same-SF
    /// collisions are resolved at the PHY, so both packets survive the
    /// collision — but still compete for decoders, exactly how the
    /// paper evaluates CIC ("we apply the same decoder resource
    /// constraints of COTS gateways to CIC", §5.2.1).
    pub cic: bool,
    /// Attached observability sink, if any ([`SimWorld::set_obs_sink`]).
    obs: Option<Box<dyn ObsSink>>,
    /// Runs completed so far; disambiguates trace ids when one process
    /// (and one JSONL stream) hosts many runs. Advances on every run,
    /// observed or not, so attaching a sink never shifts the ids.
    run_epoch: u64,
}

impl SimWorld {
    /// Build a world; node powers default to 14 dBm.
    pub fn new(topo: Topology, node_network: Vec<u32>, gateways: Vec<Gateway>) -> SimWorld {
        assert_eq!(topo.nodes.len(), node_network.len());
        let n = topo.nodes.len();
        SimWorld {
            topo,
            gateways,
            node_network,
            node_power: vec![TxPowerDbm(14.0); n],
            cic: false,
            obs: None,
            run_epoch: 0,
        }
    }

    /// The epoch the *next* run will mint trace ids under (the number
    /// of runs completed so far).
    pub fn run_epoch(&self) -> u64 {
        self.run_epoch
    }

    /// Attach an observability sink: subsequent runs stream typed
    /// [`ObsEvent`]s into it (transmission starts, lock-ons, decoder
    /// acquire/release/drops, per-packet outcomes). Use
    /// [`obs::SharedSink`] to keep a reading handle outside the world.
    pub fn set_obs_sink(&mut self, sink: Box<dyn ObsSink>) {
        self.obs = Some(sink);
    }

    /// Detach and return the current observability sink, if any.
    pub fn take_obs_sink(&mut self) -> Option<Box<dyn ObsSink>> {
        self.obs.take()
    }

    /// Reset gateway pipelines and stats between runs.
    pub fn reset(&mut self) {
        for g in &mut self.gateways {
            g.reset();
        }
    }

    /// Execute the planned transmissions and return one record per plan.
    pub fn run(&mut self, plans: &[TxPlan]) -> Vec<PacketRecord> {
        self.run_with_faults(plans, &crate::faults::NoFaults)
    }

    /// [`Self::run`] under an infrastructure-fault schedule: crashed
    /// gateways detect nothing (and lose receptions in flight when the
    /// crash window overlaps them), locked-up decoders shrink admission
    /// capacity, and losses that healthy hardware would have avoided
    /// are classified [`LossCause::Infrastructure`].
    pub fn run_with_faults(
        &mut self,
        plans: &[TxPlan],
        faults: &dyn crate::faults::InfraFaults,
    ) -> Vec<PacketRecord> {
        let epoch = self.run_epoch;
        self.run_epoch += 1;
        let txs: Vec<Transmission> = plans
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let airtime = PacketParams::lorawan_uplink(
                    p.dr.spreading_factor(),
                    Bandwidth::Khz125,
                    p.payload_len,
                )
                .airtime();
                Transmission {
                    id: i as u64,
                    trace: obs::packet_trace(epoch, i as u64),
                    node: p.node,
                    network_id: self.node_network[p.node],
                    channel: p.channel,
                    dr: p.dr,
                    start_us: p.start_us,
                    lock_on_us: airtime.lock_on_at(p.start_us),
                    end_us: airtime.end_at(p.start_us),
                    payload_len: p.payload_len,
                }
            })
            .collect();

        let mut queue = EventQueue::new();
        for t in &txs {
            queue.push(t.start_us, Event::TxStart { tx_id: t.id });
            queue.push(t.lock_on_us, Event::LockOn { tx_id: t.id });
            queue.push(t.end_us, Event::TxEnd { tx_id: t.id });
        }

        // Take the sink out of `self` for the duration of the run so the
        // event loop can borrow gateways mutably alongside it.
        let mut taken = self.obs.take();
        let mut null = NullSink;
        let sink: &mut dyn ObsSink = match taken.as_deref_mut() {
            Some(s) => s,
            None => &mut null,
        };

        // Gateway identities first: analyzers need the gateway→network
        // ownership map before any packet event to classify decoder
        // holds as own- vs foreign-network.
        if sink.enabled() {
            for g in &self.gateways {
                sink.record(&ObsEvent::GatewayInfo {
                    gw: g.id as u32,
                    network: g.network_id,
                    capacity: g.pool().capacity() as u32,
                });
            }
        }

        // Interference registration: ids of spectrally-overlapping
        // transmissions whose airtime intersects each transmission's.
        let mut interferers: Vec<Vec<u64>> = vec![Vec::new(); txs.len()];
        let mut on_air: Vec<u64> = Vec::new();
        // Admission bookkeeping: per tx, per gateway.
        let mut seen: Vec<Vec<(usize, Seen)>> = vec![Vec::new(); txs.len()];
        let mut records: Vec<Option<PacketRecord>> = vec![None; txs.len()];

        while let Some((_, ev)) = queue.pop() {
            match ev {
                Event::TxStart { tx_id } => {
                    let t = &txs[tx_id as usize];
                    if sink.enabled() {
                        sink.record(&ObsEvent::TxStart {
                            t_us: t.start_us,
                            trace: t.trace,
                            tx: t.id,
                            node: t.node as u64,
                            network: t.network_id,
                        });
                    }
                    for &o_id in &on_air {
                        let o = &txs[o_id as usize];
                        if o.node != t.node && overlap_ratio(&t.channel, &o.channel) > 0.0 {
                            interferers[tx_id as usize].push(o_id);
                            interferers[o_id as usize].push(tx_id);
                        }
                    }
                    on_air.push(tx_id);
                }
                Event::LockOn { tx_id } => {
                    let t = &txs[tx_id as usize];
                    let now = t.lock_on_us;
                    if sink.enabled() {
                        sink.record(&ObsEvent::PacketLockOn {
                            t_us: now,
                            trace: t.trace,
                            tx: t.id,
                            node: t.node as u64,
                            network: t.network_id,
                        });
                    }
                    for (g_idx, g) in self.gateways.iter_mut().enumerate() {
                        let pkt = packet_at(&self.topo, &self.node_power, t, g_idx);
                        if faults.gateway_down(g_idx, now) {
                            // A crashed gateway admits nothing. Any
                            // receptions it still holds are failed (and
                            // their decoders released) at their TxEnd.
                            if g.would_detect(&pkt) {
                                seen[tx_id as usize].push((g_idx, Seen::DownAtLockOn));
                            }
                            continue;
                        }
                        g.set_locked_decoders(faults.locked_decoders(g_idx, now));
                        match g.on_lock_on_obs(pkt, sink) {
                            LockOnOutcome::Admitted => {
                                seen[tx_id as usize].push((g_idx, Seen::Admitted));
                            }
                            LockOnOutcome::DroppedNoDecoder => {
                                let foreign = g.foreign_held_decoders() > 0;
                                // If physical decoders were still free,
                                // only the lock-up made this a drop.
                                let lockup = g.pool().locked() > 0
                                    && g.decoders_in_use() < g.pool().capacity();
                                seen[tx_id as usize].push((
                                    g_idx,
                                    Seen::Dropped {
                                        foreign_held: foreign,
                                        lockup,
                                    },
                                ));
                            }
                            LockOnOutcome::NotDetected => {}
                        }
                    }
                }
                Event::TxEnd { tx_id } => {
                    on_air.retain(|&id| id != tx_id);
                    let record = self.finish_tx(
                        &txs,
                        tx_id,
                        &seen[tx_id as usize],
                        &interferers,
                        faults,
                        sink,
                    );
                    records[tx_id as usize] = Some(record);
                }
            }
        }

        sink.flush();
        self.obs = taken;

        records
            .into_iter()
            .map(|r| r.expect("every tx finished"))
            .collect()
    }

    /// Resolve PHY verdicts, deliver outcomes to gateways, classify.
    fn finish_tx(
        &mut self,
        txs: &[Transmission],
        tx_id: u64,
        seen: &[(usize, Seen)],
        interferers: &[Vec<u64>],
        faults: &dyn crate::faults::InfraFaults,
        sink: &mut dyn ObsSink,
    ) -> PacketRecord {
        let t = &txs[tx_id as usize];
        let mut receiving = Vec::new();
        let mut decoder_drop: Option<bool> = None; // Some(foreign?) if droppable-but-clean
        let mut collision_with: Option<u32> = None;
        let mut own_detected = false;
        // An own-network gateway would have received the packet but for
        // an injected fault (crash or decoder lock-up).
        let mut infra_loss = false;

        for &(g_idx, how) in seen {
            let own = self.gateways[g_idx].network_id == t.network_id;
            let verdict = self.verdict(txs, t, g_idx, &interferers[tx_id as usize]);
            if how == Seen::Admitted {
                let crashed_mid_rx = faults.gateway_down_during(g_idx, t.lock_on_us, t.end_us);
                let phy_ok = verdict == Verdict::Ok && !crashed_mid_rx;
                if let Some(gateway::radio::ReceptionOutcome::Received) =
                    self.gateways[g_idx].on_tx_end_obs(tx_id, phy_ok, sink)
                {
                    receiving.push(g_idx);
                }
                if own && crashed_mid_rx && verdict == Verdict::Ok {
                    infra_loss = true;
                }
            }
            if own {
                own_detected = true;
                match (how, verdict) {
                    (Seen::DownAtLockOn, Verdict::Ok) => {
                        infra_loss = true;
                    }
                    (
                        Seen::Dropped {
                            foreign_held,
                            lockup,
                        },
                        Verdict::Ok,
                    ) => {
                        if lockup {
                            // Healthy hardware had the decoder to spare.
                            infra_loss = true;
                        } else {
                            // Would have been received with a free decoder.
                            let entry = decoder_drop.get_or_insert(false);
                            *entry = *entry || foreign_held;
                        }
                    }
                    (_, Verdict::Collision { with_network }) => {
                        collision_with.get_or_insert(with_network);
                    }
                    _ => {}
                }
            }
        }

        let delivered = !receiving.is_empty();
        let cause = if delivered {
            None
        } else if infra_loss {
            // Healthy infrastructure would have delivered the packet:
            // the fault is the proximate cause even if other gateways
            // also dropped it by genuine contention.
            Some(LossCause::Infrastructure)
        } else if let Some(foreign) = decoder_drop {
            Some(if foreign {
                LossCause::DecoderContentionInter
            } else {
                LossCause::DecoderContentionIntra
            })
        } else if let Some(net) = collision_with {
            Some(if net == t.network_id {
                LossCause::ChannelContentionIntra
            } else {
                LossCause::ChannelContentionInter
            })
        } else {
            let _ = own_detected; // either undetected or SNR/interference
            Some(LossCause::Other)
        };

        if sink.enabled() {
            sink.record(&ObsEvent::PacketOutcome {
                t_us: t.end_us,
                trace: t.trace,
                tx: tx_id,
                delivered,
                cause: cause.map(LossCause::obs_kind),
            });
        }

        PacketRecord {
            tx_id,
            node: t.node,
            network_id: t.network_id,
            channel: t.channel,
            dr: t.dr,
            start_us: t.start_us,
            end_us: t.end_us,
            payload_len: t.payload_len,
            delivered,
            receiving_gateways: receiving,
            cause,
        }
    }

    /// PHY verdict for `t` at gateway `g_idx`, given its interferer set.
    fn verdict(
        &self,
        txs: &[Transmission],
        t: &Transmission,
        g_idx: usize,
        intf: &[u64],
    ) -> Verdict {
        let rssi_v = self.topo.rssi_dbm(t.node, g_idx, self.node_power[t.node]);
        let snr_v = self.topo.snr_db(t.node, g_idx, self.node_power[t.node]);
        let sf_v = t.dr.spreading_factor();
        // Effective in-band interference accumulated from partially
        // overlapping channels (linear mW relative to dBm).
        let mut intf_lin = 0.0f64;
        let mut strongest_collider: Option<(f64, u32)> = None;
        let mut interference_kill = false;

        for &o_id in intf {
            let o = &txs[o_id as usize];
            let rho = overlap_ratio(&t.channel, &o.channel);
            if rho <= 0.0 {
                continue;
            }
            let rssi_o = self.topo.rssi_dbm(o.node, g_idx, self.node_power[o.node]);
            if rho >= DETECTION_OVERLAP_THRESHOLD {
                if o.dr.spreading_factor() == sf_v {
                    if self.cic {
                        // CIC resolves the collision; both survive.
                        continue;
                    }
                    // Same settings: the capture effect decides.
                    let (first, second) = if t.lock_on_us <= o.lock_on_us {
                        (rssi_v, rssi_o)
                    } else {
                        (rssi_o, rssi_v)
                    };
                    let survives = match capture_outcome(first, second) {
                        CaptureOutcome::FirstSurvives => t.lock_on_us <= o.lock_on_us,
                        CaptureOutcome::SecondSurvives => t.lock_on_us > o.lock_on_us,
                        CaptureOutcome::BothLost => false,
                    };
                    if !survives {
                        match strongest_collider {
                            Some((r, _)) if r >= rssi_o => {}
                            _ => strongest_collider = Some((rssi_o, o.network_id)),
                        }
                    }
                } else {
                    // Cross-SF quasi-orthogonality.
                    if rssi_v - rssi_o < CROSS_SF_REJECTION_DB {
                        interference_kill = true;
                    }
                }
            } else {
                let orth = o.dr.spreading_factor() != sf_v;
                if let Some(gain) = leakage_gain_db(&t.channel, &o.channel, orth) {
                    intf_lin += 10f64.powf((rssi_o + gain) / 10.0);
                }
            }
        }

        if let Some((_, net)) = strongest_collider {
            return Verdict::Collision { with_network: net };
        }
        // SINR over thermal noise plus leaked foreign energy.
        let noise_lin = 10f64.powf(noise_floor_dbm(Bandwidth::Khz125) / 10.0);
        let sinr = rssi_v - 10.0 * (noise_lin + intf_lin).log10();
        let _ = snr_v;
        if interference_kill || !decodable(sinr, sf_v, 0.0) {
            return Verdict::Interference;
        }
        Verdict::Ok
    }
}

/// The per-gateway view of a transmission.
fn packet_at(
    topo: &Topology,
    node_power: &[TxPowerDbm],
    t: &Transmission,
    g_idx: usize,
) -> PacketAtGateway {
    PacketAtGateway {
        tx_id: t.id,
        trace: t.trace,
        network_id: t.network_id,
        channel: t.channel,
        sf: t.dr.spreading_factor(),
        rssi_dbm: topo.rssi_dbm(t.node, g_idx, node_power[t.node]),
        snr_db: topo.snr_db(t.node, g_idx, node_power[t.node]),
        lock_on_us: t.lock_on_us,
        end_us: t.end_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Pos;
    use crate::traffic::{concurrent_burst, BurstScheme};
    use gateway::config::GatewayConfig;
    use gateway::profile::GatewayProfile;
    use lora_phy::pathloss::PathLossModel;
    use lora_phy::region::StandardChannelPlan;

    /// A small, shadowing-free world where every link is strong and
    /// near-far power differences stay below the cross-SF rejection
    /// margin — SNR is never the limiting factor.
    fn clean_world(n_nodes: usize, gw_networks: &[u32]) -> SimWorld {
        let model = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let topo = Topology::new((100.0, 100.0), n_nodes, gw_networks.len(), model, 1);
        let profile = GatewayProfile::rak7268cv2();
        let plan = StandardChannelPlan::us915_subband(0);
        let gateways = gw_networks
            .iter()
            .enumerate()
            .map(|(i, &net)| {
                Gateway::new(
                    i,
                    net,
                    profile,
                    GatewayConfig::new(profile, plan.channels.clone()).unwrap(),
                )
            })
            .collect();
        SimWorld::new(topo, vec![1; n_nodes], gateways)
    }

    /// Distinct (channel, DR) assignments over the sub-band-0 plan.
    fn orthogonal_assignments(n: usize) -> Vec<(usize, Channel, DataRate)> {
        let plan = StandardChannelPlan::us915_subband(0);
        (0..n)
            .map(|i| {
                (
                    i,
                    plan.channels[i % 8],
                    DataRate::from_index(i / 8 % 6).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn sixteen_cap_single_gateway() {
        // Fig 2a: 20 orthogonal concurrent users, one gateway ⇒ 16
        // received, 4 lost to decoder contention.
        let mut w = clean_world(20, &[1]);
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        let delivered = recs.iter().filter(|r| r.delivered).count();
        assert_eq!(delivered, 16);
        let decoder_losses = recs
            .iter()
            .filter(|r| r.cause == Some(LossCause::DecoderContentionIntra))
            .count();
        assert_eq!(decoder_losses, 4);
        // FCFS: exactly the first 16 by lock-on order.
        for r in &recs {
            assert_eq!(r.delivered, r.tx_id < 16, "tx {}", r.tx_id);
        }
    }

    #[test]
    fn homogeneous_extra_gateways_do_not_help() {
        // Fig 2a: 3 gateways with identical channel plans still ⇒ 16.
        let mut w = clean_world(20, &[1, 1, 1]);
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        assert_eq!(recs.iter().filter(|r| r.delivered).count(), 16);
    }

    #[test]
    fn heterogeneous_gateways_do_help() {
        // Strategy ②: two gateways covering disjoint halves of the plan
        // lift capacity above 16 for 24 users on 8 channels... here we
        // give each gateway 4 distinct channels and 24 orthogonal users.
        let profile = GatewayProfile::rak7268cv2();
        let plan = StandardChannelPlan::us915_subband(0);
        let mut w = clean_world(24, &[1, 1]);
        w.gateways[0]
            .reconfigure(GatewayConfig::new(profile, plan.channels[..4].to_vec()).unwrap());
        w.gateways[1]
            .reconfigure(GatewayConfig::new(profile, plan.channels[4..].to_vec()).unwrap());
        let plans = concurrent_burst(
            &orthogonal_assignments(24),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        let delivered = recs.iter().filter(|r| r.delivered).count();
        assert_eq!(
            delivered, 24,
            "12 users per gateway fit in 16 decoders each"
        );
    }

    #[test]
    fn coexisting_networks_sum_to_sixteen() {
        // Fig 2b: two networks, same spectrum, one gateway each with the
        // same plan: total received across both networks = 16.
        let mut w = clean_world(20, &[1, 2]);
        w.node_network = (0..20).map(|i| if i % 2 == 0 { 1 } else { 2 }).collect();
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        let net1 = recs
            .iter()
            .filter(|r| r.delivered && r.network_id == 1)
            .count();
        let net2 = recs
            .iter()
            .filter(|r| r.delivered && r.network_id == 2)
            .count();
        assert_eq!(net1 + net2, 16, "aggregate cap across coexisting networks");
        // Losses are inter-network decoder contention.
        let inter = recs
            .iter()
            .filter(|r| r.cause == Some(LossCause::DecoderContentionInter))
            .count();
        assert_eq!(inter, 4);
    }

    #[test]
    fn same_settings_collide() {
        // Two nodes, identical channel+DR, fully overlapping in time,
        // equal received power ⇒ both lost to intra channel contention.
        let mut w = clean_world(2, &[1]);
        w.topo.loss_db[0][0] = 80.0;
        w.topo.loss_db[1][0] = 80.0;
        let ch = StandardChannelPlan::us915_subband(0).channels[0];
        let plans = vec![
            TxPlan {
                node: 0,
                channel: ch,
                dr: DataRate::DR5,
                start_us: 0,
                payload_len: 10,
            },
            TxPlan {
                node: 1,
                channel: ch,
                dr: DataRate::DR5,
                start_us: 1_000,
                payload_len: 10,
            },
        ];
        let recs = w.run(&plans);
        assert!(recs.iter().all(|r| !r.delivered));
        assert!(recs
            .iter()
            .all(|r| r.cause == Some(LossCause::ChannelContentionIntra)));
    }

    #[test]
    fn capture_lets_strong_packet_survive() {
        // Same settings but one node much closer: the strong one wins.
        let model = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let mut topo = Topology::new((2_000.0, 100.0), 2, 1, model, 1);
        // Place node 0 near the gateway, node 1 far.
        topo.nodes[0] = Pos {
            x_m: topo.gateways[0].x_m + 50.0,
            y_m: topo.gateways[0].y_m,
        };
        topo.nodes[1] = Pos {
            x_m: topo.gateways[0].x_m + 900.0,
            y_m: topo.gateways[0].y_m,
        };
        let topo = {
            // Re-freeze losses for the new positions (no shadowing).
            let mut t = topo;
            for i in 0..2 {
                for j in 0..1 {
                    t.loss_db[i][j] = t.model.mean_loss_db(t.nodes[i].dist_m(&t.gateways[j]));
                }
            }
            t
        };
        let profile = GatewayProfile::rak7268cv2();
        let plan = StandardChannelPlan::us915_subband(0);
        let gw = Gateway::new(
            0,
            1,
            profile,
            GatewayConfig::new(profile, plan.channels.clone()).unwrap(),
        );
        let mut w = SimWorld::new(topo, vec![1, 1], gw.into_iter_helper());
        let ch = plan.channels[0];
        let plans = vec![
            TxPlan {
                node: 0,
                channel: ch,
                dr: DataRate::DR4,
                start_us: 0,
                payload_len: 10,
            },
            TxPlan {
                node: 1,
                channel: ch,
                dr: DataRate::DR4,
                start_us: 500,
                payload_len: 10,
            },
        ];
        let recs = w.run(&plans);
        assert!(recs[0].delivered, "strong near packet captures");
        assert!(!recs[1].delivered);
        assert_eq!(recs[1].cause, Some(LossCause::ChannelContentionIntra));
    }

    #[test]
    fn misaligned_networks_do_not_contend() {
        // Strategy ⑧ in miniature: network 2 on 40%-shifted channels.
        // Network 1's gateway never admits network 2's packets.
        let mut w = clean_world(20, &[1]);
        w.node_network = (0..20).map(|i| if i < 10 { 1 } else { 2 }).collect();
        let plan = StandardChannelPlan::us915_subband(0);
        let assigns: Vec<(usize, Channel, DataRate)> = (0..20)
            .map(|i| {
                let base = plan.channels[i % 8];
                let ch = if i < 10 {
                    base
                } else {
                    Channel::khz125(base.center_hz + 50_000) // 40% shift
                };
                (i, ch, DataRate::from_index(i / 8 % 6).unwrap())
            })
            .collect();
        let plans = concurrent_burst(
            &assigns,
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        // All 10 of network 1 delivered (no foreign occupation).
        let net1_ok = recs
            .iter()
            .filter(|r| r.network_id == 1 && r.delivered)
            .count();
        assert_eq!(net1_ok, 10);
        let foreign_filtered = w.gateways[0].stats().foreign_filtered;
        assert_eq!(
            foreign_filtered, 0,
            "misaligned packets never entered the pipeline"
        );
    }

    #[test]
    fn obs_sink_sees_full_event_stream() {
        use obs::{MetricsSink, SharedSink};
        // Same 20-user burst as `sixteen_cap_single_gateway`, observed.
        let shared = SharedSink::new(MetricsSink::new());
        let mut w = clean_world(20, &[1]);
        w.set_obs_sink(Box::new(shared.handle()));
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        assert_eq!(recs.iter().filter(|r| r.delivered).count(), 16);
        shared.with(|m| {
            let reg = m.registry();
            assert_eq!(reg.counter("tx_start"), 20);
            assert_eq!(reg.counter("packet_lock_on"), 20);
            assert_eq!(reg.counter("decoder_acquired"), 16);
            assert_eq!(reg.counter("decoder_released"), 16);
            assert_eq!(reg.counter("pool_full_drop"), 4);
            assert_eq!(reg.counter("delivered"), 16);
            assert_eq!(reg.counter("loss_DecoderIntra"), 4);
            let occ = &m.gateways()[&0];
            assert_eq!(occ.peak_in_use, 16, "the pool saturated");
            assert_eq!(occ.capacity, 16);
            let h = reg.histogram("dispatch_latency_us").unwrap();
            assert_eq!(h.total(), 16, "one hold-time sample per admission");
        });
        // The sink survives the run and can be detached.
        assert!(w.take_obs_sink().is_some());
        assert!(w.take_obs_sink().is_none());
    }

    #[test]
    fn obs_instrumented_run_matches_unobserved() {
        // Identical records with and without a sink attached.
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let mut plain = clean_world(20, &[1]);
        let recs_plain = plain.run(&plans);
        let mut observed = clean_world(20, &[1]);
        observed.set_obs_sink(Box::new(obs::RingSink::new(1024)));
        let recs_obs = observed.run(&plans);
        assert_eq!(recs_plain, recs_obs);
    }

    #[test]
    fn out_of_range_is_other() {
        let model = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let topo = Topology::new((60_000.0, 60_000.0), 1, 1, model, 1);
        let profile = GatewayProfile::rak7268cv2();
        let plan = StandardChannelPlan::us915_subband(0);
        let gw = Gateway::new(
            0,
            1,
            profile,
            GatewayConfig::new(profile, plan.channels.clone()).unwrap(),
        );
        let mut w = SimWorld::new(topo, vec![1], gw.into_iter_helper());
        let plans = vec![TxPlan {
            node: 0,
            channel: plan.channels[0],
            dr: DataRate::DR5,
            start_us: 0,
            payload_len: 10,
        }];
        let recs = w.run(&plans);
        assert!(!recs[0].delivered);
        assert_eq!(recs[0].cause, Some(LossCause::Other));
    }

    // Small helper to turn one gateway into a Vec.
    trait IntoVecHelper {
        fn into_iter_helper(self) -> Vec<Gateway>;
    }
    impl IntoVecHelper for Gateway {
        fn into_iter_helper(self) -> Vec<Gateway> {
            vec![self]
        }
    }
}
