//! The simulation world: medium arbitration + gateway pipeline + server
//! deduplication + loss-cause classification.
//!
//! A run processes three events per transmission — start (interference
//! registration), lock-on (decoder admission at every gateway, in global
//! lock-on order) and end (PHY verdicts, decoder release, delivery).
//!
//! A packet is *delivered* if at least one gateway of its own network
//! receives it (LoRaWAN's any-gateway reception, Appendix B). Lost
//! packets are classified per the paper's taxonomy (Fig. 4 / Fig. 13c):
//!
//! * **Decoder contention** — some own-network gateway detected the
//!   packet and would have decoded it, but had no free decoder; *inter*
//!   if foreign-network packets were holding decoders there, else
//!   *intra*;
//! * **Channel contention** — every detecting own-network gateway lost
//!   the packet to a same-channel same-SF collision ("multiple nodes
//!   using identical transmission settings"); *inter*/*intra* by the
//!   strongest colliding network;
//! * **Other** — below-threshold SNR, cross-SF interference, or no
//!   gateway in detection range.
//!
//! # The indexed hot path
//!
//! The event loop runs over a per-run `runctx` context: the
//! schedule is sorted once into exact [`crate::engine::EventQueue`] pop
//! order (every event is known before the loop, so no heap is needed),
//! link gains come from flat tables, lock-on visits only the gateways
//! whose listening set covers the packet's channel (everything else is
//! a guaranteed `NotDetected`, reconciled in bulk at run end), TxStart
//! scans per-channel on-air buckets instead of the global on-air list,
//! and TxEnd removal is an O(1) swap-remove. All per-run buffers are
//! owned by the world and reused, so a warmed world's steady state
//! performs no heap allocation beyond the returned records. The loop is
//! bit-for-bit equivalent to the retained pre-indexing implementation
//! in [`crate::reference`]; the workspace `sim_equivalence` proptest
//! holds the two to record-for-record identity.

use crate::engine::Event;
use crate::runctx::{PairClass, RunContext, RunScratch};
use crate::topology::Topology;
use crate::traffic::TxPlan;
use gateway::radio::{Gateway, LockOnOutcome, PacketAtGateway};
use lora_phy::airtime::PacketParams;
use lora_phy::channel::Channel;
use lora_phy::interference::{capture_outcome, CaptureOutcome, CROSS_SF_REJECTION_DB};
use lora_phy::snr::decodable;
use lora_phy::types::{Bandwidth, DataRate, TxPowerDbm};
use obs::{NullSink, ObsEvent, ObsSink};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A materialized transmission (a [`TxPlan`] with computed airtime).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmission {
    /// Simulator-global transmission id (index into the plan list).
    pub id: u64,
    /// Packet-lifecycle trace id ([`obs::packet_trace`] of the world's
    /// run epoch and `id`), threaded through every event this
    /// transmission generates. Deterministic for a fixed (epoch, id).
    pub trace: u64,
    /// Sending node index.
    pub node: usize,
    /// Operator/network of the sender.
    pub network_id: u32,
    /// Uplink channel.
    pub channel: Channel,
    /// Uplink data rate.
    pub dr: DataRate,
    /// First preamble symbol on air, µs.
    pub start_us: u64,
    /// Preamble end (gateway lock-on instant), µs.
    pub lock_on_us: u64,
    /// Airtime end, µs.
    pub end_us: u64,
    /// PHY payload length, bytes.
    pub payload_len: usize,
}

/// Why a packet was lost (paper taxonomy, Fig. 4, plus the chaos
/// layer's infrastructure bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossCause {
    /// Own-network packets exhausted the decoder pool.
    DecoderContentionIntra,
    /// Foreign-network packets held the decoders (Fig. 3e/f).
    DecoderContentionInter,
    /// Same-channel same-SF collision within the network.
    ChannelContentionIntra,
    /// Same-channel same-SF collision with a coexisting network.
    ChannelContentionInter,
    /// Interference, poor SNR, out of range, …
    Other,
    /// Lost to injected infrastructure failure (gateway crash mid-run,
    /// decoder lock-up, …): the packet would have been delivered on
    /// healthy hardware. Separates "lost to contention" from "lost to
    /// infrastructure" in fault-injection runs.
    Infrastructure,
}

impl LossCause {
    /// The observability mirror of this cause (`obs` is a leaf crate
    /// and defines its own copy of the taxonomy).
    pub fn obs_kind(self) -> obs::LossKind {
        match self {
            LossCause::DecoderContentionIntra => obs::LossKind::DecoderIntra,
            LossCause::DecoderContentionInter => obs::LossKind::DecoderInter,
            LossCause::ChannelContentionIntra => obs::LossKind::ChannelIntra,
            LossCause::ChannelContentionInter => obs::LossKind::ChannelInter,
            LossCause::Other => obs::LossKind::Other,
            LossCause::Infrastructure => obs::LossKind::Infrastructure,
        }
    }
}

/// Per-packet outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketRecord {
    /// Transmission id.
    pub tx_id: u64,
    /// Sending node index.
    pub node: usize,
    /// Operator/network of the sender.
    pub network_id: u32,
    /// Uplink channel.
    pub channel: Channel,
    /// Uplink data rate.
    pub dr: DataRate,
    /// First preamble symbol on air, µs.
    pub start_us: u64,
    /// Airtime end, µs.
    pub end_us: u64,
    /// PHY payload length, bytes.
    pub payload_len: usize,
    /// Whether at least one own-network gateway received the packet.
    pub delivered: bool,
    /// Gateways (by index) that successfully received the packet.
    pub receiving_gateways: Vec<usize>,
    /// Loss cause when not delivered.
    pub cause: Option<LossCause>,
}

/// How one gateway saw one transmission during admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Seen {
    /// Detected and assigned a decoder.
    Admitted,
    /// Detected but rejected by the decoder pool.
    Dropped {
        /// Foreign-network packets held decoders at rejection time.
        foreign_held: bool,
        /// Locked-up decoders contributed to the drop: physical
        /// capacity was still free when the packet was rejected.
        lockup: bool,
    },
    /// The gateway would have detected the packet but was crashed at
    /// lock-on.
    DownAtLockOn,
}

/// PHY verdict for one (transmission, gateway) pair, independent of
/// decoder availability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Verdict {
    Ok,
    /// Lost to a same-channel same-SF collision with this network's node.
    Collision {
        with_network: u32,
    },
    /// Lost to interference / insufficient SINR.
    Interference,
}

/// Reusable buffers for the batched per-TxEnd verdict computation
/// ([`batch_verdicts`]): one slot per seen gateway, aligned with the
/// transmission's admission span. Slots are invalidated by a
/// generation stamp instead of a `clear()+resize()` re-zero, so
/// [`Self::prepare`] is O(1) over the retained capacity.
#[derive(Debug, Default)]
pub(crate) struct VerdictScratch {
    /// Accumulated leaked interference, linear mW relative to dBm.
    intf_lin: Vec<f64>,
    /// Strongest same-settings collider so far (RSSI, network id).
    strongest: Vec<Option<(f64, u32)>>,
    /// Cross-SF interference kill flag.
    kill: Vec<bool>,
    /// Per-slot validity stamp; a slot holds live data iff its stamp
    /// equals the current generation.
    stamp: Vec<u64>,
    /// Current batch generation (bumped by [`Self::prepare`]).
    gen: u64,
    /// Final verdicts, indexed like the seen slice.
    pub(crate) verdicts: Vec<Verdict>,
}

impl VerdictScratch {
    /// Begin a batch over `k` gateways. Existing capacity is reused and
    /// stale slots are left in place — they read as empty until first
    /// touched, because their stamp no longer matches.
    pub(crate) fn prepare(&mut self, k: usize) {
        self.gen += 1;
        if self.stamp.len() < k {
            self.stamp.resize(k, 0);
            self.intf_lin.resize(k, 0.0);
            self.strongest.resize(k, None);
            self.kill.resize(k, false);
        }
        self.verdicts.clear();
    }

    /// Reset slot `i` to the empty state on its first touch this batch.
    #[inline]
    fn touch(&mut self, i: usize) {
        if self.stamp[i] != self.gen {
            self.stamp[i] = self.gen;
            self.intf_lin[i] = 0.0;
            self.strongest[i] = None;
            self.kill[i] = false;
        }
    }

    /// Add leaked interference (linear power) at slot `i`.
    #[inline]
    pub(crate) fn add_intf(&mut self, i: usize, lin: f64) {
        self.touch(i);
        self.intf_lin[i] += lin;
    }

    /// Mark slot `i` killed by cross-SF interference.
    #[inline]
    pub(crate) fn set_kill(&mut self, i: usize) {
        self.touch(i);
        self.kill[i] = true;
    }

    /// Offer a same-SF collider at slot `i`; keeps the strongest seen
    /// (first registered wins ties, matching the reference loop).
    #[inline]
    pub(crate) fn note_collider(&mut self, i: usize, rssi: f64, network: u32) {
        self.touch(i);
        match self.strongest[i] {
            Some((r, _)) if r >= rssi => {}
            _ => self.strongest[i] = Some((rssi, network)),
        }
    }

    /// Read slot `i`: `(leaked linear power, strongest collider, kill)`.
    #[inline]
    pub(crate) fn state(&self, i: usize) -> (f64, Option<(f64, u32)>, bool) {
        if self.stamp.get(i) == Some(&self.gen) {
            (self.intf_lin[i], self.strongest[i], self.kill[i])
        } else {
            (0.0, None, false)
        }
    }
}

/// Aggregate counters from the most recent run, exposed via
/// [`SimWorld::last_run_stats`]. The world never streams these into its
/// attached obs sink itself — `wall_us` is host wall-clock, and runs
/// must stay byte-identical for a fixed seed — so callers that want the
/// [`obs::ObsEvent::SimRunStats`] event emit it via [`Self::to_event`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimRunStats {
    /// Transmissions in the plan.
    pub txs: u64,
    /// Events processed (3 × txs).
    pub events: u64,
    /// Gateways in the world.
    pub gateways: u32,
    /// (transmission, gateway) admission pairs actually visited at
    /// lock-on after the candidate cull.
    pub candidate_visits: u64,
    /// `txs × gateways`: the pairs the un-indexed loop would visit.
    pub candidate_ceiling: u64,
    /// Accumulator-mode incremental contributions added at TxStart
    /// (leak-sum adds + max-index inserts); 0 for scan-mode runs.
    #[serde(default)]
    pub accum_updates: u64,
    /// Accumulator-mode contributions exactly undone at TxEnd.
    #[serde(default)]
    pub accum_undos: u64,
    /// Stale lazy-max index entries evicted during accumulator-mode
    /// verdict queries.
    #[serde(default)]
    pub accum_evictions: u64,
    /// Time-wheel level cascades across all shards (0 for monolithic
    /// runs, which keep the binary-heap queue).
    #[serde(default)]
    pub wheel_cascades: u64,
    /// Host wall-clock duration of the run, µs.
    pub wall_us: u64,
}

impl SimRunStats {
    /// Fraction of the full (transmission, gateway) product the lock-on
    /// loop actually visited (1.0 = no cull).
    pub fn cull_ratio(&self) -> f64 {
        if self.candidate_ceiling == 0 {
            1.0
        } else {
            self.candidate_visits as f64 / self.candidate_ceiling as f64
        }
    }

    /// The observability event mirroring these counters.
    pub fn to_event(&self, trace: u64) -> ObsEvent {
        ObsEvent::SimRunStats {
            trace,
            txs: self.txs,
            events: self.events,
            gateways: self.gateways,
            candidate_visits: self.candidate_visits,
            candidate_ceiling: self.candidate_ceiling,
            accum_updates: self.accum_updates,
            accum_undos: self.accum_undos,
            accum_evictions: self.accum_evictions,
            wheel_cascades: self.wheel_cascades,
            wall_us: self.wall_us,
        }
    }
}

/// The simulation world.
pub struct SimWorld {
    /// Deployment geometry and frozen link losses.
    pub topo: Topology,
    /// The gateways under simulation.
    pub gateways: Vec<Gateway>,
    /// Operator of each node.
    pub node_network: Vec<u32>,
    /// Current Tx power of each node (set by ADR / planning).
    pub node_power: Vec<TxPowerDbm>,
    /// CIC mode (Shahid et al., SIGCOMM'21): same-channel same-SF
    /// collisions are resolved at the PHY, so both packets survive the
    /// collision — but still compete for decoders, exactly how the
    /// paper evaluates CIC ("we apply the same decoder resource
    /// constraints of COTS gateways to CIC", §5.2.1).
    pub cic: bool,
    /// Attached observability sink, if any ([`SimWorld::set_obs_sink`]).
    pub(crate) obs: Option<Box<dyn ObsSink>>,
    /// Runs completed so far; disambiguates trace ids when one process
    /// (and one JSONL stream) hosts many runs. Advances on every run,
    /// observed or not, so attaching a sink never shifts the ids.
    pub(crate) run_epoch: u64,
    /// Reusable per-run context and arenas (see [`crate::runctx`]).
    scratch: RunScratch,
    /// Counters from the most recent run.
    pub(crate) last_stats: Option<SimRunStats>,
    /// Per-shard counters from the most recent *sharded* run (see
    /// [`crate::shard`]); `None` after a monolithic run.
    pub(crate) last_shard_stats: Option<Vec<crate::shard::ShardRunStats>>,
}

impl SimWorld {
    /// Build a world; node powers default to 14 dBm.
    pub fn new(topo: Topology, node_network: Vec<u32>, gateways: Vec<Gateway>) -> SimWorld {
        assert_eq!(topo.nodes.len(), node_network.len());
        let n = topo.nodes.len();
        SimWorld {
            topo,
            gateways,
            node_network,
            node_power: vec![TxPowerDbm(14.0); n],
            cic: false,
            obs: None,
            run_epoch: 0,
            scratch: RunScratch::default(),
            last_stats: None,
            last_shard_stats: None,
        }
    }

    /// The epoch the *next* run will mint trace ids under (the number
    /// of runs completed so far).
    pub fn run_epoch(&self) -> u64 {
        self.run_epoch
    }

    /// Attach an observability sink: subsequent runs stream typed
    /// [`ObsEvent`]s into it (transmission starts, lock-ons, decoder
    /// acquire/release/drops, per-packet outcomes). Use
    /// [`obs::SharedSink`] to keep a reading handle outside the world.
    pub fn set_obs_sink(&mut self, sink: Box<dyn ObsSink>) {
        self.obs = Some(sink);
    }

    /// Detach and return the current observability sink, if any.
    pub fn take_obs_sink(&mut self) -> Option<Box<dyn ObsSink>> {
        self.obs.take()
    }

    /// Counters from the most recent [`Self::run_with_faults`] (or
    /// [`Self::run`]) call: events processed, candidate-cull ratio and
    /// wall time. `None` before the first run.
    pub fn last_run_stats(&self) -> Option<SimRunStats> {
        self.last_stats
    }

    /// Reset gateway pipelines and stats between runs.
    pub fn reset(&mut self) {
        for g in &mut self.gateways {
            g.reset();
        }
    }

    /// Execute the planned transmissions and return one record per plan.
    pub fn run(&mut self, plans: &[TxPlan]) -> Vec<PacketRecord> {
        self.run_with_faults(plans, &crate::faults::NoFaults)
    }

    /// [`Self::run`] under an infrastructure-fault schedule: crashed
    /// gateways detect nothing (and lose receptions in flight when the
    /// crash window overlaps them), locked-up decoders shrink admission
    /// capacity, and losses that healthy hardware would have avoided
    /// are classified [`LossCause::Infrastructure`].
    pub fn run_with_faults(
        &mut self,
        plans: &[TxPlan],
        faults: &dyn crate::faults::InfraFaults,
    ) -> Vec<PacketRecord> {
        let wall_start = Instant::now();
        let epoch = self.run_epoch;
        self.run_epoch += 1;
        self.last_shard_stats = None;
        let n_gws = self.gateways.len();

        // Scratch is moved out for the run so the event loop can borrow
        // its arenas alongside `self.gateways`.
        let mut s = std::mem::take(&mut self.scratch);

        let sp_plan = obs::span::enter(obs::span::SpanId::SimPlanBuild);
        s.txs.clear();
        s.txs.reserve(plans.len());
        for (i, p) in plans.iter().enumerate() {
            let airtime = PacketParams::lorawan_uplink(
                p.dr.spreading_factor(),
                Bandwidth::Khz125,
                p.payload_len,
            )
            .airtime();
            s.txs.push(Transmission {
                id: i as u64,
                trace: obs::packet_trace(epoch, i as u64),
                node: p.node,
                network_id: self.node_network[p.node],
                channel: p.channel,
                dr: p.dr,
                start_us: p.start_us,
                lock_on_us: airtime.lock_on_at(p.start_us),
                end_us: airtime.end_at(p.start_us),
                payload_len: p.payload_len,
            });
        }
        let n = s.txs.len();

        // Per-run context: rebuilt every run because node powers and
        // gateway channel configurations change between runs.
        s.ctx.intern_channels(&s.txs, &mut s.ch_of_tx);
        s.ctx.rebuild(&self.topo, &self.node_power, &self.gateways);
        let n_ch = s.ctx.n_channels();

        // Every event of the run is known now (nothing is scheduled
        // mid-loop), so instead of heap-popping 3n times the schedule
        // is sorted once into the exact order `EventQueue` would pop —
        // reserve-before-push keeps the arena from reallocating.
        s.timeline.clear();
        s.timeline.reserve(3 * n);
        for t in &s.txs {
            s.timeline
                .push((t.start_us, Event::TxStart { tx_id: t.id }));
            s.timeline
                .push((t.lock_on_us, Event::LockOn { tx_id: t.id }));
            s.timeline.push((t.end_us, Event::TxEnd { tx_id: t.id }));
        }
        drop(sp_plan);
        {
            let _sp = obs::span::enter(obs::span::SpanId::SimSortSchedule);
            crate::engine::sort_schedule(&mut s.timeline);
        }

        // Take the sink out of `self` for the duration of the run so the
        // event loop can borrow gateways mutably alongside it.
        let mut taken = self.obs.take();
        let mut null = NullSink;
        let sink: &mut dyn ObsSink = match taken.as_deref_mut() {
            Some(s) => s,
            None => &mut null,
        };

        // Gateway identities first: analyzers need the gateway→network
        // ownership map before any packet event to classify decoder
        // holds as own- vs foreign-network.
        if sink.enabled() {
            for g in &self.gateways {
                sink.record(&ObsEvent::GatewayInfo {
                    gw: g.id as u32,
                    network: g.network_id,
                    capacity: g.pool().capacity() as u32,
                });
            }
        }

        if s.interferers.len() < n {
            s.interferers.resize_with(n, Vec::new);
        }
        for v in &mut s.interferers[..n] {
            v.clear();
        }
        s.seen_buf.clear();
        s.seen_span.clear();
        s.seen_span.resize(n, (0, 0));
        s.records.clear();
        s.records.resize(n, None);
        s.start_seq.clear();
        s.start_seq.resize(n, 0);
        s.pos_in_bucket.clear();
        s.pos_in_bucket.resize(n, 0);
        if s.buckets.len() < n_ch {
            s.buckets.resize_with(n_ch, Vec::new);
        }
        for b in &mut s.buckets[..n_ch] {
            b.clear();
        }
        s.undetected.clear();
        s.undetected.resize(n_gws, 0);
        s.ever_down.clear();
        s.ever_down
            .extend((0..n_gws).map(|g| faults.gateway_ever_down(g)));
        s.ever_locked.clear();
        s.ever_locked
            .extend((0..n_gws).map(|g| faults.decoder_lockups_possible(g)));
        // The admission path only refreshes lock state for gateways the
        // schedule can actually lock; clear everyone else's up front so
        // state left by a previous faulted run cannot leak in.
        for (g_idx, &locked) in s.ever_locked.iter().enumerate() {
            if !locked {
                self.gateways[g_idx].set_locked_decoders(0);
            }
        }
        let mut receiving = std::mem::take(&mut s.receiving);
        let timeline = std::mem::take(&mut s.timeline);

        let mut events: u64 = 0;
        let mut candidate_visits: u64 = 0;
        let mut seq: u32 = 0;

        let sp_loop = obs::span::enter(obs::span::SpanId::SimEventLoop);
        for &(_, ev) in &timeline {
            events += 1;
            match ev {
                Event::TxStart { tx_id } => {
                    let txi = tx_id as usize;
                    let t = &s.txs[txi];
                    if sink.enabled() {
                        sink.record(&ObsEvent::TxStart {
                            t_us: t.start_us,
                            trace: t.trace,
                            tx: t.id,
                            node: t.node as u64,
                            network: t.network_id,
                        });
                    }
                    let c = s.ch_of_tx[txi] as usize;
                    s.gathered.clear();
                    for &oc in &s.ctx.overlapping[c] {
                        for &o_id in &s.buckets[oc as usize] {
                            if s.txs[o_id as usize].node != t.node {
                                s.gathered.push(o_id);
                            }
                        }
                    }
                    // Buckets are permuted by swap-remove, so restore
                    // chronological (TxStart) order before registering —
                    // interferer-list order is part of the determinism
                    // contract with the reference loop.
                    let start_seq = &s.start_seq;
                    s.gathered.sort_unstable_by_key(|&o| start_seq[o as usize]);
                    for &o_id in &s.gathered {
                        s.interferers[txi].push(o_id);
                        s.interferers[o_id as usize].push(tx_id);
                    }
                    s.start_seq[txi] = seq;
                    seq += 1;
                    s.pos_in_bucket[txi] = s.buckets[c].len() as u32;
                    s.buckets[c].push(tx_id);
                }
                Event::LockOn { tx_id } => {
                    let _sp = obs::span::enter(obs::span::SpanId::SimLockOn);
                    let txi = tx_id as usize;
                    let t = s.txs[txi];
                    let now = t.lock_on_us;
                    if sink.enabled() {
                        sink.record(&ObsEvent::PacketLockOn {
                            t_us: now,
                            trace: t.trace,
                            tx: t.id,
                            node: t.node as u64,
                            network: t.network_id,
                        });
                    }
                    let c = s.ch_of_tx[txi] as usize;
                    let sf = t.dr.spreading_factor();
                    let seen_start = s.seen_buf.len() as u32;
                    for &gq in &s.ctx.cand[c] {
                        candidate_visits += 1;
                        let g_idx = gq as usize;
                        let snr = s.ctx.snr[t.node * n_gws + g_idx];
                        if !decodable(snr, sf, 0.0) {
                            // Below the detection floor: the reference
                            // loop counts an up gateway's non-detection;
                            // a crashed gateway counts nothing.
                            if !s.ever_down[g_idx] || !faults.gateway_down(g_idx, now) {
                                s.undetected[g_idx] += 1;
                            }
                            continue;
                        }
                        if s.ever_down[g_idx] && faults.gateway_down(g_idx, now) {
                            // A crashed gateway admits nothing. Any
                            // receptions it still holds are failed (and
                            // their decoders released) at their TxEnd.
                            s.seen_buf.push((gq, Seen::DownAtLockOn));
                            continue;
                        }
                        let g = &mut self.gateways[g_idx];
                        if s.ever_locked[g_idx] {
                            g.set_locked_decoders(faults.locked_decoders(g_idx, now));
                        }
                        let pkt = PacketAtGateway {
                            tx_id: t.id,
                            trace: t.trace,
                            network_id: t.network_id,
                            channel: t.channel,
                            sf,
                            rssi_dbm: s.ctx.rssi[t.node * n_gws + g_idx],
                            snr_db: snr,
                            lock_on_us: t.lock_on_us,
                            end_us: t.end_us,
                        };
                        // The candidate index proved the channel half of
                        // detection and the SNR gate just passed, so the
                        // gateway's own `would_detect` re-check is skipped.
                        match g.admit_detected_obs(pkt, sink) {
                            LockOnOutcome::Admitted => {
                                s.seen_buf.push((gq, Seen::Admitted));
                            }
                            LockOnOutcome::DroppedNoDecoder => {
                                let foreign = g.foreign_held_decoders() > 0;
                                // If physical decoders were still free,
                                // only the lock-up made this a drop.
                                let lockup = g.pool().locked() > 0
                                    && g.decoders_in_use() < g.pool().capacity();
                                s.seen_buf.push((
                                    gq,
                                    Seen::Dropped {
                                        foreign_held: foreign,
                                        lockup,
                                    },
                                ));
                            }
                            LockOnOutcome::NotDetected => {
                                unreachable!("admission precondition verified above")
                            }
                        }
                    }
                    s.seen_span[txi] = (seen_start, s.seen_buf.len() as u32);
                }
                Event::TxEnd { tx_id } => {
                    let _sp = obs::span::enter(obs::span::SpanId::SimVerdicts);
                    let txi = tx_id as usize;
                    let c = s.ch_of_tx[txi] as usize;
                    let pos = s.pos_in_bucket[txi] as usize;
                    let moved = {
                        let b = &mut s.buckets[c];
                        b.swap_remove(pos);
                        b.get(pos).copied()
                    };
                    if let Some(m) = moved {
                        s.pos_in_bucket[m as usize] = pos as u32;
                    }
                    let (span_a, span_b) = s.seen_span[txi];
                    let record = finish_tx(
                        &mut self.gateways,
                        self.cic,
                        &s.ctx,
                        &s.txs,
                        &s.ch_of_tx,
                        tx_id,
                        &s.seen_buf[span_a as usize..span_b as usize],
                        &s.interferers[txi],
                        faults,
                        &s.ever_down,
                        sink,
                        &mut receiving,
                        &mut s.vscratch,
                    );
                    s.records[txi] = Some(record);
                }
            }
        }
        drop(sp_loop);
        s.timeline = timeline;

        sink.flush();
        self.obs = taken;

        // Reconcile `not_detected` with the reference semantics: the
        // un-indexed loop bumps it once per (up gateway, undetected tx).
        // SNR failures at candidate gateways were tallied in the loop;
        // non-candidate (channel-mismatch) pairs are counted here in
        // bulk — O(1) per never-down gateway via the per-channel tx
        // counts, per-tx only for gateways a fault schedule can crash.
        for g_idx in 0..n_gws {
            let mut miss = s.undetected[g_idx];
            if s.ever_down[g_idx] {
                for t in &s.txs {
                    if !s.ctx.is_cand[s.ch_of_tx[t.id as usize] as usize * n_gws + g_idx]
                        && !faults.gateway_down(g_idx, t.lock_on_us)
                    {
                        miss += 1;
                    }
                }
            } else {
                let mut cand_txs = 0u64;
                for (c, cnt) in s.ctx.ch_tx_count.iter().enumerate() {
                    if s.ctx.is_cand[c * n_gws + g_idx] {
                        cand_txs += *cnt;
                    }
                }
                miss += n as u64 - cand_txs;
            }
            if miss > 0 {
                self.gateways[g_idx].note_undetected(miss);
            }
        }

        let out: Vec<PacketRecord> = s
            .records
            .iter_mut()
            .map(|r| r.take().expect("every tx finished"))
            .collect();

        s.receiving = receiving;
        self.scratch = s;
        self.last_stats = Some(SimRunStats {
            txs: n as u64,
            events,
            gateways: n_gws as u32,
            candidate_visits,
            candidate_ceiling: n as u64 * n_gws as u64,
            accum_updates: 0,
            accum_undos: 0,
            accum_evictions: 0,
            wheel_cascades: 0,
            wall_us: wall_start.elapsed().as_micros() as u64,
        });
        out
    }
}

/// Resolve PHY verdicts, deliver outcomes to gateways, classify.
#[allow(clippy::too_many_arguments)]
fn finish_tx(
    gateways: &mut [Gateway],
    cic: bool,
    ctx: &RunContext,
    txs: &[Transmission],
    ch_of_tx: &[u32],
    tx_id: u64,
    seen: &[(u32, Seen)],
    intf: &[u64],
    faults: &dyn crate::faults::InfraFaults,
    ever_down: &[bool],
    sink: &mut dyn ObsSink,
    receiving: &mut Vec<usize>,
    vs: &mut VerdictScratch,
) -> PacketRecord {
    let t = &txs[tx_id as usize];
    batch_verdicts(ctx, txs, ch_of_tx, t, seen, intf, cic, vs);
    receiving.clear();
    let mut decoder_drop: Option<bool> = None; // Some(foreign?) if droppable-but-clean
    let mut collision_with: Option<u32> = None;
    let mut own_detected = false;
    // An own-network gateway would have received the packet but for
    // an injected fault (crash or decoder lock-up).
    let mut infra_loss = false;

    for (k, &(gq, how)) in seen.iter().enumerate() {
        let g_idx = gq as usize;
        let own = gateways[g_idx].network_id == t.network_id;
        let verdict = vs.verdicts[k];
        if how == Seen::Admitted {
            let crashed_mid_rx =
                ever_down[g_idx] && faults.gateway_down_during(g_idx, t.lock_on_us, t.end_us);
            let phy_ok = verdict == Verdict::Ok && !crashed_mid_rx;
            if let Some(gateway::radio::ReceptionOutcome::Received) =
                gateways[g_idx].on_tx_end_obs(tx_id, phy_ok, sink)
            {
                receiving.push(g_idx);
            }
            if own && crashed_mid_rx && verdict == Verdict::Ok {
                infra_loss = true;
            }
        }
        if own {
            own_detected = true;
            match (how, verdict) {
                (Seen::DownAtLockOn, Verdict::Ok) => {
                    infra_loss = true;
                }
                (
                    Seen::Dropped {
                        foreign_held,
                        lockup,
                    },
                    Verdict::Ok,
                ) => {
                    if lockup {
                        // Healthy hardware had the decoder to spare.
                        infra_loss = true;
                    } else {
                        // Would have been received with a free decoder.
                        let entry = decoder_drop.get_or_insert(false);
                        *entry = *entry || foreign_held;
                    }
                }
                (_, Verdict::Collision { with_network }) => {
                    collision_with.get_or_insert(with_network);
                }
                _ => {}
            }
        }
    }

    let delivered = !receiving.is_empty();
    let cause = if delivered {
        None
    } else if infra_loss {
        // Healthy infrastructure would have delivered the packet:
        // the fault is the proximate cause even if other gateways
        // also dropped it by genuine contention.
        Some(LossCause::Infrastructure)
    } else if let Some(foreign) = decoder_drop {
        Some(if foreign {
            LossCause::DecoderContentionInter
        } else {
            LossCause::DecoderContentionIntra
        })
    } else if let Some(net) = collision_with {
        Some(if net == t.network_id {
            LossCause::ChannelContentionIntra
        } else {
            LossCause::ChannelContentionInter
        })
    } else {
        let _ = own_detected; // either undetected or SNR/interference
        Some(LossCause::Other)
    };

    if sink.enabled() {
        sink.record(&ObsEvent::PacketOutcome {
            t_us: t.end_us,
            trace: t.trace,
            tx: tx_id,
            delivered,
            cause: cause.map(LossCause::obs_kind),
        });
    }

    PacketRecord {
        tx_id,
        node: t.node,
        network_id: t.network_id,
        channel: t.channel,
        dr: t.dr,
        start_us: t.start_us,
        end_us: t.end_us,
        payload_len: t.payload_len,
        delivered,
        receiving_gateways: receiving.clone(),
        cause,
    }
}

/// PHY verdicts for `t` at every seen gateway, filled into
/// `vs.verdicts` aligned with the `seen` slice.
///
/// Table-driven port of the reference verdict: link gains and channel
/// pair classes come from the [`RunContext`], and the noise-only SINR
/// denominator is hoisted. The traversal is *interferer-major* — each
/// interferer is classified once and its per-gateway RSSI row
/// (`rssi[o.node * n_gws ..]`) is read contiguously — where the
/// reference re-walks the whole interferer list per gateway with
/// scattered table reads. For any fixed gateway the interferers are
/// still processed in registration order, so the leaked-interference
/// sum, the strongest-collider tie-break and every surviving
/// floating-point operation match the reference bit for bit.
#[allow(clippy::too_many_arguments)]
fn batch_verdicts(
    ctx: &RunContext,
    txs: &[Transmission],
    ch_of_tx: &[u32],
    t: &Transmission,
    seen: &[(u32, Seen)],
    intf: &[u64],
    cic: bool,
    vs: &mut VerdictScratch,
) {
    let n_gws = ctx.n_gws;
    let n_ch = ctx.n_channels();
    let sf_v = t.dr.spreading_factor();
    let cv = ch_of_tx[t.id as usize] as usize;
    let vrow = t.node * n_gws;
    vs.prepare(seen.len());

    for &o_id in intf {
        let o = &txs[o_id as usize];
        let co = ch_of_tx[o_id as usize] as usize;
        match ctx.pair[cv * n_ch + co] {
            PairClass::Disjoint => {}
            PairClass::Detect => {
                let same_sf = o.dr.spreading_factor() == sf_v;
                if same_sf && cic {
                    // CIC resolves the collision; both survive.
                    continue;
                }
                let orow = o.node * n_gws;
                let t_first = t.lock_on_us <= o.lock_on_us;
                for (gi, &(gq, _)) in seen.iter().enumerate() {
                    let g_idx = gq as usize;
                    let rssi_o = ctx.rssi[orow + g_idx];
                    if same_sf {
                        // Same settings: the capture effect decides.
                        let rssi_v = ctx.rssi[vrow + g_idx];
                        let (first, second) = if t_first {
                            (rssi_v, rssi_o)
                        } else {
                            (rssi_o, rssi_v)
                        };
                        let survives = match capture_outcome(first, second) {
                            CaptureOutcome::FirstSurvives => t_first,
                            CaptureOutcome::SecondSurvives => !t_first,
                            CaptureOutcome::BothLost => false,
                        };
                        if !survives {
                            vs.note_collider(gi, rssi_o, o.network_id);
                        }
                    } else {
                        // Cross-SF quasi-orthogonality.
                        if ctx.rssi[vrow + g_idx] - rssi_o < CROSS_SF_REJECTION_DB {
                            vs.set_kill(gi);
                        }
                    }
                }
            }
            PairClass::Leak {
                gain_same,
                gain_orth,
            } => {
                let gain = if o.dr.spreading_factor() != sf_v {
                    gain_orth
                } else {
                    gain_same
                };
                if let Some(gain) = gain {
                    let orow = o.node * n_gws;
                    for (gi, &(gq, _)) in seen.iter().enumerate() {
                        let rssi_o = ctx.rssi[orow + gq as usize];
                        vs.add_intf(gi, 10f64.powf((rssi_o + gain) / 10.0));
                    }
                }
            }
        }
    }

    for (gi, &(gq, _)) in seen.iter().enumerate() {
        let (intf_lin, strongest, kill) = vs.state(gi);
        vs.verdicts.push(if let Some((_, net)) = strongest {
            Verdict::Collision { with_network: net }
        } else {
            let rssi_v = ctx.rssi[vrow + gq as usize];
            // SINR over thermal noise plus leaked foreign energy. With
            // no leak the precomputed noise-only term is exact
            // (`x + 0.0` is bitwise `x` for the positive noise power).
            let sinr = if intf_lin == 0.0 {
                rssi_v - ctx.noise_only_db
            } else {
                rssi_v - 10.0 * (ctx.noise_lin + intf_lin).log10()
            };
            if kill || !decodable(sinr, sf_v, 0.0) {
                Verdict::Interference
            } else {
                Verdict::Ok
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Pos;
    use crate::traffic::{concurrent_burst, BurstScheme};
    use gateway::config::GatewayConfig;
    use gateway::profile::GatewayProfile;
    use lora_phy::pathloss::PathLossModel;
    use lora_phy::region::StandardChannelPlan;

    /// A small, shadowing-free world where every link is strong and
    /// near-far power differences stay below the cross-SF rejection
    /// margin — SNR is never the limiting factor.
    fn clean_world(n_nodes: usize, gw_networks: &[u32]) -> SimWorld {
        let model = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let topo = Topology::new((100.0, 100.0), n_nodes, gw_networks.len(), model, 1);
        let profile = GatewayProfile::rak7268cv2();
        let plan = StandardChannelPlan::us915_subband(0);
        let gateways = gw_networks
            .iter()
            .enumerate()
            .map(|(i, &net)| {
                Gateway::new(
                    i,
                    net,
                    profile,
                    GatewayConfig::new(profile, plan.channels.clone()).unwrap(),
                )
            })
            .collect();
        SimWorld::new(topo, vec![1; n_nodes], gateways)
    }

    /// Distinct (channel, DR) assignments over the sub-band-0 plan.
    fn orthogonal_assignments(n: usize) -> Vec<(usize, Channel, DataRate)> {
        let plan = StandardChannelPlan::us915_subband(0);
        (0..n)
            .map(|i| {
                (
                    i,
                    plan.channels[i % 8],
                    DataRate::from_index(i / 8 % 6).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn sixteen_cap_single_gateway() {
        // Fig 2a: 20 orthogonal concurrent users, one gateway ⇒ 16
        // received, 4 lost to decoder contention.
        let mut w = clean_world(20, &[1]);
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        let delivered = recs.iter().filter(|r| r.delivered).count();
        assert_eq!(delivered, 16);
        let decoder_losses = recs
            .iter()
            .filter(|r| r.cause == Some(LossCause::DecoderContentionIntra))
            .count();
        assert_eq!(decoder_losses, 4);
        // FCFS: exactly the first 16 by lock-on order.
        for r in &recs {
            assert_eq!(r.delivered, r.tx_id < 16, "tx {}", r.tx_id);
        }
    }

    #[test]
    fn homogeneous_extra_gateways_do_not_help() {
        // Fig 2a: 3 gateways with identical channel plans still ⇒ 16.
        let mut w = clean_world(20, &[1, 1, 1]);
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        assert_eq!(recs.iter().filter(|r| r.delivered).count(), 16);
    }

    #[test]
    fn heterogeneous_gateways_do_help() {
        // Strategy ②: two gateways covering disjoint halves of the plan
        // lift capacity above 16 for 24 users on 8 channels... here we
        // give each gateway 4 distinct channels and 24 orthogonal users.
        let profile = GatewayProfile::rak7268cv2();
        let plan = StandardChannelPlan::us915_subband(0);
        let mut w = clean_world(24, &[1, 1]);
        w.gateways[0]
            .reconfigure(GatewayConfig::new(profile, plan.channels[..4].to_vec()).unwrap());
        w.gateways[1]
            .reconfigure(GatewayConfig::new(profile, plan.channels[4..].to_vec()).unwrap());
        let plans = concurrent_burst(
            &orthogonal_assignments(24),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        let delivered = recs.iter().filter(|r| r.delivered).count();
        assert_eq!(
            delivered, 24,
            "12 users per gateway fit in 16 decoders each"
        );
    }

    #[test]
    fn coexisting_networks_sum_to_sixteen() {
        // Fig 2b: two networks, same spectrum, one gateway each with the
        // same plan: total received across both networks = 16.
        let mut w = clean_world(20, &[1, 2]);
        w.node_network = (0..20).map(|i| if i % 2 == 0 { 1 } else { 2 }).collect();
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        let net1 = recs
            .iter()
            .filter(|r| r.delivered && r.network_id == 1)
            .count();
        let net2 = recs
            .iter()
            .filter(|r| r.delivered && r.network_id == 2)
            .count();
        assert_eq!(net1 + net2, 16, "aggregate cap across coexisting networks");
        // Losses are inter-network decoder contention.
        let inter = recs
            .iter()
            .filter(|r| r.cause == Some(LossCause::DecoderContentionInter))
            .count();
        assert_eq!(inter, 4);
    }

    #[test]
    fn same_settings_collide() {
        // Two nodes, identical channel+DR, fully overlapping in time,
        // equal received power ⇒ both lost to intra channel contention.
        let mut w = clean_world(2, &[1]);
        w.topo.loss_db[0][0] = 80.0;
        w.topo.loss_db[1][0] = 80.0;
        let ch = StandardChannelPlan::us915_subband(0).channels[0];
        let plans = vec![
            TxPlan {
                node: 0,
                channel: ch,
                dr: DataRate::DR5,
                start_us: 0,
                payload_len: 10,
            },
            TxPlan {
                node: 1,
                channel: ch,
                dr: DataRate::DR5,
                start_us: 1_000,
                payload_len: 10,
            },
        ];
        let recs = w.run(&plans);
        assert!(recs.iter().all(|r| !r.delivered));
        assert!(recs
            .iter()
            .all(|r| r.cause == Some(LossCause::ChannelContentionIntra)));
    }

    #[test]
    fn capture_lets_strong_packet_survive() {
        // Same settings but one node much closer: the strong one wins.
        let model = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let mut topo = Topology::new((2_000.0, 100.0), 2, 1, model, 1);
        // Place node 0 near the gateway, node 1 far.
        topo.nodes[0] = Pos {
            x_m: topo.gateways[0].x_m + 50.0,
            y_m: topo.gateways[0].y_m,
        };
        topo.nodes[1] = Pos {
            x_m: topo.gateways[0].x_m + 900.0,
            y_m: topo.gateways[0].y_m,
        };
        let topo = {
            // Re-freeze losses for the new positions (no shadowing).
            let mut t = topo;
            for i in 0..2 {
                for j in 0..1 {
                    t.loss_db[i][j] = t.model.mean_loss_db(t.nodes[i].dist_m(&t.gateways[j]));
                }
            }
            t
        };
        let profile = GatewayProfile::rak7268cv2();
        let plan = StandardChannelPlan::us915_subband(0);
        let gw = Gateway::new(
            0,
            1,
            profile,
            GatewayConfig::new(profile, plan.channels.clone()).unwrap(),
        );
        let mut w = SimWorld::new(topo, vec![1, 1], gw.into_iter_helper());
        let ch = plan.channels[0];
        let plans = vec![
            TxPlan {
                node: 0,
                channel: ch,
                dr: DataRate::DR4,
                start_us: 0,
                payload_len: 10,
            },
            TxPlan {
                node: 1,
                channel: ch,
                dr: DataRate::DR4,
                start_us: 500,
                payload_len: 10,
            },
        ];
        let recs = w.run(&plans);
        assert!(recs[0].delivered, "strong near packet captures");
        assert!(!recs[1].delivered);
        assert_eq!(recs[1].cause, Some(LossCause::ChannelContentionIntra));
    }

    #[test]
    fn misaligned_networks_do_not_contend() {
        // Strategy ⑧ in miniature: network 2 on 40%-shifted channels.
        // Network 1's gateway never admits network 2's packets.
        let mut w = clean_world(20, &[1]);
        w.node_network = (0..20).map(|i| if i < 10 { 1 } else { 2 }).collect();
        let plan = StandardChannelPlan::us915_subband(0);
        let assigns: Vec<(usize, Channel, DataRate)> = (0..20)
            .map(|i| {
                let base = plan.channels[i % 8];
                let ch = if i < 10 {
                    base
                } else {
                    Channel::khz125(base.center_hz + 50_000) // 40% shift
                };
                (i, ch, DataRate::from_index(i / 8 % 6).unwrap())
            })
            .collect();
        let plans = concurrent_burst(
            &assigns,
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        // All 10 of network 1 delivered (no foreign occupation).
        let net1_ok = recs
            .iter()
            .filter(|r| r.network_id == 1 && r.delivered)
            .count();
        assert_eq!(net1_ok, 10);
        let foreign_filtered = w.gateways[0].stats().foreign_filtered;
        assert_eq!(
            foreign_filtered, 0,
            "misaligned packets never entered the pipeline"
        );
    }

    #[test]
    fn obs_sink_sees_full_event_stream() {
        use obs::{MetricsSink, SharedSink};
        // Same 20-user burst as `sixteen_cap_single_gateway`, observed.
        let shared = SharedSink::new(MetricsSink::new());
        let mut w = clean_world(20, &[1]);
        w.set_obs_sink(Box::new(shared.handle()));
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let recs = w.run(&plans);
        assert_eq!(recs.iter().filter(|r| r.delivered).count(), 16);
        shared.with(|m| {
            let reg = m.registry();
            assert_eq!(reg.counter("tx_start"), 20);
            assert_eq!(reg.counter("packet_lock_on"), 20);
            assert_eq!(reg.counter("decoder_acquired"), 16);
            assert_eq!(reg.counter("decoder_released"), 16);
            assert_eq!(reg.counter("pool_full_drop"), 4);
            assert_eq!(reg.counter("delivered"), 16);
            assert_eq!(reg.counter("loss_DecoderIntra"), 4);
            let occ = &m.gateways()[&0];
            assert_eq!(occ.peak_in_use, 16, "the pool saturated");
            assert_eq!(occ.capacity, 16);
            let h = reg.histogram("dispatch_latency_us").unwrap();
            assert_eq!(h.total(), 16, "one hold-time sample per admission");
        });
        // The sink survives the run and can be detached.
        assert!(w.take_obs_sink().is_some());
        assert!(w.take_obs_sink().is_none());
    }

    #[test]
    fn obs_instrumented_run_matches_unobserved() {
        // Identical records with and without a sink attached.
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let mut plain = clean_world(20, &[1]);
        let recs_plain = plain.run(&plans);
        let mut observed = clean_world(20, &[1]);
        observed.set_obs_sink(Box::new(obs::RingSink::new(1024)));
        let recs_obs = observed.run(&plans);
        assert_eq!(recs_plain, recs_obs);
    }

    #[test]
    fn out_of_range_is_other() {
        let model = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let topo = Topology::new((60_000.0, 60_000.0), 1, 1, model, 1);
        let profile = GatewayProfile::rak7268cv2();
        let plan = StandardChannelPlan::us915_subband(0);
        let gw = Gateway::new(
            0,
            1,
            profile,
            GatewayConfig::new(profile, plan.channels.clone()).unwrap(),
        );
        let mut w = SimWorld::new(topo, vec![1], gw.into_iter_helper());
        let plans = vec![TxPlan {
            node: 0,
            channel: plan.channels[0],
            dr: DataRate::DR5,
            start_us: 0,
            payload_len: 10,
        }];
        let recs = w.run(&plans);
        assert!(!recs[0].delivered);
        assert_eq!(recs[0].cause, Some(LossCause::Other));
    }

    #[test]
    fn run_stats_report_cull_and_events() {
        let mut w = clean_world(20, &[1]);
        assert!(w.last_run_stats().is_none());
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let _ = w.run(&plans);
        let stats = w.last_run_stats().expect("a run happened");
        assert_eq!(stats.txs, 20);
        assert_eq!(stats.events, 60, "three events per transmission");
        assert_eq!(stats.gateways, 1);
        assert_eq!(stats.candidate_ceiling, 20);
        assert!(stats.candidate_visits <= stats.candidate_ceiling);
        assert!(stats.cull_ratio() <= 1.0 && stats.cull_ratio() > 0.0);
    }

    #[test]
    fn indexed_run_matches_reference_loop() {
        // Spot equivalence on the capacity scenario (the workspace
        // proptest covers random worlds): identical records and stats.
        let plans = concurrent_burst(
            &orthogonal_assignments(20),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let mut fast = clean_world(20, &[1, 1]);
        let fast_recs = fast.run(&plans);
        let mut slow = clean_world(20, &[1, 1]);
        let slow_recs = crate::reference::run_with_faults_reference(
            &mut slow,
            &plans,
            &crate::faults::NoFaults,
        );
        assert_eq!(fast_recs, slow_recs);
        for (a, b) in fast.gateways.iter().zip(&slow.gateways) {
            assert_eq!(a.stats(), b.stats());
        }
    }

    // Small helper to turn one gateway into a Vec.
    trait IntoVecHelper {
        fn into_iter_helper(self) -> Vec<Gateway>;
    }
    impl IntoVecHelper for Gateway {
        fn into_iter_helper(self) -> Vec<Gateway> {
            vec![self]
        }
    }
}
