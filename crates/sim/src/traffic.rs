//! Workload generators.
//!
//! * [`concurrent_burst`] — the paper's §3.1 micro-slotted concurrent
//!   transmissions (Scheme (a): leading preamble symbols in node order;
//!   Scheme (b): final preamble symbols — i.e. lock-on instants — in
//!   node order), also used by every §5 capacity probe;
//! * [`duty_cycled`] — 1%-duty random traffic for the at-scale
//!   experiments (§5.2.1, Fig. 4, Fig. 13, Appendix D).

use lora_phy::airtime::PacketParams;
use lora_phy::channel::Channel;
use lora_phy::types::{Bandwidth, DataRate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One planned transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxPlan {
    /// Sending node index.
    pub node: usize,
    /// Uplink channel.
    pub channel: Channel,
    /// Uplink data rate.
    pub dr: DataRate,
    /// Transmission start (first preamble symbol), µs.
    pub start_us: u64,
    /// PHY payload length, bytes.
    pub payload_len: usize,
}

/// How a concurrent burst is aligned (§3.1's two schemes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstScheme {
    /// The *leading* preamble symbol of node `i` arrives in slot `i`.
    LeadingPreambleOrdered,
    /// The *final* preamble symbol (the lock-on instant) of node `i`
    /// arrives in slot `i` — the scheme that exposes pure FCFS order.
    FinalPreambleOrdered,
}

/// Build a micro-slotted concurrent burst: assignment `i` is scheduled
/// in micro slot `i` (slot width `slot_us`), aligned per `scheme`, with
/// all packets overlapping in time.
///
/// `base_us` must exceed the longest preamble in the burst when using
/// [`BurstScheme::FinalPreambleOrdered`] (SF12: ≈ 402 ms); a `base_us`
/// of 1 s is safe for any LoRaWAN packet.
pub fn concurrent_burst(
    assignments: &[(usize, Channel, DataRate)],
    payload_len: usize,
    base_us: u64,
    slot_us: u64,
    scheme: BurstScheme,
) -> Vec<TxPlan> {
    assignments
        .iter()
        .enumerate()
        .map(|(i, &(node, channel, dr))| {
            let preamble =
                PacketParams::lorawan_uplink(dr.spreading_factor(), Bandwidth::Khz125, payload_len)
                    .airtime()
                    .preamble_us;
            let slot_t = base_us + i as u64 * slot_us;
            let start_us = match scheme {
                BurstScheme::LeadingPreambleOrdered => slot_t,
                BurstScheme::FinalPreambleOrdered => slot_t
                    .checked_sub(preamble)
                    .expect("base_us must exceed the longest preamble"),
            };
            TxPlan {
                node,
                channel,
                dr,
                start_us,
                payload_len,
            }
        })
        .collect()
}

/// Build a fully-overlapping concurrent burst by aligning packet *ends*
/// to micro slots: packet `i` ends at `end_base_us + i·slot_us`, so
/// every packet is still on air when the last one ends and decoders
/// never free mid-burst. This is the alignment that makes "maximum
/// number of concurrent users" a clean capacity metric (§2.2) across
/// mixed spreading factors, whose airtimes differ by 20×.
///
/// `end_base_us` must exceed the longest airtime in the burst (SF12 at
/// 23 bytes ≈ 1.48 s; 2 s is safe).
pub fn end_aligned_burst(
    assignments: &[(usize, Channel, DataRate)],
    payload_len: usize,
    end_base_us: u64,
    slot_us: u64,
) -> Vec<TxPlan> {
    assignments
        .iter()
        .enumerate()
        .map(|(i, &(node, channel, dr))| {
            let airtime =
                PacketParams::lorawan_uplink(dr.spreading_factor(), Bandwidth::Khz125, payload_len)
                    .airtime()
                    .total_us();
            let end = end_base_us + i as u64 * slot_us;
            let start_us = end
                .checked_sub(airtime)
                .expect("end_base_us must exceed the longest airtime");
            TxPlan {
                node,
                channel,
                dr,
                start_us,
                payload_len,
            }
        })
        .collect()
}

/// Duty-cycled random traffic: each node transmits with exponential
/// inter-arrival times whose mean keeps it at `duty` (e.g. 0.01),
/// starting at a random phase, until `horizon_us`.
pub fn duty_cycled(
    assignments: &[(usize, Channel, DataRate)],
    payload_len: usize,
    duty: f64,
    horizon_us: u64,
    seed: u64,
) -> Vec<TxPlan> {
    assert!(duty > 0.0 && duty <= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plans = Vec::new();
    for &(node, channel, dr) in assignments {
        let airtime =
            PacketParams::lorawan_uplink(dr.spreading_factor(), Bandwidth::Khz125, payload_len)
                .airtime()
                .total_us();
        let mean_gap = airtime as f64 / duty;
        let mut t = rng.gen_range(0.0..mean_gap);
        while (t as u64) < horizon_us {
            plans.push(TxPlan {
                node,
                channel,
                dr,
                start_us: t as u64,
                payload_len,
            });
            // Exponential inter-arrival, mean `mean_gap`.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() * mean_gap;
        }
    }
    plans.sort_by_key(|p| p.start_us);
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::airtime::PacketParams;
    use lora_phy::types::Bandwidth::Khz125;
    use lora_phy::types::DataRate::*;

    fn assignments() -> Vec<(usize, Channel, DataRate)> {
        (0..12)
            .map(|i| {
                (
                    i,
                    Channel::khz125(920_000_000 + (i as u32 % 4) * 200_000),
                    DataRate::from_index(i % 6).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn scheme_a_orders_starts() {
        let plans = concurrent_burst(
            &assignments(),
            10,
            1_000_000,
            2_000,
            BurstScheme::LeadingPreambleOrdered,
        );
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.start_us, 1_000_000 + i as u64 * 2_000);
        }
    }

    #[test]
    fn scheme_b_orders_lock_ons() {
        let plans = concurrent_burst(
            &assignments(),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let lock_ons: Vec<u64> = plans
            .iter()
            .map(|p| {
                let preamble =
                    PacketParams::lorawan_uplink(p.dr.spreading_factor(), Khz125, p.payload_len)
                        .airtime()
                        .preamble_us;
                p.start_us + preamble
            })
            .collect();
        for (i, lo) in lock_ons.iter().enumerate() {
            assert_eq!(*lo, 1_000_000 + i as u64 * 2_000);
        }
    }

    #[test]
    #[should_panic(expected = "base_us must exceed")]
    fn scheme_b_rejects_small_base() {
        concurrent_burst(
            &[(0, Channel::khz125(920_000_000), DR0)],
            10,
            1_000, // far less than the SF12 preamble
            0,
            BurstScheme::FinalPreambleOrdered,
        );
    }

    #[test]
    fn end_aligned_all_overlap_at_burst_end() {
        let plans = end_aligned_burst(&assignments(), 23, 2_000_000, 1_000);
        // The last packet's end; every other packet must still be on air
        // at its own end slot and overlap the first packet's end.
        let first_end = 2_000_000;
        for (i, p) in plans.iter().enumerate() {
            let airtime = PacketParams::lorawan_uplink(p.dr.spreading_factor(), Khz125, 23)
                .airtime()
                .total_us();
            assert_eq!(p.start_us + airtime, 2_000_000 + i as u64 * 1_000);
            assert!(
                p.start_us < first_end,
                "packet {i} misses the overlap window"
            );
        }
    }

    #[test]
    #[should_panic(expected = "end_base_us must exceed")]
    fn end_aligned_rejects_small_base() {
        end_aligned_burst(&[(0, Channel::khz125(920_000_000), DR0)], 23, 10_000, 0);
    }

    #[test]
    fn duty_cycled_respects_duty_long_run() {
        let assigns = vec![(0, Channel::khz125(920_000_000), DR3)];
        let horizon = 3_600_000_000u64; // one hour
        let plans = duty_cycled(&assigns, 10, 0.01, horizon, 9);
        let airtime = PacketParams::lorawan_uplink(DR3.spreading_factor(), Khz125, 10)
            .airtime()
            .total_us();
        let on_air: u64 = plans.len() as u64 * airtime;
        let duty = on_air as f64 / horizon as f64;
        // Poisson traffic at target 1%: allow generous statistical slack.
        assert!(duty > 0.004 && duty < 0.02, "duty={duty}");
    }

    #[test]
    fn duty_cycled_sorted_and_deterministic() {
        let a = duty_cycled(&assignments(), 10, 0.01, 600_000_000, 4);
        let b = duty_cycled(&assignments(), 10, 0.01, 600_000_000, 4);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].start_us <= w[1].start_us));
        assert!(!a.is_empty());
    }

    #[test]
    fn duty_cycled_covers_all_nodes() {
        let plans = duty_cycled(&assignments(), 10, 0.01, 3_600_000_000, 4);
        for node in 0..12 {
            assert!(
                plans.iter().any(|p| p.node == node),
                "node {node} never transmits in an hour"
            );
        }
    }
}
