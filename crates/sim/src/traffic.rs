//! Workload generators.
//!
//! * [`concurrent_burst`] — the paper's §3.1 micro-slotted concurrent
//!   transmissions (Scheme (a): leading preamble symbols in node order;
//!   Scheme (b): final preamble symbols — i.e. lock-on instants — in
//!   node order), also used by every §5 capacity probe;
//! * [`duty_cycled`] — 1%-duty random traffic for the at-scale
//!   experiments (§5.2.1, Fig. 4, Fig. 13, Appendix D).

use lora_phy::airtime::PacketParams;
use lora_phy::channel::Channel;
use lora_phy::types::{Bandwidth, DataRate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One planned transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxPlan {
    /// Sending node index.
    pub node: usize,
    /// Uplink channel.
    pub channel: Channel,
    /// Uplink data rate.
    pub dr: DataRate,
    /// Transmission start (first preamble symbol), µs.
    pub start_us: u64,
    /// PHY payload length, bytes.
    pub payload_len: usize,
}

/// How a concurrent burst is aligned (§3.1's two schemes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstScheme {
    /// The *leading* preamble symbol of node `i` arrives in slot `i`.
    LeadingPreambleOrdered,
    /// The *final* preamble symbol (the lock-on instant) of node `i`
    /// arrives in slot `i` — the scheme that exposes pure FCFS order.
    FinalPreambleOrdered,
}

/// Build a micro-slotted concurrent burst: assignment `i` is scheduled
/// in micro slot `i` (slot width `slot_us`), aligned per `scheme`, with
/// all packets overlapping in time.
///
/// `base_us` must exceed the longest preamble in the burst when using
/// [`BurstScheme::FinalPreambleOrdered`] (SF12: ≈ 402 ms); a `base_us`
/// of 1 s is safe for any LoRaWAN packet.
pub fn concurrent_burst(
    assignments: &[(usize, Channel, DataRate)],
    payload_len: usize,
    base_us: u64,
    slot_us: u64,
    scheme: BurstScheme,
) -> Vec<TxPlan> {
    assignments
        .iter()
        .enumerate()
        .map(|(i, &(node, channel, dr))| {
            let preamble =
                PacketParams::lorawan_uplink(dr.spreading_factor(), Bandwidth::Khz125, payload_len)
                    .airtime()
                    .preamble_us;
            let slot_t = base_us + i as u64 * slot_us;
            let start_us = match scheme {
                BurstScheme::LeadingPreambleOrdered => slot_t,
                BurstScheme::FinalPreambleOrdered => slot_t
                    .checked_sub(preamble)
                    .expect("base_us must exceed the longest preamble"),
            };
            TxPlan {
                node,
                channel,
                dr,
                start_us,
                payload_len,
            }
        })
        .collect()
}

/// Build a fully-overlapping concurrent burst by aligning packet *ends*
/// to micro slots: packet `i` ends at `end_base_us + i·slot_us`, so
/// every packet is still on air when the last one ends and decoders
/// never free mid-burst. This is the alignment that makes "maximum
/// number of concurrent users" a clean capacity metric (§2.2) across
/// mixed spreading factors, whose airtimes differ by 20×.
///
/// `end_base_us` must exceed the longest airtime in the burst (SF12 at
/// 23 bytes ≈ 1.48 s; 2 s is safe).
pub fn end_aligned_burst(
    assignments: &[(usize, Channel, DataRate)],
    payload_len: usize,
    end_base_us: u64,
    slot_us: u64,
) -> Vec<TxPlan> {
    assignments
        .iter()
        .enumerate()
        .map(|(i, &(node, channel, dr))| {
            let airtime =
                PacketParams::lorawan_uplink(dr.spreading_factor(), Bandwidth::Khz125, payload_len)
                    .airtime()
                    .total_us();
            let end = end_base_us + i as u64 * slot_us;
            let start_us = end
                .checked_sub(airtime)
                .expect("end_base_us must exceed the longest airtime");
            TxPlan {
                node,
                channel,
                dr,
                start_us,
                payload_len,
            }
        })
        .collect()
}

/// Duty-cycled random traffic: each node transmits with exponential
/// inter-arrival times whose mean keeps it at `duty` (e.g. 0.01),
/// starting at a random phase, until `horizon_us`.
pub fn duty_cycled(
    assignments: &[(usize, Channel, DataRate)],
    payload_len: usize,
    duty: f64,
    horizon_us: u64,
    seed: u64,
) -> Vec<TxPlan> {
    assert!(duty > 0.0 && duty <= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plans = Vec::new();
    for &(node, channel, dr) in assignments {
        let airtime =
            PacketParams::lorawan_uplink(dr.spreading_factor(), Bandwidth::Khz125, payload_len)
                .airtime()
                .total_us();
        let mean_gap = airtime as f64 / duty;
        let mut t = rng.gen_range(0.0..mean_gap);
        while (t as u64) < horizon_us {
            plans.push(TxPlan {
                node,
                channel,
                dr,
                start_us: t as u64,
                payload_len,
            });
            // Exponential inter-arrival, mean `mean_gap`.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() * mean_gap;
        }
    }
    plans.sort_by_key(|p| p.start_us);
    plans
}

/// A workload delivered in start-time-ordered chunks, so the sharded
/// event loop never materializes the full 3n-event timeline.
///
/// Contract (what [`crate::shard`]'s frontier-gated draining stands
/// on):
///
/// * every plan of a *later* chunk starts at or after the frontier
///   returned with the current chunk (plans *within* a chunk may be in
///   any order — the consumer heaps them);
/// * transmission ids are assigned by the consumer in emission order,
///   so a chunked run's ids match a materialized run over the same
///   plans in the same order;
/// * every emitted channel is in [`Self::channels`] (declared up
///   front, because the shard partition must be fixed before the
///   first chunk is processed).
pub trait ChunkSource {
    /// The channel universe every emitted plan draws from.
    fn channels(&self) -> &[Channel];

    /// Clear `out`, fill it with the next chunk (possibly empty), and
    /// return the frontier: every plan of every later chunk starts at
    /// or after it. `None` once the workload is exhausted.
    fn next_chunk(&mut self, out: &mut Vec<TxPlan>) -> Option<u64>;
}

/// [`ChunkSource`] over an already-materialized plan slice, in slice
/// order (so consumer-assigned ids equal plan indices): yields
/// fixed-size windows whose frontier is the minimum start time of the
/// *remaining* plans (a precomputed suffix minimum, so unsorted slices
/// — which [`crate::world::SimWorld::run`] accepts — work too). Lets
/// `SimWorld::run_sharded` reuse the streaming machinery and lets
/// tests pin chunked == monolithic.
pub struct SliceChunks<'a> {
    plans: &'a [TxPlan],
    channels: Vec<Channel>,
    /// `suffix_min[i]`: minimum `start_us` over `plans[i..]`
    /// (`u64::MAX` at `i == plans.len()`).
    suffix_min: Vec<u64>,
    cursor: usize,
    chunk_txs: usize,
}

impl<'a> SliceChunks<'a> {
    /// Chunk `plans` into windows of at most `chunk_txs` transmissions.
    pub fn new(plans: &'a [TxPlan], chunk_txs: usize) -> SliceChunks<'a> {
        assert!(chunk_txs > 0, "chunk size must be positive");
        // First-appearance channel universe.
        let mut channels: Vec<Channel> = Vec::new();
        for p in plans {
            if !channels.contains(&p.channel) {
                channels.push(p.channel);
            }
        }
        let mut suffix_min = vec![u64::MAX; plans.len() + 1];
        for i in (0..plans.len()).rev() {
            suffix_min[i] = plans[i].start_us.min(suffix_min[i + 1]);
        }
        SliceChunks {
            plans,
            channels,
            suffix_min,
            cursor: 0,
            chunk_txs,
        }
    }
}

impl ChunkSource for SliceChunks<'_> {
    fn channels(&self) -> &[Channel] {
        &self.channels
    }

    fn next_chunk(&mut self, out: &mut Vec<TxPlan>) -> Option<u64> {
        out.clear();
        if self.cursor >= self.plans.len() {
            return None;
        }
        let end = (self.cursor + self.chunk_txs).min(self.plans.len());
        out.extend_from_slice(&self.plans[self.cursor..end]);
        self.cursor = end;
        Some(self.suffix_min[end])
    }
}

/// SplitMix64 step — the per-node PRNG of [`DutyCycleStream`]. 8 bytes
/// of state per node (versus ~136 for a `StdRng`), so a million-node
/// generator stays small; statistically fine for exponential
/// inter-arrival draws.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A uniform f64 in `(0, 1]` from one SplitMix64 draw (53 mantissa
/// bits; the `+1` keeps `ln` finite).
fn unit_open(state: &mut u64) -> f64 {
    (((splitmix64(state) >> 11) + 1) as f64) * (1.0 / 9007199254740992.0)
}

/// Streaming variant of [`duty_cycled`]: the same Poisson-per-node
/// traffic model, generated chunk by chunk in `O(nodes + chunk)`
/// memory instead of materializing (and sorting) every plan.
///
/// Each node owns an independent SplitMix64 stream seeded from
/// `(seed, node index)`, and a binary heap of per-node next-arrival
/// times yields plans in global start order. Deterministic for a fixed
/// seed and **independent of chunking** — only how many plans each
/// `next_chunk` call returns changes, never their content or order.
/// (Not sample-identical to [`duty_cycled`], which consumes one shared
/// `StdRng` sequentially per node; this is a different generator with
/// the same distribution, usable at scales where the materialized one
/// cannot run.)
pub struct DutyCycleStream {
    assignments: Vec<(usize, Channel, DataRate)>,
    channels: Vec<Channel>,
    payload_len: usize,
    horizon_us: u64,
    chunk_us: u64,
    cursor_us: u64,
    /// Per assignment: mean inter-arrival gap (airtime / duty).
    mean_gap: Vec<f64>,
    /// Per assignment: PRNG state.
    rng: Vec<u64>,
    /// Per assignment: exact next arrival time (µs, f64 to avoid
    /// accumulating rounding across arrivals).
    next_t: Vec<f64>,
    /// Min-heap of (next arrival µs, assignment index); arrival ties
    /// break by assignment index for determinism.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    done: bool,
}

impl DutyCycleStream {
    /// Build the stream; chunks cover `chunk_us` of simulated time
    /// each.
    pub fn new(
        assignments: &[(usize, Channel, DataRate)],
        payload_len: usize,
        duty: f64,
        horizon_us: u64,
        seed: u64,
        chunk_us: u64,
    ) -> DutyCycleStream {
        assert!(duty > 0.0 && duty <= 1.0);
        assert!(chunk_us > 0);
        let mut channels: Vec<Channel> = Vec::new();
        for &(_, ch, _) in assignments {
            if !channels.contains(&ch) {
                channels.push(ch);
            }
        }
        let mut mean_gap = Vec::with_capacity(assignments.len());
        let mut rng = Vec::with_capacity(assignments.len());
        let mut next_t = Vec::with_capacity(assignments.len());
        let mut heap = std::collections::BinaryHeap::with_capacity(assignments.len());
        for (i, &(_, _, dr)) in assignments.iter().enumerate() {
            let airtime =
                PacketParams::lorawan_uplink(dr.spreading_factor(), Bandwidth::Khz125, payload_len)
                    .airtime()
                    .total_us();
            let gap = airtime as f64 / duty;
            // Independent stream per node: mix the node index into the
            // seed (SplitMix64 of `seed ^ mix(i)` decorrelates nodes).
            let mut state = seed ^ (i as u64).wrapping_mul(0xA24BAED4963EE407);
            splitmix64(&mut state);
            // Random initial phase in (0, gap], as in `duty_cycled`.
            let t0 = unit_open(&mut state) * gap;
            mean_gap.push(gap);
            rng.push(state);
            next_t.push(t0);
            if (t0 as u64) < horizon_us {
                heap.push(std::cmp::Reverse((t0 as u64, i as u32)));
            }
        }
        DutyCycleStream {
            assignments: assignments.to_vec(),
            channels,
            payload_len,
            horizon_us,
            chunk_us,
            cursor_us: 0,
            mean_gap,
            rng,
            next_t,
            heap,
            done: false,
        }
    }

    /// Total nodes with an assignment.
    pub fn n_assignments(&self) -> usize {
        self.assignments.len()
    }
}

impl ChunkSource for DutyCycleStream {
    fn channels(&self) -> &[Channel] {
        &self.channels
    }

    fn next_chunk(&mut self, out: &mut Vec<TxPlan>) -> Option<u64> {
        out.clear();
        if self.done {
            return None;
        }
        let window_end = self.cursor_us.saturating_add(self.chunk_us);
        while let Some(&std::cmp::Reverse((t, idx))) = self.heap.peek() {
            if t >= window_end {
                break;
            }
            self.heap.pop();
            let i = idx as usize;
            let (node, channel, dr) = self.assignments[i];
            out.push(TxPlan {
                node,
                channel,
                dr,
                start_us: t,
                payload_len: self.payload_len,
            });
            // Exponential inter-arrival, mean `mean_gap`.
            let next = self.next_t[i] - unit_open(&mut self.rng[i]).ln() * self.mean_gap[i];
            self.next_t[i] = next;
            if (next as u64) < self.horizon_us {
                self.heap.push(std::cmp::Reverse((next as u64, idx)));
            }
        }
        self.cursor_us = window_end;
        if self.heap.is_empty() && window_end >= self.horizon_us {
            self.done = true;
            Some(u64::MAX)
        } else {
            Some(window_end)
        }
    }
}

/// Drain a [`ChunkSource`] into one materialized, ordered plan list —
/// the small-scale bridge for proving streamed == materialized runs.
pub fn collect_chunks(source: &mut dyn ChunkSource) -> Vec<TxPlan> {
    let mut all = Vec::new();
    let mut buf = Vec::new();
    while source.next_chunk(&mut buf).is_some() {
        all.extend_from_slice(&buf);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::airtime::PacketParams;
    use lora_phy::types::Bandwidth::Khz125;
    use lora_phy::types::DataRate::*;

    fn assignments() -> Vec<(usize, Channel, DataRate)> {
        (0..12)
            .map(|i| {
                (
                    i,
                    Channel::khz125(920_000_000 + (i as u32 % 4) * 200_000),
                    DataRate::from_index(i % 6).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn scheme_a_orders_starts() {
        let plans = concurrent_burst(
            &assignments(),
            10,
            1_000_000,
            2_000,
            BurstScheme::LeadingPreambleOrdered,
        );
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.start_us, 1_000_000 + i as u64 * 2_000);
        }
    }

    #[test]
    fn scheme_b_orders_lock_ons() {
        let plans = concurrent_burst(
            &assignments(),
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let lock_ons: Vec<u64> = plans
            .iter()
            .map(|p| {
                let preamble =
                    PacketParams::lorawan_uplink(p.dr.spreading_factor(), Khz125, p.payload_len)
                        .airtime()
                        .preamble_us;
                p.start_us + preamble
            })
            .collect();
        for (i, lo) in lock_ons.iter().enumerate() {
            assert_eq!(*lo, 1_000_000 + i as u64 * 2_000);
        }
    }

    #[test]
    #[should_panic(expected = "base_us must exceed")]
    fn scheme_b_rejects_small_base() {
        concurrent_burst(
            &[(0, Channel::khz125(920_000_000), DR0)],
            10,
            1_000, // far less than the SF12 preamble
            0,
            BurstScheme::FinalPreambleOrdered,
        );
    }

    #[test]
    fn end_aligned_all_overlap_at_burst_end() {
        let plans = end_aligned_burst(&assignments(), 23, 2_000_000, 1_000);
        // The last packet's end; every other packet must still be on air
        // at its own end slot and overlap the first packet's end.
        let first_end = 2_000_000;
        for (i, p) in plans.iter().enumerate() {
            let airtime = PacketParams::lorawan_uplink(p.dr.spreading_factor(), Khz125, 23)
                .airtime()
                .total_us();
            assert_eq!(p.start_us + airtime, 2_000_000 + i as u64 * 1_000);
            assert!(
                p.start_us < first_end,
                "packet {i} misses the overlap window"
            );
        }
    }

    #[test]
    #[should_panic(expected = "end_base_us must exceed")]
    fn end_aligned_rejects_small_base() {
        end_aligned_burst(&[(0, Channel::khz125(920_000_000), DR0)], 23, 10_000, 0);
    }

    #[test]
    fn duty_cycled_respects_duty_long_run() {
        let assigns = vec![(0, Channel::khz125(920_000_000), DR3)];
        let horizon = 3_600_000_000u64; // one hour
        let plans = duty_cycled(&assigns, 10, 0.01, horizon, 9);
        let airtime = PacketParams::lorawan_uplink(DR3.spreading_factor(), Khz125, 10)
            .airtime()
            .total_us();
        let on_air: u64 = plans.len() as u64 * airtime;
        let duty = on_air as f64 / horizon as f64;
        // Poisson traffic at target 1%: allow generous statistical slack.
        assert!(duty > 0.004 && duty < 0.02, "duty={duty}");
    }

    #[test]
    fn duty_cycled_sorted_and_deterministic() {
        let a = duty_cycled(&assignments(), 10, 0.01, 600_000_000, 4);
        let b = duty_cycled(&assignments(), 10, 0.01, 600_000_000, 4);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].start_us <= w[1].start_us));
        assert!(!a.is_empty());
    }

    #[test]
    fn duty_cycled_covers_all_nodes() {
        let plans = duty_cycled(&assignments(), 10, 0.01, 3_600_000_000, 4);
        for node in 0..12 {
            assert!(
                plans.iter().any(|p| p.node == node),
                "node {node} never transmits in an hour"
            );
        }
    }
}
