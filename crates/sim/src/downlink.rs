//! Downlink reception evaluation.
//!
//! Uplink capacity is the paper's subject, but AlphaWAN's control plane
//! rides on *downlinks* (LinkADRReq / NewChannelReq in RX windows), so
//! the simulator can answer: does a scheduled downlink actually reach
//! the device? Reciprocal path loss plus the same demodulation floors;
//! concurrent downlinks on the same channel collide like uplinks do.

use crate::topology::Topology;
use lora_phy::channel::{overlap_ratio, Channel};
use lora_phy::interference::{capture_outcome, CaptureOutcome};
use lora_phy::snr::{decodable, snr_db};
use lora_phy::types::{Bandwidth, DataRate, TxPowerDbm};

/// One scheduled downlink emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownlinkTx {
    /// Transmitting gateway index.
    pub gw: usize,
    /// Node the downlink is addressed to.
    pub target_node: usize,
    /// Downlink channel.
    pub channel: Channel,
    /// Downlink data rate.
    pub dr: DataRate,
    /// Gateway Tx power.
    pub power: TxPowerDbm,
    /// Emission start, µs.
    pub start_us: u64,
    /// On-air duration, µs.
    pub airtime_us: u64,
}

impl DownlinkTx {
    fn end_us(&self) -> u64 {
        self.start_us + self.airtime_us
    }

    fn overlaps(&self, other: &DownlinkTx) -> bool {
        self.start_us < other.end_us() && other.start_us < self.end_us()
    }
}

/// Evaluate a batch of downlinks: which targets receive theirs?
/// Reciprocity: the node↔gateway loss is the topology's uplink loss.
pub fn evaluate_downlinks(topo: &Topology, txs: &[DownlinkTx]) -> Vec<bool> {
    txs.iter()
        .enumerate()
        .map(|(i, tx)| {
            let rssi = tx.power.0 - topo.loss_db[tx.target_node][tx.gw];
            let snr = snr_db(rssi, Bandwidth::Khz125);
            if !decodable(snr, tx.dr.spreading_factor(), 0.0) {
                return false;
            }
            // Same-channel same-SF concurrent downlinks: capture.
            for (j, other) in txs.iter().enumerate() {
                if i == j || !tx.overlaps(other) {
                    continue;
                }
                if overlap_ratio(&tx.channel, &other.channel) < 0.75
                    || other.dr.spreading_factor() != tx.dr.spreading_factor()
                {
                    continue;
                }
                let other_rssi = other.power.0 - topo.loss_db[tx.target_node][other.gw];
                let survives = match capture_outcome(rssi, other_rssi) {
                    CaptureOutcome::FirstSurvives => true,
                    CaptureOutcome::SecondSurvives | CaptureOutcome::BothLost => false,
                };
                if !survives {
                    return false;
                }
            }
            true
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::pathloss::PathLossModel;

    fn topo() -> Topology {
        let model = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let mut t = Topology::new((200.0, 200.0), 3, 2, model, 1);
        // Deterministic losses: node n ↔ gw g.
        t.loss_db = vec![vec![110.0, 130.0], vec![125.0, 112.0], vec![140.0, 139.0]];
        t
    }

    fn tx(gw: usize, node: usize, ch: u32, dr: DataRate, start: u64) -> DownlinkTx {
        DownlinkTx {
            gw,
            target_node: node,
            channel: Channel::khz125(ch),
            dr,
            power: TxPowerDbm(14.0),
            start_us: start,
            airtime_us: 100_000,
        }
    }

    #[test]
    fn clean_downlink_delivered() {
        let t = topo();
        // Node 0 from gw 0: SNR = 14 − 110 + 117 = 21 dB.
        let r = evaluate_downlinks(&t, &[tx(0, 0, 916_900_000, DataRate::DR5, 0)]);
        assert_eq!(r, vec![true]);
    }

    #[test]
    fn weak_link_fails_at_fast_rate_but_not_slow() {
        let t = topo();
        // Node 2 from gw 0: SNR = 14 − 140 + 117 = −9 dB.
        let fast = evaluate_downlinks(&t, &[tx(0, 2, 916_900_000, DataRate::DR5, 0)]);
        assert_eq!(fast, vec![false], "DR5 floor is −7.5 dB");
        let slow = evaluate_downlinks(&t, &[tx(0, 2, 916_900_000, DataRate::DR2, 0)]);
        assert_eq!(slow, vec![true], "DR2 floor is −15 dB");
    }

    #[test]
    fn concurrent_same_channel_downlinks_capture() {
        let t = topo();
        // Both gateways answer different nodes on the same channel+SF,
        // overlapping in time. At node 0, gw0 is 20 dB stronger: its
        // downlink survives; at node 1, gw1 is 13 dB stronger: survives.
        let txs = [
            tx(0, 0, 916_900_000, DataRate::DR3, 0),
            tx(1, 1, 916_900_000, DataRate::DR3, 10_000),
        ];
        assert_eq!(evaluate_downlinks(&t, &txs), vec![true, true]);
        // But a victim hearing both at similar power loses.
        let txs = [
            tx(0, 2, 916_900_000, DataRate::DR1, 0), // −9 dB, floor −17.5
            tx(1, 1, 916_900_000, DataRate::DR1, 10_000),
        ];
        // At node 2, gw1's signal is 14−139+117 = −8 dB vs gw0's −9 dB:
        // within the capture margin ⇒ node 2's downlink is destroyed.
        assert!(!evaluate_downlinks(&t, &txs)[0]);
    }

    #[test]
    fn disjoint_channels_no_interaction() {
        let t = topo();
        let txs = [
            tx(0, 0, 916_900_000, DataRate::DR3, 0),
            tx(1, 1, 917_300_000, DataRate::DR3, 0),
        ];
        assert_eq!(evaluate_downlinks(&t, &txs), vec![true, true]);
    }

    #[test]
    fn non_overlapping_in_time_no_interaction() {
        let t = topo();
        let txs = [
            tx(0, 2, 916_900_000, DataRate::DR1, 0),
            tx(1, 1, 916_900_000, DataRate::DR1, 200_000),
        ];
        assert!(evaluate_downlinks(&t, &txs)[0]);
    }
}
