//! Node and gateway placement, link-loss matrices and the CP reach
//! matrix.
//!
//! Shadowing is sampled once per (node, gateway) link and *frozen* —
//! the standard block-fading assumption, and the reason simulation runs
//! are exactly reproducible for a given seed.

use lora_phy::pathloss::{ring_radii_m, PathLossModel, DISTANCE_RINGS};
use lora_phy::types::{DataRate, TxPowerDbm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A position in meters within the deployment area.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pos {
    /// East-west coordinate, m.
    pub x_m: f64,
    /// North-south coordinate, m.
    pub y_m: f64,
}

impl Pos {
    /// Euclidean distance to `other`, m.
    pub fn dist_m(&self, other: &Pos) -> f64 {
        ((self.x_m - other.x_m).powi(2) + (self.y_m - other.y_m).powi(2)).sqrt()
    }
}

/// A deployment: node positions, gateway positions and the frozen
/// per-link path loss.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Deployment area (width, height), m.
    pub area_m: (f64, f64),
    /// Node positions.
    pub nodes: Vec<Pos>,
    /// Gateway positions.
    pub gateways: Vec<Pos>,
    /// The path-loss model links were sampled from.
    pub model: PathLossModel,
    /// `loss_db[node][gw]`, shadowing included.
    pub loss_db: Vec<Vec<f64>>,
}

impl Topology {
    /// Random-uniform node placement with gateways on a grid, over the
    /// paper's testbed footprint by default (2.1 km × 1.6 km, Fig. 11).
    pub fn testbed(n_nodes: usize, n_gateways: usize, seed: u64) -> Topology {
        Topology::new(
            (2_100.0, 1_600.0),
            n_nodes,
            n_gateways,
            PathLossModel::default(),
            seed,
        )
    }

    /// Build a topology: nodes uniform in the area, gateways on a
    /// near-square grid.
    pub fn new(
        area_m: (f64, f64),
        n_nodes: usize,
        n_gateways: usize,
        model: PathLossModel,
        seed: u64,
    ) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes: Vec<Pos> = (0..n_nodes)
            .map(|_| Pos {
                x_m: rng.gen_range(0.0..area_m.0),
                y_m: rng.gen_range(0.0..area_m.1),
            })
            .collect();
        let gateways = grid_positions(area_m, n_gateways);
        let loss_db = nodes
            .iter()
            .map(|n| {
                gateways
                    .iter()
                    .map(|g| model.loss_db(n.dist_m(g), &mut rng))
                    .collect()
            })
            .collect();
        Topology {
            area_m,
            nodes,
            gateways,
            model,
            loss_db,
        }
    }

    /// RSSI at `gw` for a transmission from `node` at power `tx`.
    pub fn rssi_dbm(&self, node: usize, gw: usize, tx: TxPowerDbm) -> f64 {
        tx.0 - self.loss_db[node][gw]
    }

    /// Mean SNR of the (node, gw) link at power `tx` (125 kHz floor).
    pub fn snr_db(&self, node: usize, gw: usize, tx: TxPowerDbm) -> f64 {
        lora_phy::snr::snr_db(
            self.rssi_dbm(node, gw, tx),
            lora_phy::types::Bandwidth::Khz125,
        )
    }

    /// The CP reach matrix `R ∈ {0,1}^(ND×GW×DR)` (§4.3.1): entry
    /// `[i][j][l]` is true iff node `i` can reach gateway `j` using
    /// transmission-distance ring `l` (ring 0 = shortest/DR5). Built
    /// from actual link SNRs rather than geometric distance so that
    /// shadowing is honored.
    pub fn reach_matrix(&self, tx: TxPowerDbm) -> Vec<Vec<[bool; DISTANCE_RINGS]>> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, _)| {
                (0..self.gateways.len())
                    .map(|j| {
                        let snr = self.snr_db(i, j, tx);
                        let mut row = [false; DISTANCE_RINGS];
                        for (l, slot) in row.iter_mut().enumerate() {
                            // Ring l corresponds to data rate 5-l; the
                            // link is usable at that ring if the SNR
                            // clears the corresponding demod floor.
                            let dr = DataRate::from_index(5 - l).unwrap();
                            *slot = snr >= lora_phy::snr::demod_snr_floor_db(dr.spreading_factor());
                        }
                        row
                    })
                    .collect()
            })
            .collect()
    }

    /// Gateways whose link to `node` closes at the *most robust* data
    /// rate (DR0) — the set that will contend for this node's packets.
    pub fn gateways_in_range(&self, node: usize, tx: TxPowerDbm) -> Vec<usize> {
        (0..self.gateways.len())
            .filter(|&j| {
                self.snr_db(node, j, tx)
                    >= lora_phy::snr::demod_snr_floor_db(lora_phy::types::SpreadingFactor::SF12)
            })
            .collect()
    }

    /// Ring radii for the configured path-loss model.
    pub fn ring_radii(&self, tx: TxPowerDbm) -> [f64; DISTANCE_RINGS] {
        ring_radii_m(&self.model, tx, 0.0)
    }
}

/// `n` positions on a near-square grid covering `area_m`.
pub fn grid_positions(area_m: (f64, f64), n: usize) -> Vec<Pos> {
    if n == 0 {
        return Vec::new();
    }
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let mut out = Vec::with_capacity(n);
    for r in 0..rows {
        for c in 0..cols {
            if out.len() == n {
                break;
            }
            out.push(Pos {
                x_m: (c as f64 + 0.5) * area_m.0 / cols as f64,
                y_m: (r as f64 + 0.5) * area_m.1 / rows as f64,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Topology::testbed(20, 3, 42);
        let b = Topology::testbed(20, 3, 42);
        assert_eq!(a.loss_db, b.loss_db);
        let c = Topology::testbed(20, 3, 43);
        assert_ne!(a.loss_db, c.loss_db);
    }

    #[test]
    fn grid_positions_count_and_bounds() {
        for n in [1, 3, 4, 9, 15, 16] {
            let ps = grid_positions((2_100.0, 1_600.0), n);
            assert_eq!(ps.len(), n);
            for p in ps {
                assert!(p.x_m > 0.0 && p.x_m < 2_100.0);
                assert!(p.y_m > 0.0 && p.y_m < 1_600.0);
            }
        }
    }

    #[test]
    fn nodes_inside_area() {
        let t = Topology::testbed(100, 4, 1);
        for n in &t.nodes {
            assert!(n.x_m >= 0.0 && n.x_m <= 2_100.0);
            assert!(n.y_m >= 0.0 && n.y_m <= 1_600.0);
        }
    }

    #[test]
    fn reach_matrix_monotone_in_ring() {
        // If a link closes at ring l (faster DR), it also closes at all
        // larger rings (slower DRs).
        let t = Topology::testbed(50, 4, 7);
        let reach = t.reach_matrix(TxPowerDbm(14.0));
        for node_row in &reach {
            for gw_row in node_row {
                for l in 0..DISTANCE_RINGS - 1 {
                    if gw_row[l] {
                        assert!(gw_row[l + 1], "ring reachability must be monotone");
                    }
                }
            }
        }
    }

    #[test]
    fn most_nodes_reach_some_gateway() {
        let t = Topology::testbed(100, 9, 3);
        let reachable = (0..100)
            .filter(|&i| !t.gateways_in_range(i, TxPowerDbm(14.0)).is_empty())
            .count();
        assert!(reachable > 90, "only {reachable}/100 nodes connected");
    }

    #[test]
    fn multiple_gateways_in_range_in_dense_grid() {
        // The paper (Fig 6): without ADR each user connects to ~7
        // gateways on a dense deployment. With 16 gateways on our
        // testbed footprint, typical nodes should reach several.
        let t = Topology::testbed(100, 16, 11);
        let mean: f64 = (0..100)
            .map(|i| t.gateways_in_range(i, TxPowerDbm(14.0)).len() as f64)
            .sum::<f64>()
            / 100.0;
        assert!(mean >= 3.0, "mean gateways in range {mean}");
    }

    #[test]
    fn snr_decreases_with_distance_on_average() {
        let t = Topology::new((4_000.0, 4_000.0), 1, 1, PathLossModel::default(), 5);
        // Compare the single (node, gw) pair against a translated copy:
        // statistical, so just check rssi math consistency instead.
        let r = t.rssi_dbm(0, 0, TxPowerDbm(14.0));
        assert_eq!(r, 14.0 - t.loss_db[0][0]);
    }
}
