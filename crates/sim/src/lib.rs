//! # sim — deterministic discrete-event LoRaWAN simulator
//!
//! Drives the `gateway` reception model over a statistical radio medium
//! to reproduce the paper's experiments at laptop scale:
//!
//! * [`engine`] — a minimal binary-heap event queue with deterministic
//!   tie-breaking;
//! * [`topology`] — node/gateway placement, link-loss matrices (with
//!   frozen shadowing so runs are reproducible) and the CP reach matrix;
//! * [`traffic`] — workload generators: the paper's micro-slotted
//!   concurrent bursts (§3.1), duty-cycled periodic traffic (§5.2.1) and
//!   trace-driven long-term load (Appendix D);
//! * [`world`] — the simulation proper: medium arbitration (capture,
//!   cross-SF rejection, partial-overlap interference), gateway event
//!   delivery, network-server-level deduplication and per-packet loss
//!   classification;
//! * [`metrics`] — PRR, throughput, loss breakdowns and the
//!   "maximum concurrent users" capacity probe used throughout §5;
//! * [`faults`] — the infrastructure-fault hook the `chaos` crate plugs
//!   into, so gateway crashes and decoder lock-ups can be injected into
//!   a run without `sim` depending on the fault-injection layer.
//!
//! Attach an [`obs`] sink with [`world::SimWorld::set_obs_sink`] to
//! stream typed events (lock-ons, decoder churn, per-packet outcomes)
//! out of a run; see `docs/OBSERVABILITY.md`.

#![deny(missing_docs)]

mod accum;
pub mod downlink;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod reference;
mod runctx;
pub mod shard;
pub mod topology;
pub mod trace;
pub mod traffic;
pub mod world;

pub use downlink::{evaluate_downlinks, DownlinkTx};
pub use engine::{Event, EventQueue};
pub use faults::{InfraFaults, NoFaults};
pub use metrics::{LossBreakdown, NetSummary, RunMetrics, RunSummary};
pub use shard::{ShardOpts, ShardRunStats, StreamedRun};
pub use topology::{Pos, Topology};
pub use trace::{TracePool, TraceRecord};
pub use traffic::{
    collect_chunks, concurrent_burst, duty_cycled, end_aligned_burst, BurstScheme, ChunkSource,
    DutyCycleStream, SliceChunks, TxPlan,
};
pub use world::{LossCause, PacketRecord, SimRunStats, SimWorld, Transmission};
