//! Run metrics: PRR, throughput, loss breakdowns and the capacity
//! probes used throughout the paper's §5.

use crate::world::{LossCause, PacketRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Counts per loss cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossBreakdown {
    /// Decoder contention against the packet's own network.
    pub decoder_intra: u64,
    /// Decoder contention against coexisting networks.
    pub decoder_inter: u64,
    /// Same-settings collisions within the packet's own network.
    pub channel_intra: u64,
    /// Same-settings collisions with coexisting networks.
    pub channel_inter: u64,
    /// SNR / interference / out-of-range losses.
    pub other: u64,
    /// Losses caused by injected infrastructure faults (gateway
    /// crashes, decoder lock-ups) — separates "lost to contention"
    /// from "lost to infrastructure" in chaos runs. Zero in fault-free
    /// runs.
    pub infrastructure: u64,
}

impl LossBreakdown {
    /// Total losses across all causes.
    pub fn total(&self) -> u64 {
        self.decoder_intra
            + self.decoder_inter
            + self.channel_intra
            + self.channel_inter
            + self.other
            + self.infrastructure
    }

    /// Count one loss of the given cause.
    pub fn add(&mut self, cause: LossCause) {
        match cause {
            LossCause::DecoderContentionIntra => self.decoder_intra += 1,
            LossCause::DecoderContentionInter => self.decoder_inter += 1,
            LossCause::ChannelContentionIntra => self.channel_intra += 1,
            LossCause::ChannelContentionInter => self.channel_inter += 1,
            LossCause::Other => self.other += 1,
            LossCause::Infrastructure => self.infrastructure += 1,
        }
    }

    /// All decoder-contention losses.
    pub fn decoder(&self) -> u64 {
        self.decoder_intra + self.decoder_inter
    }

    /// All channel-contention losses.
    pub fn channel(&self) -> u64 {
        self.channel_intra + self.channel_inter
    }

    /// All contention losses (decoder + channel), as opposed to
    /// infrastructure losses.
    pub fn contention(&self) -> u64 {
        self.decoder() + self.channel()
    }
}

/// Aggregate metrics of one run (optionally filtered to one network).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Packets transmitted.
    pub sent: u64,
    /// Packets received by at least one own-network gateway.
    pub delivered: u64,
    /// Losses by cause.
    pub losses: LossBreakdown,
    /// Delivered application payload, bytes.
    pub delivered_payload_bytes: u64,
    /// Run horizon (max end − min start), µs.
    pub horizon_us: u64,
}

impl RunMetrics {
    /// Compute metrics over all records, or only those of `network`.
    pub fn from_records(records: &[PacketRecord], network: Option<u32>) -> RunMetrics {
        let mut m = RunMetrics::default();
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;
        for r in records {
            if let Some(net) = network {
                if r.network_id != net {
                    continue;
                }
            }
            m.sent += 1;
            t_min = t_min.min(r.start_us);
            t_max = t_max.max(r.end_us);
            if r.delivered {
                m.delivered += 1;
                m.delivered_payload_bytes += r.payload_len as u64;
            } else if let Some(c) = r.cause {
                m.losses.add(c);
            }
        }
        if m.sent > 0 {
            m.horizon_us = t_max - t_min;
        }
        m
    }

    /// Packet reception ratio.
    pub fn prr(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Packet loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        1.0 - self.prr()
    }

    /// Goodput in bits per second over the run horizon.
    pub fn throughput_bps(&self) -> f64 {
        if self.horizon_us == 0 {
            0.0
        } else {
            self.delivered_payload_bytes as f64 * 8.0 * 1e6 / self.horizon_us as f64
        }
    }

    /// Fraction of losses attributable to each cause, in the order
    /// (decoder-intra, decoder-inter, channel-intra, channel-inter,
    /// other, infrastructure), relative to packets *sent* (the paper's
    /// Fig 4 stacks, extended with the chaos layer's bucket — which is
    /// 0 in fault-free runs, keeping the original five additive).
    pub fn loss_fractions(&self) -> [f64; 6] {
        if self.sent == 0 {
            return [0.0; 6];
        }
        let s = self.sent as f64;
        [
            self.losses.decoder_intra as f64 / s,
            self.losses.decoder_inter as f64 / s,
            self.losses.channel_intra as f64 / s,
            self.losses.channel_inter as f64 / s,
            self.losses.other as f64 / s,
            self.losses.infrastructure as f64 / s,
        ]
    }
}

/// Delivered-count per network.
pub fn delivered_per_network(records: &[PacketRecord]) -> HashMap<u32, u64> {
    let mut out = HashMap::new();
    for r in records {
        if r.delivered {
            *out.entry(r.network_id).or_insert(0) += 1;
        }
    }
    out
}

/// Per-data-rate usage distribution over sent packets (Fig. 6d/e,
/// Fig. 13d input): fraction of packets per DR index 0..=5.
pub fn dr_distribution(records: &[PacketRecord]) -> [f64; 6] {
    let mut counts = [0u64; 6];
    for r in records {
        counts[r.dr.index()] += 1;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return [0.0; 6];
    }
    core::array::from_fn(|i| counts[i] as f64 / total as f64)
}

/// "Maximum number of concurrent users": delivered count of a single
/// concurrent burst — the capacity metric of §2.2/§5.1.
pub fn concurrent_capacity(records: &[PacketRecord]) -> usize {
    records.iter().filter(|r| r.delivered).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::channel::Channel;
    use lora_phy::types::DataRate;

    fn rec(id: u64, net: u32, delivered: bool, cause: Option<LossCause>) -> PacketRecord {
        PacketRecord {
            tx_id: id,
            node: id as usize,
            network_id: net,
            channel: Channel::khz125(920_000_000),
            dr: DataRate::DR3,
            start_us: id * 1_000,
            end_us: id * 1_000 + 100_000,
            payload_len: 10,
            delivered,
            receiving_gateways: if delivered { vec![0] } else { vec![] },
            cause,
        }
    }

    #[test]
    fn prr_and_breakdown() {
        let records = vec![
            rec(0, 1, true, None),
            rec(1, 1, false, Some(LossCause::DecoderContentionIntra)),
            rec(2, 1, false, Some(LossCause::DecoderContentionInter)),
            rec(3, 1, false, Some(LossCause::ChannelContentionIntra)),
            rec(4, 1, false, Some(LossCause::Other)),
        ];
        let m = RunMetrics::from_records(&records, None);
        assert_eq!(m.sent, 5);
        assert_eq!(m.delivered, 1);
        assert!((m.prr() - 0.2).abs() < 1e-12);
        assert_eq!(m.losses.decoder(), 2);
        assert_eq!(m.losses.channel(), 1);
        assert_eq!(m.losses.other, 1);
        let f = m.loss_fractions();
        assert!((f.iter().sum::<f64>() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn network_filter() {
        let records = vec![
            rec(0, 1, true, None),
            rec(1, 2, true, None),
            rec(2, 2, false, Some(LossCause::Other)),
        ];
        let m1 = RunMetrics::from_records(&records, Some(1));
        let m2 = RunMetrics::from_records(&records, Some(2));
        assert_eq!(m1.sent, 1);
        assert_eq!(m2.sent, 2);
        assert_eq!(m2.delivered, 1);
    }

    #[test]
    fn throughput_math() {
        let mut records = vec![rec(0, 1, true, None)];
        records[0].start_us = 0;
        records[0].end_us = 1_000_000; // 1 s horizon
        let m = RunMetrics::from_records(&records, None);
        assert!((m.throughput_bps() - 80.0).abs() < 1e-9); // 10 B in 1 s
    }

    #[test]
    fn empty_records_safe() {
        let m = RunMetrics::from_records(&[], None);
        assert_eq!(m.prr(), 0.0);
        assert_eq!(m.throughput_bps(), 0.0);
    }

    #[test]
    fn per_network_delivered() {
        let records = vec![
            rec(0, 1, true, None),
            rec(1, 2, true, None),
            rec(2, 1, true, None),
        ];
        let per = delivered_per_network(&records);
        assert_eq!(per[&1], 2);
        assert_eq!(per[&2], 1);
    }

    #[test]
    fn dr_distribution_sums_to_one() {
        let records = vec![rec(0, 1, true, None), rec(1, 1, true, None)];
        let d = dr_distribution(&records);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d[3], 1.0); // all DR3 in the helper
    }
}
