//! Run metrics: PRR, throughput, loss breakdowns and the capacity
//! probes used throughout the paper's §5.

use crate::world::{LossCause, PacketRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Counts per loss cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossBreakdown {
    /// Decoder contention against the packet's own network.
    pub decoder_intra: u64,
    /// Decoder contention against coexisting networks.
    pub decoder_inter: u64,
    /// Same-settings collisions within the packet's own network.
    pub channel_intra: u64,
    /// Same-settings collisions with coexisting networks.
    pub channel_inter: u64,
    /// SNR / interference / out-of-range losses.
    pub other: u64,
    /// Losses caused by injected infrastructure faults (gateway
    /// crashes, decoder lock-ups) — separates "lost to contention"
    /// from "lost to infrastructure" in chaos runs. Zero in fault-free
    /// runs.
    pub infrastructure: u64,
}

impl LossBreakdown {
    /// Total losses across all causes.
    pub fn total(&self) -> u64 {
        self.decoder_intra
            + self.decoder_inter
            + self.channel_intra
            + self.channel_inter
            + self.other
            + self.infrastructure
    }

    /// Count one loss of the given cause.
    pub fn add(&mut self, cause: LossCause) {
        match cause {
            LossCause::DecoderContentionIntra => self.decoder_intra += 1,
            LossCause::DecoderContentionInter => self.decoder_inter += 1,
            LossCause::ChannelContentionIntra => self.channel_intra += 1,
            LossCause::ChannelContentionInter => self.channel_inter += 1,
            LossCause::Other => self.other += 1,
            LossCause::Infrastructure => self.infrastructure += 1,
        }
    }

    /// All decoder-contention losses.
    pub fn decoder(&self) -> u64 {
        self.decoder_intra + self.decoder_inter
    }

    /// All channel-contention losses.
    pub fn channel(&self) -> u64 {
        self.channel_intra + self.channel_inter
    }

    /// All contention losses (decoder + channel), as opposed to
    /// infrastructure losses.
    pub fn contention(&self) -> u64 {
        self.decoder() + self.channel()
    }
}

/// Aggregate metrics of one run (optionally filtered to one network).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Packets transmitted.
    pub sent: u64,
    /// Packets received by at least one own-network gateway.
    pub delivered: u64,
    /// Losses by cause.
    pub losses: LossBreakdown,
    /// Delivered application payload, bytes.
    pub delivered_payload_bytes: u64,
    /// Run horizon (max end − min start), µs.
    pub horizon_us: u64,
}

impl RunMetrics {
    /// Compute metrics over all records, or only those of `network`.
    pub fn from_records(records: &[PacketRecord], network: Option<u32>) -> RunMetrics {
        let mut m = RunMetrics::default();
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;
        for r in records {
            if let Some(net) = network {
                if r.network_id != net {
                    continue;
                }
            }
            m.sent += 1;
            t_min = t_min.min(r.start_us);
            t_max = t_max.max(r.end_us);
            if r.delivered {
                m.delivered += 1;
                m.delivered_payload_bytes += r.payload_len as u64;
            } else if let Some(c) = r.cause {
                m.losses.add(c);
            }
        }
        if m.sent > 0 {
            m.horizon_us = t_max - t_min;
        }
        m
    }

    /// Packet reception ratio.
    pub fn prr(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Packet loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        1.0 - self.prr()
    }

    /// Goodput in bits per second over the run horizon.
    pub fn throughput_bps(&self) -> f64 {
        if self.horizon_us == 0 {
            0.0
        } else {
            self.delivered_payload_bytes as f64 * 8.0 * 1e6 / self.horizon_us as f64
        }
    }

    /// Fraction of losses attributable to each cause, in the order
    /// (decoder-intra, decoder-inter, channel-intra, channel-inter,
    /// other, infrastructure), relative to packets *sent* (the paper's
    /// Fig 4 stacks, extended with the chaos layer's bucket — which is
    /// 0 in fault-free runs, keeping the original five additive).
    pub fn loss_fractions(&self) -> [f64; 6] {
        if self.sent == 0 {
            return [0.0; 6];
        }
        let s = self.sent as f64;
        [
            self.losses.decoder_intra as f64 / s,
            self.losses.decoder_inter as f64 / s,
            self.losses.channel_intra as f64 / s,
            self.losses.channel_inter as f64 / s,
            self.losses.other as f64 / s,
            self.losses.infrastructure as f64 / s,
        ]
    }
}

/// Per-network aggregate of a run, foldable one packet at a time —
/// the record-free outcome the streaming shard loop accumulates so a
/// million-node run never materializes per-packet [`PacketRecord`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetSummary {
    /// Packets transmitted.
    pub sent: u64,
    /// Packets received by at least one own-network gateway.
    pub delivered: u64,
    /// Losses by cause.
    pub losses: LossBreakdown,
    /// Delivered application payload, bytes.
    pub delivered_payload_bytes: u64,
    /// Earliest transmission start, µs (`u64::MAX` while empty).
    pub t_min_us: u64,
    /// Latest transmission end, µs.
    pub t_max_us: u64,
}

impl Default for NetSummary {
    fn default() -> NetSummary {
        NetSummary {
            sent: 0,
            delivered: 0,
            losses: LossBreakdown::default(),
            delivered_payload_bytes: 0,
            t_min_us: u64::MAX,
            t_max_us: 0,
        }
    }
}

impl NetSummary {
    /// Fold one packet outcome in.
    pub fn note(
        &mut self,
        start_us: u64,
        end_us: u64,
        payload_len: usize,
        delivered: bool,
        cause: Option<LossCause>,
    ) {
        self.sent += 1;
        self.t_min_us = self.t_min_us.min(start_us);
        self.t_max_us = self.t_max_us.max(end_us);
        if delivered {
            self.delivered += 1;
            self.delivered_payload_bytes += payload_len as u64;
        } else if let Some(c) = cause {
            self.losses.add(c);
        }
    }

    /// Merge another summary in (shard roll-up).
    pub fn merge(&mut self, other: &NetSummary) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.losses.decoder_intra += other.losses.decoder_intra;
        self.losses.decoder_inter += other.losses.decoder_inter;
        self.losses.channel_intra += other.losses.channel_intra;
        self.losses.channel_inter += other.losses.channel_inter;
        self.losses.other += other.losses.other;
        self.losses.infrastructure += other.losses.infrastructure;
        self.delivered_payload_bytes += other.delivered_payload_bytes;
        self.t_min_us = self.t_min_us.min(other.t_min_us);
        self.t_max_us = self.t_max_us.max(other.t_max_us);
    }

    /// Packet delivery ratio.
    pub fn pdr(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Run horizon (max end − min start), µs; 0 while empty.
    pub fn horizon_us(&self) -> u64 {
        if self.sent == 0 {
            0
        } else {
            self.t_max_us - self.t_min_us
        }
    }

    /// Distribution over the seven packet outcomes (delivered + the six
    /// loss causes), normalized by packets sent. All-zero while empty.
    pub fn outcome_distribution(&self) -> [f64; 7] {
        if self.sent == 0 {
            return [0.0; 7];
        }
        let s = self.sent as f64;
        [
            self.delivered as f64 / s,
            self.losses.decoder_intra as f64 / s,
            self.losses.decoder_inter as f64 / s,
            self.losses.channel_intra as f64 / s,
            self.losses.channel_inter as f64 / s,
            self.losses.other as f64 / s,
            self.losses.infrastructure as f64 / s,
        ]
    }
}

/// Aggregate outcome of one run: the global fold plus one
/// [`NetSummary`] per network, keyed deterministically.
///
/// This is what sharded/streamed runs return instead of a record list,
/// and what the **statistical-equivalence gate** compares at scales
/// where the bit-exact `sim::reference` loop cannot run (see
/// [`RunSummary::statistically_equivalent`] and `docs/SCALING.md`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Fold over every packet of the run.
    pub total: NetSummary,
    /// Fold per network id, ascending in id — so iteration and
    /// serialization order are deterministic regardless of the order
    /// outcomes were folded in.
    pub per_network: Vec<(u32, NetSummary)>,
}

impl RunSummary {
    /// The fold for `network_id`, created empty (at its sorted
    /// position) on first sight.
    fn net_entry(&mut self, network_id: u32) -> &mut NetSummary {
        let i = match self.per_network.binary_search_by_key(&network_id, |e| e.0) {
            Ok(i) => i,
            Err(i) => {
                self.per_network
                    .insert(i, (network_id, NetSummary::default()));
                i
            }
        };
        &mut self.per_network[i].1
    }

    /// The fold for `network_id`, if any packet of that network was
    /// noted.
    pub fn network(&self, network_id: u32) -> Option<&NetSummary> {
        self.per_network
            .binary_search_by_key(&network_id, |e| e.0)
            .ok()
            .map(|i| &self.per_network[i].1)
    }

    /// Fold one packet outcome in.
    pub fn note(
        &mut self,
        network_id: u32,
        start_us: u64,
        end_us: u64,
        payload_len: usize,
        delivered: bool,
        cause: Option<LossCause>,
    ) {
        self.total
            .note(start_us, end_us, payload_len, delivered, cause);
        self.net_entry(network_id)
            .note(start_us, end_us, payload_len, delivered, cause);
    }

    /// Merge another summary in (shard roll-up; order-independent).
    pub fn merge(&mut self, other: &RunSummary) {
        self.total.merge(&other.total);
        for (net, s) in &other.per_network {
            self.net_entry(*net).merge(s);
        }
    }

    /// Build a summary from materialized records (the small-scale
    /// anchor: `RunSummary::from_records(&world.run(..))` must equal
    /// the streamed fold exactly).
    pub fn from_records(records: &[PacketRecord]) -> RunSummary {
        let mut s = RunSummary::default();
        for r in records {
            s.note(
                r.network_id,
                r.start_us,
                r.end_us,
                r.payload_len,
                r.delivered,
                r.cause,
            );
        }
        s
    }

    /// Largest absolute per-network PDR difference versus `other`
    /// (includes the global fold; a network present on one side only
    /// compares against an empty fold).
    pub fn pdr_gap(&self, other: &RunSummary) -> f64 {
        let mut gap = (self.total.pdr() - other.total.pdr()).abs();
        let empty = NetSummary::default();
        let nets = self
            .per_network
            .iter()
            .chain(other.per_network.iter())
            .map(|e| e.0);
        for net in nets {
            let a = self.network(net).unwrap_or(&empty);
            let b = other.network(net).unwrap_or(&empty);
            gap = gap.max((a.pdr() - b.pdr()).abs());
        }
        gap
    }

    /// Total-variation distance between the global outcome
    /// distributions (delivered + six loss causes): `½ Σ |pᵢ − qᵢ|`,
    /// in `[0, 1]`.
    pub fn loss_tv_distance(&self, other: &RunSummary) -> f64 {
        let p = self.total.outcome_distribution();
        let q = other.total.outcome_distribution();
        p.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0
    }

    /// The statistical-equivalence gate: per-network PDR within
    /// `pdr_tol` and outcome-distribution TV distance within `tv_tol`
    /// of `other`. `Err` carries a human-readable violation report.
    ///
    /// Used where the bit-exact reference cannot run (e.g. 1M nodes):
    /// an N-shard streamed run is compared against a 1-shard streamed
    /// run of the same workload, which this crate *proves* byte-equal
    /// at small scale — so a gate failure at large scale means scale
    /// itself broke determinism (overflow, allocation-order leak, …).
    pub fn statistically_equivalent(
        &self,
        other: &RunSummary,
        pdr_tol: f64,
        tv_tol: f64,
    ) -> Result<(), String> {
        let mut violations = Vec::new();
        if self.total.sent != other.total.sent {
            violations.push(format!(
                "sent diverged: {} vs {}",
                self.total.sent, other.total.sent
            ));
        }
        let gap = self.pdr_gap(other);
        if gap > pdr_tol {
            violations.push(format!("PDR gap {gap:.6} > tolerance {pdr_tol}"));
        }
        let tv = self.loss_tv_distance(other);
        if tv > tv_tol {
            violations.push(format!(
                "loss-distribution TV distance {tv:.6} > tolerance {tv_tol}"
            ));
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations.join("; "))
        }
    }
}

/// Delivered-count per network.
pub fn delivered_per_network(records: &[PacketRecord]) -> HashMap<u32, u64> {
    let mut out = HashMap::new();
    for r in records {
        if r.delivered {
            *out.entry(r.network_id).or_insert(0) += 1;
        }
    }
    out
}

/// Per-data-rate usage distribution over sent packets (Fig. 6d/e,
/// Fig. 13d input): fraction of packets per DR index 0..=5.
pub fn dr_distribution(records: &[PacketRecord]) -> [f64; 6] {
    let mut counts = [0u64; 6];
    for r in records {
        counts[r.dr.index()] += 1;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return [0.0; 6];
    }
    core::array::from_fn(|i| counts[i] as f64 / total as f64)
}

/// "Maximum number of concurrent users": delivered count of a single
/// concurrent burst — the capacity metric of §2.2/§5.1.
pub fn concurrent_capacity(records: &[PacketRecord]) -> usize {
    records.iter().filter(|r| r.delivered).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::channel::Channel;
    use lora_phy::types::DataRate;

    fn rec(id: u64, net: u32, delivered: bool, cause: Option<LossCause>) -> PacketRecord {
        PacketRecord {
            tx_id: id,
            node: id as usize,
            network_id: net,
            channel: Channel::khz125(920_000_000),
            dr: DataRate::DR3,
            start_us: id * 1_000,
            end_us: id * 1_000 + 100_000,
            payload_len: 10,
            delivered,
            receiving_gateways: if delivered { vec![0] } else { vec![] },
            cause,
        }
    }

    #[test]
    fn prr_and_breakdown() {
        let records = vec![
            rec(0, 1, true, None),
            rec(1, 1, false, Some(LossCause::DecoderContentionIntra)),
            rec(2, 1, false, Some(LossCause::DecoderContentionInter)),
            rec(3, 1, false, Some(LossCause::ChannelContentionIntra)),
            rec(4, 1, false, Some(LossCause::Other)),
        ];
        let m = RunMetrics::from_records(&records, None);
        assert_eq!(m.sent, 5);
        assert_eq!(m.delivered, 1);
        assert!((m.prr() - 0.2).abs() < 1e-12);
        assert_eq!(m.losses.decoder(), 2);
        assert_eq!(m.losses.channel(), 1);
        assert_eq!(m.losses.other, 1);
        let f = m.loss_fractions();
        assert!((f.iter().sum::<f64>() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn network_filter() {
        let records = vec![
            rec(0, 1, true, None),
            rec(1, 2, true, None),
            rec(2, 2, false, Some(LossCause::Other)),
        ];
        let m1 = RunMetrics::from_records(&records, Some(1));
        let m2 = RunMetrics::from_records(&records, Some(2));
        assert_eq!(m1.sent, 1);
        assert_eq!(m2.sent, 2);
        assert_eq!(m2.delivered, 1);
    }

    #[test]
    fn throughput_math() {
        let mut records = vec![rec(0, 1, true, None)];
        records[0].start_us = 0;
        records[0].end_us = 1_000_000; // 1 s horizon
        let m = RunMetrics::from_records(&records, None);
        assert!((m.throughput_bps() - 80.0).abs() < 1e-9); // 10 B in 1 s
    }

    #[test]
    fn empty_records_safe() {
        let m = RunMetrics::from_records(&[], None);
        assert_eq!(m.prr(), 0.0);
        assert_eq!(m.throughput_bps(), 0.0);
    }

    #[test]
    fn per_network_delivered() {
        let records = vec![
            rec(0, 1, true, None),
            rec(1, 2, true, None),
            rec(2, 1, true, None),
        ];
        let per = delivered_per_network(&records);
        assert_eq!(per[&1], 2);
        assert_eq!(per[&2], 1);
    }

    #[test]
    fn dr_distribution_sums_to_one() {
        let records = vec![rec(0, 1, true, None), rec(1, 1, true, None)];
        let d = dr_distribution(&records);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d[3], 1.0); // all DR3 in the helper
    }
}
