//! Per-run precomputed context and cross-run scratch arenas for the
//! indexed simulation hot path.
//!
//! [`RunContext`] is rebuilt at the top of every
//! [`crate::world::SimWorld::run_with_faults`] call (node powers and
//! gateway channel configurations legitimately change between runs) and
//! holds everything the event loop would otherwise recompute per event:
//!
//! * flattened per-(node, gateway) RSSI/SNR tables — `topo.rssi_dbm` is
//!   a subtraction, but `snr_db` folds in the noise floor's `log10`,
//!   and the seed loop re-derived both for **every** (lock-on, gateway)
//!   pair and again per verdict interferer;
//! * an interned channel id per transmission plus, per channel, the
//!   **candidate gateway index**: the (ascending) gateways whose
//!   listening set covers the channel. Lock-on visits only candidates;
//!   everything a non-candidate gateway would have done in the seed
//!   loop is a guaranteed `NotDetected`, reconciled in bulk at run end;
//! * a per-ordered-(victim, interferer) channel-pair classification
//!   (full-overlap capture vs partial-overlap leakage, with the
//!   leakage gains precomputed) so verdicts never call `overlap_ratio`
//!   or `leakage_gain_db`;
//! * the thermal noise power in linear and dB form, hoisted out of the
//!   per-verdict SINR computation.
//!
//! [`RunScratch`] owns the context plus every per-run buffer (event
//! timeline, interferer lists, admission spans, on-air buckets, records)
//! so that a warmed world performs no steady-state heap allocation —
//! enforced by the `sim_alloc` counting-allocator test.

use crate::engine::Event;
use crate::topology::Topology;
use crate::world::{PacketRecord, Seen, Transmission, VerdictScratch};
use gateway::radio::Gateway;
use lora_phy::channel::{overlap_ratio, Channel};
use lora_phy::interference::{leakage_gain_db, DETECTION_OVERLAP_THRESHOLD};
use lora_phy::snr::noise_floor_dbm;
use lora_phy::types::{Bandwidth, TxPowerDbm};
use std::collections::HashMap;

/// Spectral relationship of an ordered (victim, interferer) channel
/// pair, precomputed once per run from the interned channel set.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PairClass {
    /// No spectral overlap: the pair never interacts (unreachable from
    /// the verdict loop, which only sees registered interferers, but
    /// kept so the table is total).
    Disjoint,
    /// Overlap at or above [`DETECTION_OVERLAP_THRESHOLD`]: same-SF
    /// capture or cross-SF quasi-orthogonality applies.
    Detect,
    /// Partial overlap below the threshold: the interferer leaks energy
    /// into the victim's passband with the precomputed gain (`None`
    /// when the leak is below the modeled floor), chosen by whether the
    /// two spreading factors differ.
    Leak {
        /// `leakage_gain_db(victim, interferer, orthogonal = false)`.
        gain_same: Option<f64>,
        /// `leakage_gain_db(victim, interferer, orthogonal = true)`.
        gain_orth: Option<f64>,
    },
}

/// Everything the event loop reads but never writes during a run. See
/// the module docs for the full inventory.
#[derive(Debug, Default)]
pub(crate) struct RunContext {
    /// Gateway count the tables were built for (row stride).
    pub(crate) n_gws: usize,
    /// `rssi[node * n_gws + gw]`, dBm, at the node's current Tx power.
    pub(crate) rssi: Vec<f64>,
    /// `snr[node * n_gws + gw]`, dB (RSSI minus the 125 kHz noise floor,
    /// exactly `Topology::snr_db`).
    pub(crate) snr: Vec<f64>,
    /// Channel → interned id. Kept across runs for its capacity only.
    chan_ids: HashMap<Channel, u32>,
    /// Interned channels, by id (order of first appearance in the plan).
    pub(crate) channels: Vec<Channel>,
    /// Per channel id: gateways (ascending) that listen on it.
    pub(crate) cand: Vec<Vec<u32>>,
    /// `is_cand[ch * n_gws + gw]`: membership mirror of `cand`.
    pub(crate) is_cand: Vec<bool>,
    /// Per channel id: channel ids with any spectral overlap (includes
    /// the channel itself). Drives on-air bucket gathering.
    pub(crate) overlapping: Vec<Vec<u32>>,
    /// `pair[victim * n_channels + interferer]` classification.
    pub(crate) pair: Vec<PairClass>,
    /// Transmissions per channel id in the current plan.
    pub(crate) ch_tx_count: Vec<u64>,
    /// Thermal noise power, linear mW relative to dBm.
    pub(crate) noise_lin: f64,
    /// `10 · log10(noise_lin)`: the noise-only SINR denominator. Exact
    /// for interference-free verdicts because `x + 0.0` is bitwise `x`
    /// for the (positive, normal) noise power.
    pub(crate) noise_only_db: f64,
}

impl RunContext {
    /// Number of distinct channels in the current plan.
    pub(crate) fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// Intern every distinct channel in `txs`; fills `ch_of_tx` (one id
    /// per transmission) and the per-channel transmission counts.
    pub(crate) fn intern_channels(&mut self, txs: &[Transmission], ch_of_tx: &mut Vec<u32>) {
        self.chan_ids.clear();
        self.channels.clear();
        ch_of_tx.clear();
        ch_of_tx.reserve(txs.len());
        for t in txs {
            let next = self.channels.len() as u32;
            let id = *self.chan_ids.entry(t.channel).or_insert(next);
            if id == next {
                self.channels.push(t.channel);
            }
            ch_of_tx.push(id);
        }
        self.ch_tx_count.clear();
        self.ch_tx_count.resize(self.channels.len(), 0);
        for &id in ch_of_tx.iter() {
            self.ch_tx_count[id as usize] += 1;
        }
    }

    /// Intern a channel *universe* directly (first-appearance order),
    /// for runs whose transmissions are not all materialized up front
    /// (the sharded / streaming drivers in [`crate::shard`]). Resets
    /// the per-channel transmission counts to zero; the caller tallies
    /// them as plans flow through.
    pub(crate) fn intern_channel_list(&mut self, universe: &[Channel]) {
        self.chan_ids.clear();
        self.channels.clear();
        for &ch in universe {
            let next = self.channels.len() as u32;
            let id = *self.chan_ids.entry(ch).or_insert(next);
            if id == next {
                self.channels.push(ch);
            }
        }
        self.ch_tx_count.clear();
        self.ch_tx_count.resize(self.channels.len(), 0);
    }

    /// Interned id of `ch`, if it is part of the current universe.
    pub(crate) fn channel_id(&self, ch: &Channel) -> Option<u32> {
        self.chan_ids.get(ch).copied()
    }

    /// Rebuild the link tables, candidate index and pair classes for
    /// the current node powers and gateway configurations. Call after
    /// [`Self::intern_channels`].
    pub(crate) fn rebuild(
        &mut self,
        topo: &Topology,
        node_power: &[TxPowerDbm],
        gateways: &[Gateway],
    ) {
        self.rebuild_links(topo, node_power);
        self.rebuild_channels(gateways);
    }

    /// The flat per-(node, gateway) RSSI/SNR tables — the memory-heavy
    /// half of [`Self::rebuild`]. The sharded driver skips this and
    /// builds *compact per-shard* tables instead (`shard_nodes ×
    /// shard_gateways` rather than `nodes × gateways`), which is what
    /// keeps million-node runs cache-resident.
    pub(crate) fn rebuild_links(&mut self, topo: &Topology, node_power: &[TxPowerDbm]) {
        let n_nodes = topo.nodes.len();
        let floor = noise_floor_dbm(Bandwidth::Khz125);
        self.rssi.clear();
        self.snr.clear();
        // Row-wise fill straight from the loss matrix: same arithmetic
        // as `topo.rssi_dbm` / `Topology::snr_db`, minus the per-entry
        // double indexing (the 100k-node table is tens of MB).
        debug_assert_eq!(node_power.len(), n_nodes);
        if let Some(row) = topo.loss_db.first() {
            self.rssi.reserve(n_nodes * row.len());
            self.snr.reserve(n_nodes * row.len());
        }
        for (power, row) in node_power.iter().zip(&topo.loss_db) {
            for &loss in row {
                let rssi = power.0 - loss;
                self.rssi.push(rssi);
                self.snr.push(rssi - floor);
            }
        }
    }

    /// The channel-indexed half of [`Self::rebuild`]: candidate gateway
    /// lists, spectral pair classes, overlap adjacency and the hoisted
    /// noise terms. Cheap (`O(channels × (gateways + channels))`) and
    /// independent of node count, so the sharded driver can run it
    /// without touching the global link tables.
    pub(crate) fn rebuild_channels(&mut self, gateways: &[Gateway]) {
        let n_gws = gateways.len();
        self.n_gws = n_gws;
        let floor = noise_floor_dbm(Bandwidth::Khz125);
        self.noise_lin = 10f64.powf(floor / 10.0);
        self.noise_only_db = 10.0 * self.noise_lin.log10();

        let n_ch = self.channels.len();
        if self.cand.len() < n_ch {
            self.cand.resize_with(n_ch, Vec::new);
        }
        self.is_cand.clear();
        self.is_cand.resize(n_ch * n_gws, false);
        for (ci, ch) in self.channels.iter().enumerate() {
            let list = &mut self.cand[ci];
            list.clear();
            for (gi, g) in gateways.iter().enumerate() {
                if g.listens_to(ch) {
                    list.push(gi as u32);
                    self.is_cand[ci * n_gws + gi] = true;
                }
            }
        }

        if self.overlapping.len() < n_ch {
            self.overlapping.resize_with(n_ch, Vec::new);
        }
        self.pair.clear();
        self.pair.resize(n_ch * n_ch, PairClass::Disjoint);
        for v in 0..n_ch {
            self.overlapping[v].clear();
            for o in 0..n_ch {
                let rho = overlap_ratio(&self.channels[v], &self.channels[o]);
                if rho <= 0.0 {
                    continue;
                }
                self.overlapping[v].push(o as u32);
                self.pair[v * n_ch + o] = if rho >= DETECTION_OVERLAP_THRESHOLD {
                    PairClass::Detect
                } else {
                    PairClass::Leak {
                        gain_same: leakage_gain_db(&self.channels[v], &self.channels[o], false),
                        gain_orth: leakage_gain_db(&self.channels[v], &self.channels[o], true),
                    }
                };
            }
        }
    }
}

/// World-owned scratch reused across runs: the context plus every
/// per-run arena, so a warmed world's steady state is allocation-free.
#[derive(Debug, Default)]
pub(crate) struct RunScratch {
    /// The per-run precomputed context.
    pub(crate) ctx: RunContext,
    /// Materialized transmissions for the current plan.
    pub(crate) txs: Vec<Transmission>,
    /// Interned channel id per transmission.
    pub(crate) ch_of_tx: Vec<u32>,
    /// The run's event schedule, sorted into exact pop order by
    /// [`crate::engine::sort_schedule`] (every event is known before
    /// the loop starts, so a sorted array replaces the heap; keeps its
    /// capacity across runs).
    pub(crate) timeline: Vec<(u64, Event)>,
    /// Per transmission: ids of spectrally-overlapping transmissions
    /// whose airtime intersects it, in registration (TxStart) order.
    pub(crate) interferers: Vec<Vec<u64>>,
    /// Flat admission arena: each transmission's (gateway, Seen)
    /// entries are contiguous (lock-on writes them in one burst).
    pub(crate) seen_buf: Vec<(u32, Seen)>,
    /// Per transmission: `(start, end)` span into `seen_buf`.
    pub(crate) seen_span: Vec<(u32, u32)>,
    /// Per transmission: the finished record, harvested at run end.
    pub(crate) records: Vec<Option<PacketRecord>>,
    /// Per channel id: transmissions currently on air.
    pub(crate) buckets: Vec<Vec<u64>>,
    /// Per transmission: its index within its channel bucket (kept
    /// current by swap-remove fixups).
    pub(crate) pos_in_bucket: Vec<u32>,
    /// Per transmission: monotonic TxStart sequence number, used to
    /// restore chronological order after buckets are permuted by
    /// swap-remove.
    pub(crate) start_seq: Vec<u32>,
    /// Gather buffer for one TxStart's bucket scan.
    pub(crate) gathered: Vec<u64>,
    /// Per gateway: not-detected tally accumulated during the run
    /// (candidate visits failing the SNR gate at an up gateway).
    pub(crate) undetected: Vec<u64>,
    /// Per gateway: `faults.gateway_ever_down`, sampled once per run.
    pub(crate) ever_down: Vec<bool>,
    /// Per gateway: `faults.decoder_lockups_possible`, sampled once per
    /// run.
    pub(crate) ever_locked: Vec<bool>,
    /// Receiving-gateway buffer for one TxEnd.
    pub(crate) receiving: Vec<usize>,
    /// Per-seen-gateway buffers for the batched verdict computation.
    pub(crate) vscratch: VerdictScratch,
}
