//! The pre-indexing simulation loop, kept verbatim as a correctness
//! and performance reference.
//!
//! [`run_with_faults_reference`] is a line-for-line port of the
//! `SimWorld::run_with_faults` implementation as it stood before the
//! indexed hot path landed: every lock-on visits **every** gateway and
//! recomputes the per-(node, gateway) RSSI/SNR from the topology,
//! `TxStart` scans the full on-air list, `TxEnd` removes by `retain`,
//! and every run allocates its interferer/admission bookkeeping afresh.
//! It even keeps the dead `snr_v` computation the optimized path
//! removed, because the point is to measure and differentially test
//! against the true prior code, not a cleaned-up strawman.
//!
//! Two consumers rely on it:
//!
//! * the workspace `sim_equivalence` proptest, which asserts the
//!   indexed core in [`crate::world::SimWorld::run_with_faults`] is
//!   record-for-record (and event-for-event) identical to this loop on
//!   random topologies, traffic and fault schedules;
//! * `benches/simworld.rs` in the `bench` crate, which times the two
//!   against each other and writes `BENCH_sim.json`.
//!
//! Like the live path, a reference run consumes one run epoch (trace
//! ids are minted identically) and streams to the world's attached
//! observability sink, so the two paths are interchangeable mid-stream.

#![allow(clippy::all)]

use crate::engine::{Event, EventQueue};
use crate::topology::Topology;
use crate::traffic::TxPlan;
use crate::world::{LossCause, PacketRecord, SimWorld, Transmission};
use gateway::radio::{LockOnOutcome, PacketAtGateway};
use lora_phy::airtime::PacketParams;
use lora_phy::channel::overlap_ratio;
use lora_phy::interference::{
    capture_outcome, leakage_gain_db, CaptureOutcome, CROSS_SF_REJECTION_DB,
    DETECTION_OVERLAP_THRESHOLD,
};
use lora_phy::snr::{decodable, noise_floor_dbm};
use lora_phy::types::{Bandwidth, TxPowerDbm};
use obs::{NullSink, ObsEvent, ObsSink};

/// How one gateway saw one transmission during admission (the
/// reference's private copy of the world's bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seen {
    Admitted,
    Dropped { foreign_held: bool, lockup: bool },
    DownAtLockOn,
}

/// PHY verdict for one (transmission, gateway) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Verdict {
    Ok,
    Collision { with_network: u32 },
    Interference,
}

/// Execute `plans` on `world` with the pre-indexing event loop. Replays
/// the seed revision's algorithm exactly; see the module docs.
pub fn run_with_faults_reference(
    world: &mut SimWorld,
    plans: &[TxPlan],
    faults: &dyn crate::faults::InfraFaults,
) -> Vec<PacketRecord> {
    let epoch = world.run_epoch;
    world.run_epoch += 1;
    let txs: Vec<Transmission> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let airtime = PacketParams::lorawan_uplink(
                p.dr.spreading_factor(),
                Bandwidth::Khz125,
                p.payload_len,
            )
            .airtime();
            Transmission {
                id: i as u64,
                trace: obs::packet_trace(epoch, i as u64),
                node: p.node,
                network_id: world.node_network[p.node],
                channel: p.channel,
                dr: p.dr,
                start_us: p.start_us,
                lock_on_us: airtime.lock_on_at(p.start_us),
                end_us: airtime.end_at(p.start_us),
                payload_len: p.payload_len,
            }
        })
        .collect();

    let mut queue = EventQueue::new();
    for t in &txs {
        queue.push(t.start_us, Event::TxStart { tx_id: t.id });
        queue.push(t.lock_on_us, Event::LockOn { tx_id: t.id });
        queue.push(t.end_us, Event::TxEnd { tx_id: t.id });
    }

    let mut taken = world.obs.take();
    let mut null = NullSink;
    let sink: &mut dyn ObsSink = match taken.as_deref_mut() {
        Some(s) => s,
        None => &mut null,
    };

    if sink.enabled() {
        for g in &world.gateways {
            sink.record(&ObsEvent::GatewayInfo {
                gw: g.id as u32,
                network: g.network_id,
                capacity: g.pool().capacity() as u32,
            });
        }
    }

    let mut interferers: Vec<Vec<u64>> = vec![Vec::new(); txs.len()];
    let mut on_air: Vec<u64> = Vec::new();
    let mut seen: Vec<Vec<(usize, Seen)>> = vec![Vec::new(); txs.len()];
    let mut records: Vec<Option<PacketRecord>> = vec![None; txs.len()];

    while let Some((_, ev)) = queue.pop() {
        match ev {
            Event::TxStart { tx_id } => {
                let t = &txs[tx_id as usize];
                if sink.enabled() {
                    sink.record(&ObsEvent::TxStart {
                        t_us: t.start_us,
                        trace: t.trace,
                        tx: t.id,
                        node: t.node as u64,
                        network: t.network_id,
                    });
                }
                for &o_id in &on_air {
                    let o = &txs[o_id as usize];
                    if o.node != t.node && overlap_ratio(&t.channel, &o.channel) > 0.0 {
                        interferers[tx_id as usize].push(o_id);
                        interferers[o_id as usize].push(tx_id);
                    }
                }
                on_air.push(tx_id);
            }
            Event::LockOn { tx_id } => {
                let t = &txs[tx_id as usize];
                let now = t.lock_on_us;
                if sink.enabled() {
                    sink.record(&ObsEvent::PacketLockOn {
                        t_us: now,
                        trace: t.trace,
                        tx: t.id,
                        node: t.node as u64,
                        network: t.network_id,
                    });
                }
                for (g_idx, g) in world.gateways.iter_mut().enumerate() {
                    let pkt = packet_at(&world.topo, &world.node_power, t, g_idx);
                    if faults.gateway_down(g_idx, now) {
                        if g.would_detect(&pkt) {
                            seen[tx_id as usize].push((g_idx, Seen::DownAtLockOn));
                        }
                        continue;
                    }
                    g.set_locked_decoders(faults.locked_decoders(g_idx, now));
                    match g.on_lock_on_obs(pkt, sink) {
                        LockOnOutcome::Admitted => {
                            seen[tx_id as usize].push((g_idx, Seen::Admitted));
                        }
                        LockOnOutcome::DroppedNoDecoder => {
                            let foreign = g.foreign_held_decoders() > 0;
                            let lockup =
                                g.pool().locked() > 0 && g.decoders_in_use() < g.pool().capacity();
                            seen[tx_id as usize].push((
                                g_idx,
                                Seen::Dropped {
                                    foreign_held: foreign,
                                    lockup,
                                },
                            ));
                        }
                        LockOnOutcome::NotDetected => {}
                    }
                }
            }
            Event::TxEnd { tx_id } => {
                on_air.retain(|&id| id != tx_id);
                let record = finish_tx(
                    world,
                    &txs,
                    tx_id,
                    &seen[tx_id as usize],
                    &interferers,
                    faults,
                    sink,
                );
                records[tx_id as usize] = Some(record);
            }
        }
    }

    sink.flush();
    world.obs = taken;

    records
        .into_iter()
        .map(|r| r.expect("every tx finished"))
        .collect()
}

fn finish_tx(
    world: &mut SimWorld,
    txs: &[Transmission],
    tx_id: u64,
    seen: &[(usize, Seen)],
    interferers: &[Vec<u64>],
    faults: &dyn crate::faults::InfraFaults,
    sink: &mut dyn ObsSink,
) -> PacketRecord {
    let t = &txs[tx_id as usize];
    let mut receiving = Vec::new();
    let mut decoder_drop: Option<bool> = None;
    let mut collision_with: Option<u32> = None;
    let mut own_detected = false;
    let mut infra_loss = false;

    for &(g_idx, how) in seen {
        let own = world.gateways[g_idx].network_id == t.network_id;
        let verdict = verdict(world, txs, t, g_idx, &interferers[tx_id as usize]);
        if how == Seen::Admitted {
            let crashed_mid_rx = faults.gateway_down_during(g_idx, t.lock_on_us, t.end_us);
            let phy_ok = verdict == Verdict::Ok && !crashed_mid_rx;
            if let Some(gateway::radio::ReceptionOutcome::Received) =
                world.gateways[g_idx].on_tx_end_obs(tx_id, phy_ok, sink)
            {
                receiving.push(g_idx);
            }
            if own && crashed_mid_rx && verdict == Verdict::Ok {
                infra_loss = true;
            }
        }
        if own {
            own_detected = true;
            match (how, verdict) {
                (Seen::DownAtLockOn, Verdict::Ok) => {
                    infra_loss = true;
                }
                (
                    Seen::Dropped {
                        foreign_held,
                        lockup,
                    },
                    Verdict::Ok,
                ) => {
                    if lockup {
                        infra_loss = true;
                    } else {
                        let entry = decoder_drop.get_or_insert(false);
                        *entry = *entry || foreign_held;
                    }
                }
                (_, Verdict::Collision { with_network }) => {
                    collision_with.get_or_insert(with_network);
                }
                _ => {}
            }
        }
    }

    let delivered = !receiving.is_empty();
    let cause = if delivered {
        None
    } else if infra_loss {
        Some(LossCause::Infrastructure)
    } else if let Some(foreign) = decoder_drop {
        Some(if foreign {
            LossCause::DecoderContentionInter
        } else {
            LossCause::DecoderContentionIntra
        })
    } else if let Some(net) = collision_with {
        Some(if net == t.network_id {
            LossCause::ChannelContentionIntra
        } else {
            LossCause::ChannelContentionInter
        })
    } else {
        let _ = own_detected;
        Some(LossCause::Other)
    };

    if sink.enabled() {
        sink.record(&ObsEvent::PacketOutcome {
            t_us: t.end_us,
            trace: t.trace,
            tx: tx_id,
            delivered,
            cause: cause.map(LossCause::obs_kind),
        });
    }

    PacketRecord {
        tx_id,
        node: t.node,
        network_id: t.network_id,
        channel: t.channel,
        dr: t.dr,
        start_us: t.start_us,
        end_us: t.end_us,
        payload_len: t.payload_len,
        delivered,
        receiving_gateways: receiving,
        cause,
    }
}

fn verdict(
    world: &SimWorld,
    txs: &[Transmission],
    t: &Transmission,
    g_idx: usize,
    intf: &[u64],
) -> Verdict {
    let rssi_v = world.topo.rssi_dbm(t.node, g_idx, world.node_power[t.node]);
    // The seed revision computed (and discarded) the interference-free
    // SNR on every verdict; the replica keeps the wasted work.
    let snr_v = world.topo.snr_db(t.node, g_idx, world.node_power[t.node]);
    let sf_v = t.dr.spreading_factor();
    let mut intf_lin = 0.0f64;
    let mut strongest_collider: Option<(f64, u32)> = None;
    let mut interference_kill = false;

    for &o_id in intf {
        let o = &txs[o_id as usize];
        let rho = overlap_ratio(&t.channel, &o.channel);
        if rho <= 0.0 {
            continue;
        }
        let rssi_o = world.topo.rssi_dbm(o.node, g_idx, world.node_power[o.node]);
        if rho >= DETECTION_OVERLAP_THRESHOLD {
            if o.dr.spreading_factor() == sf_v {
                if world.cic {
                    continue;
                }
                let (first, second) = if t.lock_on_us <= o.lock_on_us {
                    (rssi_v, rssi_o)
                } else {
                    (rssi_o, rssi_v)
                };
                let survives = match capture_outcome(first, second) {
                    CaptureOutcome::FirstSurvives => t.lock_on_us <= o.lock_on_us,
                    CaptureOutcome::SecondSurvives => t.lock_on_us > o.lock_on_us,
                    CaptureOutcome::BothLost => false,
                };
                if !survives {
                    match strongest_collider {
                        Some((r, _)) if r >= rssi_o => {}
                        _ => strongest_collider = Some((rssi_o, o.network_id)),
                    }
                }
            } else {
                if rssi_v - rssi_o < CROSS_SF_REJECTION_DB {
                    interference_kill = true;
                }
            }
        } else {
            let orth = o.dr.spreading_factor() != sf_v;
            if let Some(gain) = leakage_gain_db(&t.channel, &o.channel, orth) {
                intf_lin += 10f64.powf((rssi_o + gain) / 10.0);
            }
        }
    }

    if let Some((_, net)) = strongest_collider {
        return Verdict::Collision { with_network: net };
    }
    let noise_lin = 10f64.powf(noise_floor_dbm(Bandwidth::Khz125) / 10.0);
    let sinr = rssi_v - 10.0 * (noise_lin + intf_lin).log10();
    let _ = snr_v;
    if interference_kill || !decodable(sinr, sf_v, 0.0) {
        return Verdict::Interference;
    }
    Verdict::Ok
}

fn packet_at(
    topo: &Topology,
    node_power: &[TxPowerDbm],
    t: &Transmission,
    g_idx: usize,
) -> PacketAtGateway {
    PacketAtGateway {
        tx_id: t.id,
        trace: t.trace,
        network_id: t.network_id,
        channel: t.channel,
        sf: t.dr.spreading_factor(),
        rssi_dbm: topo.rssi_dbm(t.node, g_idx, node_power[t.node]),
        snr_db: topo.snr_db(t.node, g_idx, node_power[t.node]),
        lock_on_us: t.lock_on_us,
        end_us: t.end_us,
    }
}
