//! Sharded, chunk-fed execution of one simulation run — the
//! million-node path.
//!
//! The monolithic loop in [`crate::world`] materializes every
//! transmission, a 3n-event timeline and an `nodes × gateways` link
//! table before processing the first event; at 10⁶ nodes the table
//! alone stops fitting anywhere near a cache and per-core throughput
//! collapses. This module runs *the same arithmetic* over independent
//! **shards** of the spectrum:
//!
//! * **Partition.** Channels are grouped into connected components
//!   under the union of two relations: spectral overlap (any
//!   `overlap_ratio > 0`, the relation that feeds interference
//!   gathering) and "some gateway listens to both" (the relation that
//!   feeds decoder contention). Transmissions in different components
//!   can never interact — not through capture, leakage, or a shared
//!   decoder pool — so any grouping of components into shards yields
//!   results identical to the monolithic run. Each gateway's candidate
//!   channels all land in one component, so a gateway belongs to
//!   exactly one shard.
//! * **Chunked feeding.** A [`ChunkSource`] emits plans in bounded
//!   chunks together with a *frontier*: a lower bound on every future
//!   start time. The driver (main thread) routes each chunk's plans to
//!   shards by channel and assigns global transmission ids in emission
//!   order; each shard heaps its events and drains strictly below the
//!   frontier ([`crate::engine::EventQueue::pop_before`]), so the full
//!   timeline never materializes.
//! * **Slot recycling.** Per-transmission state lives in reference-
//!   counted slots, freed once the transmission has ended *and* no
//!   live transmission still holds it as an interferer. Peak memory is
//!   bounded by the on-air set plus one chunk, not by the run length.
//! * **Compact link tables.** Each shard stores RSSI rows only for the
//!   nodes it has seen, with a stride of *its own* gateway count —
//!   at 100k nodes × 64 gateways the global table is ~50 MB while a
//!   per-shard table is well under 1 MB, which is the entire per-core
//!   speedup at scale (SNR is derived as `rssi - noise_floor`, bitwise
//!   identical to the monolithic table's entry).
//! * **Deterministic join.** Shards run under [`std::thread::scope`]
//!   (one thread per shard); results are joined in shard-id order and
//!   observability events are buffered per shard keyed by the global
//!   event order `(t_us, kind priority, tx id)` and k-way merged, so
//!   the output — records, gateway stats, obs byte stream — is
//!   invariant under shard count and thread scheduling. The workspace
//!   `sim_equivalence` proptest pins `run_sharded` byte-identical to
//!   [`SimWorld::run_with_faults`].
//!
//! Faults must be [`Sync`] here ([`InfraFaults`] is pure/read-only by
//! contract; `chaos::FaultSchedule` is plain data and qualifies).

use crate::accum::{to_fixed, AccumState, LeakSnap, SlotView, TxKey};
use crate::engine::TimeWheel;
use crate::faults::{InfraFaults, NoFaults};
use crate::metrics::RunSummary;
use crate::runctx::{PairClass, RunContext};
use crate::topology::Topology;
use crate::traffic::{ChunkSource, SliceChunks, TxPlan};
use crate::world::{
    LossCause, PacketRecord, Seen, SimRunStats, SimWorld, Transmission, Verdict, VerdictScratch,
};
use gateway::radio::{Gateway, LockOnOutcome, PacketAtGateway, ReceptionOutcome};
use lora_phy::airtime::PacketParams;
use lora_phy::interference::{capture_outcome, CaptureOutcome, CROSS_SF_REJECTION_DB};
use lora_phy::snr::{decodable, noise_floor_dbm};
use lora_phy::types::{Bandwidth, TxPowerDbm};
use obs::{ObsEvent, ObsSink};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::time::Instant;

/// Same-timestamp event priorities, mirroring
/// [`crate::engine::Event`]'s ordering (TxEnd < TxStart < LockOn).
/// Used as the middle component of the obs merge key.
const PRIO_TX_END: u8 = 0;
const PRIO_TX_START: u8 = 1;
const PRIO_LOCK_ON: u8 = 2;

/// Tuning knobs for sharded / streamed runs.
#[derive(Debug, Clone)]
pub struct ShardOpts {
    /// Upper bound on shards (threads). `0` = auto: one per available
    /// core. The effective count is also capped by the number of
    /// independent channel components, so asking for more shards than
    /// the spectrum supports is harmless.
    pub max_shards: usize,
    /// Transmissions per producer chunk when a materialized plan list
    /// is fed through the streaming machinery
    /// ([`SimWorld::run_sharded`]).
    pub chunk_txs: usize,
    /// Use the incremental interference accumulators instead of the
    /// per-TxEnd interferer scan. Same physics, O(Δ) per event instead
    /// of O(on-air × gateways) per transmission — but the leaked-
    /// interference sum is accumulated in order-canonical fixed point
    /// rather than the scan's left-to-right f64 order, so results are
    /// gated by [`RunSummary::statistically_equivalent`] against the
    /// scan path instead of asserted bitwise identical (capture and
    /// cross-SF decisions remain bit-exact). See `docs/SCALING.md`.
    pub accum: bool,
}

impl Default for ShardOpts {
    fn default() -> ShardOpts {
        ShardOpts {
            max_shards: 0,
            chunk_txs: 65_536,
            accum: false,
        }
    }
}

impl ShardOpts {
    /// Defaults overridden by the environment: `ALPHAWAN_SIM_SHARDS`
    /// sets `max_shards` (0 or unset = auto); `ALPHAWAN_SIM_ACCUM=1`
    /// turns on the incremental accumulator path.
    pub fn from_env() -> ShardOpts {
        let mut opts = ShardOpts::default();
        if let Ok(v) = std::env::var("ALPHAWAN_SIM_SHARDS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                opts.max_shards = n;
            }
        }
        if let Ok(v) = std::env::var("ALPHAWAN_SIM_ACCUM") {
            let v = v.trim();
            opts.accum = v == "1" || v.eq_ignore_ascii_case("true");
        }
        opts
    }

    /// The shard-count ceiling before the component cap.
    fn shard_ceiling(&self) -> usize {
        if self.max_shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.max_shards
        }
    }
}

/// Per-shard counters from a sharded run, exposed via
/// [`SimWorld::last_shard_stats`]. Like [`SimRunStats`], these are
/// never streamed by the world itself (`wall_us` is host wall-clock);
/// callers emit [`obs::ObsEvent::SimShardStats`] via
/// [`Self::to_event`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardRunStats {
    /// Shard index within the run.
    pub shard: u32,
    /// Transmissions routed to this shard.
    pub txs: u64,
    /// Events this shard processed (3 × its txs).
    pub events: u64,
    /// Gateways owned by this shard.
    pub gateways: u32,
    /// (transmission, gateway) admission pairs visited at lock-on.
    pub candidate_visits: u64,
    /// Peak simultaneously-live transmission slots — the streaming
    /// loop's working-set bound (on-air + pending chunk + interference
    /// holds), independent of total run length.
    pub peak_live: u64,
    /// Accumulator-mode incremental contributions added at TxStart;
    /// 0 for scan-mode runs.
    #[serde(default)]
    pub accum_updates: u64,
    /// Accumulator-mode contributions exactly undone at TxEnd.
    #[serde(default)]
    pub accum_undos: u64,
    /// Stale lazy-max index entries evicted during accumulator-mode
    /// verdict queries.
    #[serde(default)]
    pub accum_evictions: u64,
    /// Time-wheel level cascades in this shard's event scheduler.
    #[serde(default)]
    pub wheel_cascades: u64,
    /// Host wall-clock duration of the shard's event loop, µs.
    pub wall_us: u64,
}

impl ShardRunStats {
    /// The observability event mirroring these counters.
    pub fn to_event(&self, trace: u64) -> ObsEvent {
        ObsEvent::SimShardStats {
            trace,
            shard: self.shard,
            txs: self.txs,
            events: self.events,
            candidate_visits: self.candidate_visits,
            peak_live: self.peak_live,
            accum_updates: self.accum_updates,
            accum_undos: self.accum_undos,
            accum_evictions: self.accum_evictions,
            wheel_cascades: self.wheel_cascades,
            wall_us: self.wall_us,
        }
    }
}

/// Result of a streamed (aggregate-only) run: no per-packet records —
/// a 10⁷-transmission run cannot afford them — but everything the
/// statistical-equivalence gate and the benchmarks need.
#[derive(Debug, Clone)]
pub struct StreamedRun {
    /// Aggregate per-network outcome summary.
    pub summary: RunSummary,
    /// Whole-run counters (also stored as
    /// [`SimWorld::last_run_stats`]).
    pub stats: SimRunStats,
    /// Per-shard counters (also stored as
    /// [`SimWorld::last_shard_stats`]).
    pub shard_stats: Vec<ShardRunStats>,
}

/// One routed plan entry: `(global tx id, interned channel id, plan)`.
type RoutedPlan = (u64, u32, TxPlan);

/// One producer→shard message: the shard's slice of a chunk plus the
/// chunk's frontier (a lower bound on all future start times).
type ChunkMsg = (Vec<RoutedPlan>, u64);

/// How channels and gateways are split into independent shards.
#[derive(Debug)]
struct Partition {
    /// Shards actually used (≤ min(ceiling, components); 0 iff the
    /// channel universe is empty).
    n_shards: usize,
    /// Per interned channel id: owning shard.
    shard_of_channel: Vec<u32>,
    /// Per shard: global gateway indexes it owns, ascending.
    shard_gws: Vec<Vec<u32>>,
}

/// Union-find `find` with path halving.
fn uf_find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

/// Union keeping the smaller root (deterministic representative).
fn uf_union(parent: &mut [u32], a: u32, b: u32) {
    let ra = uf_find(parent, a);
    let rb = uf_find(parent, b);
    if ra != rb {
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        parent[hi as usize] = lo;
    }
}

/// Group the interned channels into connected components (spectral
/// overlap ∪ shared listening gateway) and pack components onto at
/// most `ceiling` shards with a deterministic greedy balance (heaviest
/// component first, ties by smallest member channel, onto the least
/// loaded shard, ties by lowest shard id).
fn partition(ctx: &RunContext, n_gws: usize, ceiling: usize) -> Partition {
    let n_ch = ctx.n_channels();
    let mut parent: Vec<u32> = (0..n_ch as u32).collect();
    for v in 0..n_ch {
        for &o in &ctx.overlapping[v] {
            uf_union(&mut parent, v as u32, o);
        }
    }
    for g in 0..n_gws {
        let mut first: Option<u32> = None;
        for ci in 0..n_ch {
            if ctx.is_cand[ci * n_gws + g] {
                match first {
                    Some(f) => uf_union(&mut parent, f, ci as u32),
                    None => first = Some(ci as u32),
                }
            }
        }
    }

    // Components numbered by first-seen (i.e. smallest) member channel.
    let mut comp_of_root: HashMap<u32, u32> = HashMap::new();
    let mut comp_of_channel = vec![0u32; n_ch];
    let mut comp_min_channel: Vec<u32> = Vec::new();
    let mut comp_weight: Vec<u64> = Vec::new();
    for (ci, slot) in comp_of_channel.iter_mut().enumerate() {
        let root = uf_find(&mut parent, ci as u32);
        let next = comp_min_channel.len() as u32;
        let comp = *comp_of_root.entry(root).or_insert(next);
        if comp == next {
            comp_min_channel.push(ci as u32);
            comp_weight.push(0);
        }
        *slot = comp;
        // Weight ∝ expected admission work: the channel plus its
        // candidate gateways.
        comp_weight[comp as usize] += 1 + ctx.cand[ci].len() as u64;
    }

    let n_components = comp_min_channel.len();
    let n_shards = ceiling.max(1).min(n_components);
    let mut order: Vec<usize> = (0..n_components).collect();
    order.sort_by(|&a, &b| {
        comp_weight[b]
            .cmp(&comp_weight[a])
            .then(comp_min_channel[a].cmp(&comp_min_channel[b]))
    });
    let mut load = vec![0u64; n_shards];
    let mut shard_of_comp = vec![0u32; n_components];
    for &c in &order {
        let mut s = 0;
        for k in 1..n_shards {
            if load[k] < load[s] {
                s = k;
            }
        }
        shard_of_comp[c] = s as u32;
        load[s] += comp_weight[c];
    }

    let shard_of_channel: Vec<u32> = comp_of_channel
        .iter()
        .map(|&c| shard_of_comp[c as usize])
        .collect();
    let mut shard_gws: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
    for g in 0..n_gws {
        // A gateway's candidate channels are all in one component (the
        // shared-gateway unions above), so its first is representative.
        if let Some(ci) = (0..n_ch).find(|&ci| ctx.is_cand[ci * n_gws + g]) {
            shard_gws[shard_of_channel[ci] as usize].push(g as u32);
        }
    }

    Partition {
        n_shards,
        shard_of_channel,
        shard_gws,
    }
}

/// An [`ObsSink`] that buffers events together with the global event
/// order key `(t_us, kind priority, tx id)` of the simulation event
/// being processed when they were recorded. Within a shard, keys are
/// emitted in nondecreasing order (events are processed in key order)
/// and a given key occurs in exactly one shard (ids are globally
/// unique), so a k-way merge by key reconstructs the exact byte stream
/// the monolithic run would have produced.
struct KeyedSink {
    on: bool,
    key: (u64, u8, u64),
    buf: Vec<((u64, u8, u64), ObsEvent)>,
}

impl ObsSink for KeyedSink {
    fn enabled(&self) -> bool {
        self.on
    }

    fn record(&mut self, ev: &ObsEvent) {
        self.buf.push((self.key, *ev));
    }
}

/// Live per-transmission state. Slots are recycled: freed once the
/// transmission has ended and its reference count (live transmissions
/// holding it as an interferer) reaches zero; the inner `Vec`s keep
/// their capacity across reuses.
struct Slot {
    tx: Transmission,
    /// Interned (global) channel id.
    ch: u32,
    /// Row into the shard's compact link table.
    row: u32,
    /// Index within the channel's on-air bucket (scan mode only).
    pos_in_bucket: u32,
    /// Live transmissions whose interferer list names this slot (scan
    /// mode only; accumulator mode has no holds).
    rc: u32,
    /// TxEnd processed.
    ended: bool,
    /// Overlapping-airtime transmissions, as slot ids, in registration
    /// order (scan mode only). Only read at this transmission's TxEnd,
    /// at which point every listed slot is still alive (it holds an
    /// `rc` on us and we on it).
    interferers: Vec<u32>,
    /// (local gateway id, admission outcome), in candidate order.
    seen: Vec<(u32, Seen)>,
    /// Accumulator mode: ended-sum snapshot per candidate gateway,
    /// taken at TxStart, aligned with `cand_local[ch]`.
    snap: Vec<LeakSnap>,
}

/// One shard's event loop: the [`crate::world`] hot path ported onto
/// chunk feeding, slot recycling and compact per-shard link tables.
struct ShardMachine<'e> {
    // Shared, read-only environment.
    topo: &'e Topology,
    node_power: &'e [TxPowerDbm],
    node_network: &'e [u32],
    ctx: &'e RunContext,
    faults: &'e (dyn InfraFaults + Sync),
    /// Per *global* gateway: can this fault schedule ever crash it.
    ever_down: &'e [bool],
    /// Per *global* gateway: can decoders ever lock up.
    ever_locked: &'e [bool],
    /// Global gateway ids with `ever_down` set (usually empty).
    ever_down_list: Vec<u32>,
    cic: bool,
    epoch: u64,
    collect_records: bool,

    // Shard identity.
    shard: u32,
    /// Local gateway id → global gateway index (ascending).
    gw_global: Vec<u32>,
    /// Per interned channel id: candidate *local* gateway ids
    /// (ascending in global id; empty for channels of other shards).
    cand_local: Vec<Vec<u32>>,
    /// Row stride of `link` (= `gw_global.len()`).
    n_lg: usize,
    /// 125 kHz noise floor, dBm (SNR = RSSI − floor).
    floor: f64,

    // Owned state.
    gateways: Vec<Gateway>,
    /// Hierarchical time-wheel event scheduler: O(1) amortized
    /// insert/pop under the nondecreasing-frontier drain discipline
    /// (replaces the former per-shard `BinaryHeap`). Entries are the
    /// global event key plus the slot id payload.
    q: TimeWheel,
    slots: Vec<Slot>,
    free: Vec<u32>,

    // SoA mirrors of the slot hot fields, indexed by slot id, so the
    // verdict scan and the accumulator updates stream parallel arrays
    // instead of chasing `Transmission` structs.
    /// Interned channel id.
    sa_ch: Vec<u32>,
    /// Compact link-table row.
    sa_row: Vec<u32>,
    /// Sending node.
    sa_node: Vec<u32>,
    /// Sender's network id.
    sa_network: Vec<u32>,
    /// Spreading-factor index (SF7 = 0 … SF12 = 5).
    sa_sf: Vec<u8>,
    /// Lock-on instant, µs.
    sa_lock_on: Vec<u64>,
    /// Shard-local TxStart sequence number (restores chronological
    /// order after buckets are permuted by swap-remove; also the
    /// accumulator max-index tie-break).
    sa_start_seq: Vec<u64>,
    /// Recycling generation (bumped on free) — validates lazy-max
    /// index entries.
    sa_gen: Vec<u32>,
    /// Event sequence of the slot's TxStart (accumulator-mode overlap
    /// arbitration).
    sa_start_evseq: Vec<u64>,
    /// Event sequence of the slot's TxEnd; `u64::MAX` while on air.
    sa_end_evseq: Vec<u64>,

    // Accumulator mode (None = scan mode).
    accum: Option<AccumState>,
    /// Per node with live transmissions: their slot ids (the exact
    /// same-node exclusion; almost always a single entry). Maintained
    /// only when `has_leak` — the map exists solely to feed the
    /// own-node leak corrections.
    node_live: HashMap<u32, Vec<u32>>,
    /// Whether any channel pair in the universe is `PairClass::Leak`.
    /// When false, accumulator mode skips the own-correction
    /// bookkeeping entirely (max queries exclude own entries by node
    /// id, not through `node_live`).
    has_leak: bool,
    /// Live slots in TxStart order: `(start evseq, slot, gen)`. The
    /// front is the oldest live start — the reclamation horizon.
    live_q: VecDeque<(u64, u32, u32)>,
    /// Ended slots in TxEnd order: `(end evseq, slot)`, freed once no
    /// live transmission can have overlapped them.
    pending_free: VecDeque<(u64, u32)>,

    /// Per interned channel id: slots currently on air (scan mode
    /// only; the accumulator replaces bucket gathering).
    buckets: Vec<Vec<u32>>,
    /// Per global node: its row in `link` (`u32::MAX` = unseen).
    node_row: Vec<u32>,
    /// Next row to assign.
    next_row: u32,
    /// Compact RSSI table, `link[row * n_lg + local_gw]`, dBm.
    link: Vec<f64>,
    gathered: Vec<u32>,
    /// Per local gateway: in-loop not-detected tally (candidate SNR
    /// misses at an up gateway).
    undetected: Vec<u64>,
    /// Per *global* gateway: non-candidate not-detected tally for
    /// ever-down gateways (must be counted per transmission because it
    /// depends on the crash window; empty when no gateway can crash).
    extra_undetected: Vec<u64>,
    receiving: Vec<usize>,
    vs: VerdictScratch,
    sink: KeyedSink,
    /// Live-run heartbeat writer (`ALPHAWAN_HEARTBEAT`), if attached.
    hb: Option<&'e obs::HeartbeatWriter>,
    records: Vec<(u64, PacketRecord)>,
    summary: RunSummary,
    seq: u64,
    txs_n: u64,
    events: u64,
    candidate_visits: u64,
    peak_live: usize,
}

/// Everything a shard thread sends back to the driver.
struct ShardOutput {
    gw_global: Vec<u32>,
    gateways: Vec<Gateway>,
    undetected: Vec<u64>,
    extra_undetected: Vec<u64>,
    records: Vec<(u64, PacketRecord)>,
    summary: RunSummary,
    obs: Vec<((u64, u8, u64), ObsEvent)>,
    stats: ShardRunStats,
}

impl<'e> ShardMachine<'e> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        topo: &'e Topology,
        node_power: &'e [TxPowerDbm],
        node_network: &'e [u32],
        ctx: &'e RunContext,
        faults: &'e (dyn InfraFaults + Sync),
        ever_down: &'e [bool],
        ever_locked: &'e [bool],
        cic: bool,
        epoch: u64,
        collect_records: bool,
        obs_on: bool,
        hb: Option<&'e obs::HeartbeatWriter>,
        shard: u32,
        gw_global: Vec<u32>,
        cand_local: Vec<Vec<u32>>,
        gateways: Vec<Gateway>,
        accum: bool,
        chunk_hint: usize,
    ) -> ShardMachine<'e> {
        let n_lg = gw_global.len();
        let any_down = ever_down.iter().any(|&d| d);
        ShardMachine {
            topo,
            node_power,
            node_network,
            ctx,
            faults,
            ever_down,
            ever_locked,
            ever_down_list: ever_down
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d)
                .map(|(g, _)| g as u32)
                .collect(),
            cic,
            epoch,
            collect_records,
            shard,
            gw_global,
            cand_local,
            n_lg,
            floor: noise_floor_dbm(Bandwidth::Khz125),
            gateways,
            // Pre-sized from the chunk hint: one chunk contributes at
            // most 3 events per transmission to the ready run.
            q: TimeWheel::with_capacity(3 * chunk_hint),
            slots: Vec::new(),
            free: Vec::new(),
            sa_ch: Vec::new(),
            sa_row: Vec::new(),
            sa_node: Vec::new(),
            sa_network: Vec::new(),
            sa_sf: Vec::new(),
            sa_lock_on: Vec::new(),
            sa_start_seq: Vec::new(),
            sa_gen: Vec::new(),
            sa_start_evseq: Vec::new(),
            sa_end_evseq: Vec::new(),
            accum: if accum {
                Some(AccumState::new(ctx, n_lg))
            } else {
                None
            },
            node_live: HashMap::new(),
            has_leak: ctx.pair.iter().any(|p| matches!(p, PairClass::Leak { .. })),
            live_q: VecDeque::new(),
            pending_free: VecDeque::new(),
            buckets: vec![Vec::new(); ctx.n_channels()],
            node_row: vec![u32::MAX; topo.nodes.len()],
            next_row: 0,
            link: Vec::new(),
            gathered: Vec::new(),
            undetected: vec![0; n_lg],
            extra_undetected: vec![0; if any_down { ever_down.len() } else { 0 }],
            receiving: Vec::new(),
            vs: VerdictScratch::default(),
            sink: KeyedSink {
                on: obs_on,
                key: (0, 0, 0),
                buf: Vec::new(),
            },
            hb,
            records: Vec::new(),
            summary: RunSummary::default(),
            seq: 0,
            txs_n: 0,
            events: 0,
            candidate_visits: 0,
            peak_live: 0,
        }
    }

    /// Materialize one chunk of routed plans into slots and events.
    fn ingest(&mut self, chunk: &[(u64, u32, TxPlan)]) {
        for &(id, ch, p) in chunk {
            self.txs_n += 1;
            let airtime = PacketParams::lorawan_uplink(
                p.dr.spreading_factor(),
                Bandwidth::Khz125,
                p.payload_len,
            )
            .airtime();
            let tx = Transmission {
                id,
                trace: obs::packet_trace(self.epoch, id),
                node: p.node,
                network_id: self.node_network[p.node],
                channel: p.channel,
                dr: p.dr,
                start_us: p.start_us,
                lock_on_us: airtime.lock_on_at(p.start_us),
                end_us: airtime.end_at(p.start_us),
                payload_len: p.payload_len,
            };

            // Assign the node a compact link row on first sight.
            let mut row = 0u32;
            if self.n_lg > 0 {
                row = self.node_row[tx.node];
                if row == u32::MAX {
                    row = self.next_row;
                    self.next_row += 1;
                    self.node_row[tx.node] = row;
                    let power = self.node_power[tx.node].0;
                    let loss_row = &self.topo.loss_db[tx.node];
                    for &g in &self.gw_global {
                        self.link.push(power - loss_row[g as usize]);
                    }
                }
            }

            // Non-candidate not-detected tallies for crashable
            // gateways (the never-down bulk is reconciled by the
            // driver from per-channel counts).
            for &g in &self.ever_down_list {
                let g = g as usize;
                if !self.ctx.is_cand[ch as usize * self.ever_down.len() + g]
                    && !self.faults.gateway_down(g, tx.lock_on_us)
                {
                    self.extra_undetected[g] += 1;
                }
            }

            let sf_i = (tx.dr.spreading_factor().value() - 7) as u8;
            let slot = match self.free.pop() {
                Some(s) => {
                    let sl = &mut self.slots[s as usize];
                    sl.tx = tx;
                    sl.ch = ch;
                    sl.row = row;
                    sl.pos_in_bucket = 0;
                    sl.rc = 0;
                    sl.ended = false;
                    debug_assert!(sl.interferers.is_empty() && sl.seen.is_empty());
                    let si = s as usize;
                    self.sa_ch[si] = ch;
                    self.sa_row[si] = row;
                    self.sa_node[si] = tx.node as u32;
                    self.sa_network[si] = tx.network_id;
                    self.sa_sf[si] = sf_i;
                    self.sa_lock_on[si] = tx.lock_on_us;
                    self.sa_start_seq[si] = 0;
                    self.sa_start_evseq[si] = 0;
                    self.sa_end_evseq[si] = u64::MAX;
                    s
                }
                None => {
                    self.slots.push(Slot {
                        tx,
                        ch,
                        row,
                        pos_in_bucket: 0,
                        rc: 0,
                        ended: false,
                        interferers: Vec::new(),
                        seen: Vec::new(),
                        snap: Vec::new(),
                    });
                    self.sa_ch.push(ch);
                    self.sa_row.push(row);
                    self.sa_node.push(tx.node as u32);
                    self.sa_network.push(tx.network_id);
                    self.sa_sf.push(sf_i);
                    self.sa_lock_on.push(tx.lock_on_us);
                    self.sa_start_seq.push(0);
                    self.sa_gen.push(0);
                    self.sa_start_evseq.push(0);
                    self.sa_end_evseq.push(u64::MAX);
                    (self.slots.len() - 1) as u32
                }
            };
            self.peak_live = self.peak_live.max(self.slots.len() - self.free.len());

            self.q.push((tx.start_us, PRIO_TX_START, id, slot));
            self.q.push((tx.lock_on_us, PRIO_LOCK_ON, id, slot));
            self.q.push((tx.end_us, PRIO_TX_END, id, slot));
        }
    }

    /// Process every queued event scheduled strictly before `frontier`
    /// (matching [`crate::engine::EventQueue::pop_before`]: every plan
    /// of a later chunk starts at or after the frontier, so events at
    /// the frontier itself may still gain same-key-ordered company).
    fn drain(&mut self, frontier_us: u64) {
        while let Some((_, prio, _, slot)) = self.q.pop_before(frontier_us) {
            self.events += 1;
            match prio {
                PRIO_TX_START => self.on_tx_start(slot),
                PRIO_LOCK_ON => self.on_lock_on(slot),
                _ => self.on_tx_end(slot),
            }
        }
    }

    fn free_slot(&mut self, s: u32) {
        let sl = &mut self.slots[s as usize];
        sl.interferers.clear();
        sl.seen.clear();
        // Invalidate any lazy-max index entries naming this slot.
        self.sa_gen[s as usize] = self.sa_gen[s as usize].wrapping_add(1);
        self.free.push(s);
    }

    fn on_tx_start(&mut self, s: u32) {
        let si = s as usize;
        let t = self.slots[si].tx;
        self.sink.key = (t.start_us, PRIO_TX_START, t.id);
        if self.sink.enabled() {
            self.sink.record(&ObsEvent::TxStart {
                t_us: t.start_us,
                trace: t.trace,
                tx: t.id,
                node: t.node as u64,
                network: t.network_id,
            });
        }
        let c = self.slots[si].ch as usize;
        self.sa_start_seq[si] = self.seq;
        self.seq += 1;
        if self.accum.is_some() {
            self.on_tx_start_accum(s, c);
            return;
        }
        {
            let sa_node = &self.sa_node;
            let sa_start_seq = &self.sa_start_seq;
            let buckets = &self.buckets;
            let gathered = &mut self.gathered;
            gathered.clear();
            for &oc in &self.ctx.overlapping[c] {
                for &o in &buckets[oc as usize] {
                    if sa_node[o as usize] != t.node as u32 {
                        gathered.push(o);
                    }
                }
            }
            // Buckets are permuted by swap-remove; restore
            // chronological (TxStart) order before registering —
            // interferer-list order is part of the determinism
            // contract with the monolithic loop.
            gathered.sort_unstable_by_key(|&o| sa_start_seq[o as usize]);
        }
        let gathered = std::mem::take(&mut self.gathered);
        for &o in &gathered {
            // Symmetric registration and refcounts: each side names
            // the other, each side keeps the other alive.
            self.slots[si].interferers.push(o);
            self.slots[si].rc += 1;
            self.slots[o as usize].interferers.push(s);
            self.slots[o as usize].rc += 1;
        }
        self.gathered = gathered;
        self.slots[si].pos_in_bucket = self.buckets[c].len() as u32;
        self.buckets[c].push(s);
    }

    /// Accumulator-mode TxStart: contribute this transmission's
    /// leaked-RSSI row once (O(affected channels × candidate
    /// gateways), independent of the on-air population), snapshot the
    /// ended-sums for its own future verdict, and record the exact
    /// same-node corrections. No bucket, no interferer list, no holds.
    fn on_tx_start_accum(&mut self, s: u32, c: usize) {
        let si = s as usize;
        let evseq = self.events;
        self.sa_start_evseq[si] = evseq;
        let node = self.sa_node[si];
        let sf_i = self.sa_sf[si] as usize;
        let row_base = self.sa_row[si] as usize * self.n_lg;
        let key = TxKey {
            slot: s,
            gen: self.sa_gen[si],
            node,
            network: self.sa_network[si],
            start_seq: self.sa_start_seq[si],
        };
        let ac = self.accum.as_mut().expect("accum mode");
        ac.register(
            c,
            sf_i,
            &self.link[row_base..row_base + self.n_lg],
            &self.cand_local,
            key,
        );
        let mut snap = std::mem::take(&mut self.slots[si].snap);
        ac.snapshot(c, sf_i, &self.cand_local[c], &mut snap);
        self.slots[si].snap = snap;

        // Exact same-node exclusion: the scan never arbitrates a node
        // against its own transmissions, so for each of this node's
        // live transmissions record the reciprocal leak contributions
        // to subtract at verdict time (bit-identical to the sums the
        // global registration added). Max-index queries exclude own
        // entries by node id directly — so in a leak-free channel
        // universe none of this bookkeeping is needed.
        if !self.has_leak {
            self.live_q.push_back((evseq, s, self.sa_gen[si]));
            return;
        }
        let own: Vec<u32> = self.node_live.get(&node).cloned().unwrap_or_default();
        let n_ch = self.ctx.n_channels();
        for &o in &own {
            let oi = o as usize;
            let co = self.sa_ch[oi] as usize;
            let sf_o = self.sa_sf[oi] as usize;
            if let PairClass::Leak {
                gain_same,
                gain_orth,
            } = self.ctx.pair[c * n_ch + co]
            {
                let gain = if sf_o != sf_i { gain_orth } else { gain_same };
                if let Some(g) = gain {
                    let orow = self.sa_row[oi] as usize * self.n_lg;
                    for (k, &lg) in self.cand_local[c].iter().enumerate() {
                        let fx = to_fixed(10f64.powf((self.link[orow + lg as usize] + g) / 10.0));
                        self.slots[si].snap[k].add_own(fx);
                    }
                }
            }
            if let PairClass::Leak {
                gain_same,
                gain_orth,
            } = self.ctx.pair[co * n_ch + c]
            {
                let gain = if sf_i != sf_o { gain_orth } else { gain_same };
                if let Some(g) = gain {
                    for (k, &lg) in self.cand_local[co].iter().enumerate() {
                        let fx =
                            to_fixed(10f64.powf((self.link[row_base + lg as usize] + g) / 10.0));
                        self.slots[oi].snap[k].add_own(fx);
                    }
                }
            }
        }
        self.node_live.entry(node).or_default().push(s);
        self.live_q.push_back((evseq, s, self.sa_gen[si]));
    }

    fn on_lock_on(&mut self, s: u32) {
        let si = s as usize;
        let t = self.slots[si].tx;
        let now = t.lock_on_us;
        self.sink.key = (now, PRIO_LOCK_ON, t.id);
        if self.sink.enabled() {
            self.sink.record(&ObsEvent::PacketLockOn {
                t_us: now,
                trace: t.trace,
                tx: t.id,
                node: t.node as u64,
                network: t.network_id,
            });
        }
        let c = self.slots[si].ch as usize;
        let row_base = self.slots[si].row as usize * self.n_lg;
        let sf = t.dr.spreading_factor();
        let mut seen = std::mem::take(&mut self.slots[si].seen);
        for k in 0..self.cand_local[c].len() {
            let lg = self.cand_local[c][k] as usize;
            self.candidate_visits += 1;
            let g_idx = self.gw_global[lg] as usize;
            let rssi = self.link[row_base + lg];
            let snr = rssi - self.floor;
            if !decodable(snr, sf, 0.0) {
                // Below the detection floor: an up gateway counts a
                // non-detection; a crashed gateway counts nothing.
                if !self.ever_down[g_idx] || !self.faults.gateway_down(g_idx, now) {
                    self.undetected[lg] += 1;
                }
                continue;
            }
            if self.ever_down[g_idx] && self.faults.gateway_down(g_idx, now) {
                seen.push((lg as u32, Seen::DownAtLockOn));
                continue;
            }
            if self.ever_locked[g_idx] {
                let locked = self.faults.locked_decoders(g_idx, now);
                self.gateways[lg].set_locked_decoders(locked);
            }
            let pkt = PacketAtGateway {
                tx_id: t.id,
                trace: t.trace,
                network_id: t.network_id,
                channel: t.channel,
                sf,
                rssi_dbm: rssi,
                snr_db: snr,
                lock_on_us: t.lock_on_us,
                end_us: t.end_us,
            };
            match self.gateways[lg].admit_detected_tracked_obs(&pkt, &mut self.sink) {
                LockOnOutcome::Admitted => {
                    seen.push((lg as u32, Seen::Admitted));
                }
                LockOnOutcome::DroppedNoDecoder => {
                    let g = &self.gateways[lg];
                    let foreign = g.foreign_held_decoders() > 0;
                    let lockup = g.pool().locked() > 0 && g.decoders_in_use() < g.pool().capacity();
                    seen.push((
                        lg as u32,
                        Seen::Dropped {
                            foreign_held: foreign,
                            lockup,
                        },
                    ));
                }
                LockOnOutcome::NotDetected => {
                    unreachable!("admission precondition verified above")
                }
            }
        }
        self.slots[si].seen = seen;
    }

    fn on_tx_end(&mut self, s: u32) {
        if self.accum.is_some() {
            self.on_tx_end_accum(s);
            return;
        }
        let si = s as usize;
        let t = self.slots[si].tx;
        let c = self.slots[si].ch as usize;
        let pos = self.slots[si].pos_in_bucket as usize;
        let moved = {
            let b = &mut self.buckets[c];
            b.swap_remove(pos);
            b.get(pos).copied()
        };
        if let Some(m) = moved {
            self.slots[m as usize].pos_in_bucket = pos as u32;
        }

        self.sink.key = (t.end_us, PRIO_TX_END, t.id);
        self.batch_verdicts(s);
        self.finish_tx(s);

        // Release the interference holds; free anything that was only
        // waiting on us, then ourselves if nobody holds us.
        let interferers = std::mem::take(&mut self.slots[si].interferers);
        for &o in &interferers {
            let oi = o as usize;
            self.slots[oi].rc -= 1;
            if self.slots[oi].rc == 0 && self.slots[oi].ended {
                self.free_slot(o);
            }
        }
        self.slots[si].interferers = interferers;
        self.slots[si].ended = true;
        if self.slots[si].rc == 0 {
            self.free_slot(s);
        }
    }

    /// Accumulator-mode TxEnd: resolve verdicts from the accumulators,
    /// undo this transmission's contributions exactly, and recycle
    /// slots whose entries no live transmission can still query.
    fn on_tx_end_accum(&mut self, s: u32) {
        let si = s as usize;
        let t = self.slots[si].tx;
        let evseq = self.events;
        self.sa_end_evseq[si] = evseq;
        self.sink.key = (t.end_us, PRIO_TX_END, t.id);
        self.batch_verdicts_accum(s);
        self.finish_tx(s);

        let c = self.slots[si].ch as usize;
        let sf_i = self.sa_sf[si] as usize;
        let row_base = self.sa_row[si] as usize * self.n_lg;
        let ac = self.accum.as_mut().expect("accum mode");
        ac.retire(
            c,
            sf_i,
            &self.link[row_base..row_base + self.n_lg],
            &self.cand_local,
        );

        if self.has_leak {
            let node = self.sa_node[si];
            if let Some(live) = self.node_live.get_mut(&node) {
                if let Some(p) = live.iter().position(|&x| x == s) {
                    live.swap_remove(p);
                }
                if live.is_empty() {
                    self.node_live.remove(&node);
                }
            }
        }

        // Reclamation: a slot's max-index entries are visible only to
        // victims that started before it ended, so once the oldest
        // live start is past a slot's end, the slot can be recycled.
        // Both queues are naturally ordered (starts and ends are
        // processed in event order).
        self.slots[si].ended = true;
        while let Some(&(_, sl, g)) = self.live_q.front() {
            let sli = sl as usize;
            if self.sa_gen[sli] != g || self.sa_end_evseq[sli] != u64::MAX {
                self.live_q.pop_front();
            } else {
                break;
            }
        }
        self.pending_free.push_back((evseq, s));
        let min_live_start = self
            .live_q
            .front()
            .map(|&(se, _, _)| se)
            .unwrap_or(u64::MAX);
        while let Some(&(end_evseq, sl)) = self.pending_free.front() {
            if end_evseq < min_live_start {
                self.pending_free.pop_front();
                self.free_slot(sl);
            } else {
                break;
            }
        }
    }

    /// Port of the monolithic `finish_tx`: decoder release, delivery
    /// classification, record/summary emission. The caller resolves
    /// PHY verdicts into `self.vs.verdicts` first ([`Self::batch_verdicts`]
    /// or [`Self::batch_verdicts_accum`]).
    fn finish_tx(&mut self, s: u32) {
        let si = s as usize;
        let t = self.slots[si].tx;
        let seen = std::mem::take(&mut self.slots[si].seen);
        let row_base = self.sa_row[si] as usize * self.n_lg;
        let sf = t.dr.spreading_factor();

        self.receiving.clear();
        let mut decoder_drop: Option<bool> = None;
        let mut collision_with: Option<u32> = None;
        let mut own_detected = false;
        let mut infra_loss = false;

        for (k, &(lg, how)) in seen.iter().enumerate() {
            let g_idx = self.gw_global[lg as usize] as usize;
            let own = self.gateways[lg as usize].network_id == t.network_id;
            let verdict = self.vs.verdicts[k];
            if how == Seen::Admitted {
                let crashed_mid_rx = self.ever_down[g_idx]
                    && self
                        .faults
                        .gateway_down_during(g_idx, t.lock_on_us, t.end_us);
                let phy_ok = verdict == Verdict::Ok && !crashed_mid_rx;
                let rssi = self.link[row_base + lg as usize];
                let pkt = PacketAtGateway {
                    tx_id: t.id,
                    trace: t.trace,
                    network_id: t.network_id,
                    channel: t.channel,
                    sf,
                    rssi_dbm: rssi,
                    snr_db: rssi - self.floor,
                    lock_on_us: t.lock_on_us,
                    end_us: t.end_us,
                };
                if let ReceptionOutcome::Received =
                    self.gateways[lg as usize].on_tx_end_tracked_obs(&pkt, phy_ok, &mut self.sink)
                {
                    self.receiving.push(g_idx);
                }
                if own && crashed_mid_rx && verdict == Verdict::Ok {
                    infra_loss = true;
                }
            }
            if own {
                own_detected = true;
                match (how, verdict) {
                    (Seen::DownAtLockOn, Verdict::Ok) => {
                        infra_loss = true;
                    }
                    (
                        Seen::Dropped {
                            foreign_held,
                            lockup,
                        },
                        Verdict::Ok,
                    ) => {
                        if lockup {
                            infra_loss = true;
                        } else {
                            let entry = decoder_drop.get_or_insert(false);
                            *entry = *entry || foreign_held;
                        }
                    }
                    (_, Verdict::Collision { with_network }) => {
                        collision_with.get_or_insert(with_network);
                    }
                    _ => {}
                }
            }
        }
        self.slots[si].seen = seen;

        let delivered = !self.receiving.is_empty();
        let cause = if delivered {
            None
        } else if infra_loss {
            Some(LossCause::Infrastructure)
        } else if let Some(foreign) = decoder_drop {
            Some(if foreign {
                LossCause::DecoderContentionInter
            } else {
                LossCause::DecoderContentionIntra
            })
        } else if let Some(net) = collision_with {
            Some(if net == t.network_id {
                LossCause::ChannelContentionIntra
            } else {
                LossCause::ChannelContentionInter
            })
        } else {
            let _ = own_detected;
            Some(LossCause::Other)
        };

        if self.sink.enabled() {
            self.sink.record(&ObsEvent::PacketOutcome {
                t_us: t.end_us,
                trace: t.trace,
                tx: t.id,
                delivered,
                cause: cause.map(LossCause::obs_kind),
            });
        }

        self.summary.note(
            t.network_id,
            t.start_us,
            t.end_us,
            t.payload_len,
            delivered,
            cause,
        );
        if self.collect_records {
            self.records.push((
                t.id,
                PacketRecord {
                    tx_id: t.id,
                    node: t.node,
                    network_id: t.network_id,
                    channel: t.channel,
                    dr: t.dr,
                    start_us: t.start_us,
                    end_us: t.end_us,
                    payload_len: t.payload_len,
                    delivered,
                    receiving_gateways: self.receiving.clone(),
                    cause,
                },
            ));
        }
    }

    /// Port of the monolithic `batch_verdicts` onto slot ids and the
    /// compact link table. For any fixed gateway the interferers are
    /// processed in registration order, so every surviving
    /// floating-point operation matches the monolithic loop bit for
    /// bit.
    fn batch_verdicts(&mut self, s: u32) {
        let si = s as usize;
        let link = &self.link;
        let ctx = self.ctx;
        let vs = &mut self.vs;
        let n_lg = self.n_lg;
        let n_ch = ctx.n_channels();

        let v = &self.slots[si];
        let sf_v = v.tx.dr.spreading_factor();
        let sfv_i = self.sa_sf[si];
        let cv = self.sa_ch[si] as usize;
        let vrow = self.sa_row[si] as usize * n_lg;
        let v_lock_on = self.sa_lock_on[si];
        let seen = &v.seen;
        vs.prepare(seen.len());

        for &o_slot in &v.interferers {
            let oi = o_slot as usize;
            let co = self.sa_ch[oi] as usize;
            match ctx.pair[cv * n_ch + co] {
                PairClass::Disjoint => {}
                PairClass::Detect => {
                    let same_sf = self.sa_sf[oi] == sfv_i;
                    if same_sf && self.cic {
                        // CIC resolves the collision; both survive.
                        continue;
                    }
                    let orow = self.sa_row[oi] as usize * n_lg;
                    let t_first = v_lock_on <= self.sa_lock_on[oi];
                    for (gi, &(lg, _)) in seen.iter().enumerate() {
                        let lg = lg as usize;
                        let rssi_o = link[orow + lg];
                        if same_sf {
                            // Same settings: the capture effect decides.
                            let rssi_v = link[vrow + lg];
                            let (first, second) = if t_first {
                                (rssi_v, rssi_o)
                            } else {
                                (rssi_o, rssi_v)
                            };
                            let survives = match capture_outcome(first, second) {
                                CaptureOutcome::FirstSurvives => t_first,
                                CaptureOutcome::SecondSurvives => !t_first,
                                CaptureOutcome::BothLost => false,
                            };
                            if !survives {
                                vs.note_collider(gi, rssi_o, self.sa_network[oi]);
                            }
                        } else {
                            // Cross-SF quasi-orthogonality.
                            if link[vrow + lg] - rssi_o < CROSS_SF_REJECTION_DB {
                                vs.set_kill(gi);
                            }
                        }
                    }
                }
                PairClass::Leak {
                    gain_same,
                    gain_orth,
                } => {
                    let gain = if self.sa_sf[oi] != sfv_i {
                        gain_orth
                    } else {
                        gain_same
                    };
                    if let Some(gain) = gain {
                        let orow = self.sa_row[oi] as usize * n_lg;
                        for (gi, &(lg, _)) in seen.iter().enumerate() {
                            let rssi_o = link[orow + lg as usize];
                            vs.add_intf(gi, 10f64.powf((rssi_o + gain) / 10.0));
                        }
                    }
                }
            }
        }

        for (gi, &(lg, _)) in seen.iter().enumerate() {
            let (intf_lin, strongest, kill) = vs.state(gi);
            vs.verdicts.push(if let Some((_, net)) = strongest {
                Verdict::Collision { with_network: net }
            } else {
                let rssi_v = link[vrow + lg as usize];
                let sinr = if intf_lin == 0.0 {
                    rssi_v - ctx.noise_only_db
                } else {
                    rssi_v - 10.0 * (ctx.noise_lin + intf_lin).log10()
                };
                if kill || !decodable(sinr, sf_v, 0.0) {
                    Verdict::Interference
                } else {
                    Verdict::Ok
                }
            });
        }
    }

    /// Accumulator-mode verdicts: each (victim, gateway) pair resolves
    /// in O(1) queries against the shard's accumulators — strongest
    /// same-SF collider (capture, bit-exact with the scan), strongest
    /// cross-SF interferer (kill threshold, bit-exact), and the
    /// order-canonical fixed-point leak sum (scan-equivalent up to f64
    /// summation order; see the module docs of [`crate::accum`]).
    fn batch_verdicts_accum(&mut self, s: u32) {
        let si = s as usize;
        let mut ac = self.accum.take().expect("accum mode");
        let link = &self.link;
        let ctx = self.ctx;
        let n_lg = self.n_lg;
        let sf_v = self.slots[si].tx.dr.spreading_factor();
        let sfv_i = self.sa_sf[si] as usize;
        let cv = self.sa_ch[si] as usize;
        let vrow = self.sa_row[si] as usize * n_lg;
        let node = self.sa_node[si];
        let v_start = self.sa_start_evseq[si];
        let view = SlotView {
            gen: &self.sa_gen,
            end_evseq: &self.sa_end_evseq,
        };
        let cand = &self.cand_local[cv];
        let seen = &self.slots[si].seen;
        let snap = &self.slots[si].snap;
        let vs = &mut self.vs;
        vs.prepare(seen.len());

        // `seen` holds the admitted subsequence of the candidate list;
        // walk both with one cursor to pair each seen gateway with its
        // snapshot (aligned with `cand`).
        let mut ci = 0usize;
        for &(lg, _) in seen.iter() {
            while cand[ci] != lg {
                ci += 1;
            }
            let sn = &snap[ci];
            ci += 1;
            let lg = lg as usize;
            let rssi_v = link[vrow + lg];

            let collision = if self.cic {
                // CIC resolves same-SF collisions; both survive.
                None
            } else {
                match ac.strongest_same_sf(cv, sfv_i, lg, node, v_start, &view) {
                    Some((rssi_o, net)) => {
                        // The scan's survival test reduces to
                        // `rssi_v − rssi_o ≥ capture threshold`
                        // whichever transmission locked on first, and
                        // it is monotone in `rssi_o`: surviving the
                        // strongest collider means surviving them all.
                        let survives = matches!(
                            capture_outcome(rssi_v, rssi_o),
                            CaptureOutcome::FirstSurvives
                        );
                        if survives {
                            None
                        } else {
                            Some(net)
                        }
                    }
                    None => None,
                }
            };

            vs.verdicts.push(if let Some(net) = collision {
                Verdict::Collision { with_network: net }
            } else {
                let intf_lin = ac.leak_lin(cv, sfv_i, lg, sn);
                let sinr = if intf_lin == 0.0 {
                    rssi_v - ctx.noise_only_db
                } else {
                    rssi_v - 10.0 * (ctx.noise_lin + intf_lin).log10()
                };
                let kill = match ac.strongest_cross_sf(cv, sfv_i, lg, node, v_start, &view) {
                    Some(rssi_o) => rssi_v - rssi_o < CROSS_SF_REJECTION_DB,
                    None => false,
                };
                if kill || !decodable(sinr, sf_v, 0.0) {
                    Verdict::Interference
                } else {
                    Verdict::Ok
                }
            });
        }
        self.accum = Some(ac);
    }

    /// Run the shard to completion over its chunk stream and hand the
    /// results back.
    fn run(mut self, rx: mpsc::Receiver<ChunkMsg>) -> ShardOutput {
        let wall = Instant::now();
        let mut last_frontier = 0u64;
        for (chunk, frontier) in rx.iter() {
            {
                let _sp = obs::span::enter(obs::span::SpanId::ShardIngest);
                self.ingest(&chunk);
            }
            {
                let _sp = obs::span::enter(obs::span::SpanId::ShardDrain);
                self.drain(frontier);
            }
            if frontier != u64::MAX {
                last_frontier = frontier;
            }
            if let Some(hb) = self.hb {
                hb.beat(
                    self.shard,
                    self.txs_n,
                    self.events,
                    last_frontier,
                    self.q.len() as u64,
                    (self.slots.len() - self.free.len()) as u64,
                );
            }
        }
        // The last frontier is u64::MAX by the ChunkSource contract;
        // this is a belt-and-braces drain for sources that end early.
        self.drain(u64::MAX);
        debug_assert!(self.q.is_empty());
        debug_assert_eq!(self.slots.len(), self.free.len());
        if let Some(hb) = self.hb {
            hb.flush();
        }

        let (accum_updates, accum_undos, accum_evictions) = self
            .accum
            .as_ref()
            .map(|a| (a.stats.updates, a.stats.undos, a.stats.evictions))
            .unwrap_or((0, 0, 0));
        let stats = ShardRunStats {
            shard: self.shard,
            txs: self.txs_n,
            events: self.events,
            gateways: self.n_lg as u32,
            candidate_visits: self.candidate_visits,
            peak_live: self.peak_live as u64,
            accum_updates,
            accum_undos,
            accum_evictions,
            wheel_cascades: self.q.cascades(),
            wall_us: wall.elapsed().as_micros() as u64,
        };
        ShardOutput {
            gw_global: self.gw_global,
            gateways: self.gateways,
            undetected: self.undetected,
            extra_undetected: self.extra_undetected,
            records: self.records,
            summary: self.summary,
            obs: self.sink.buf,
            stats,
        }
    }
}

/// Everything a sharded run produces; trimmed by the public wrappers.
struct ShardedOutcome {
    records: Option<Vec<PacketRecord>>,
    summary: RunSummary,
    stats: SimRunStats,
    shard_stats: Vec<ShardRunStats>,
}

/// The sharded driver: partition, spawn one thread per shard, pump
/// chunks from `source`, join deterministically.
fn run_chunked(
    world: &mut SimWorld,
    source: &mut dyn ChunkSource,
    faults: &(dyn InfraFaults + Sync),
    opts: &ShardOpts,
    collect_records: bool,
) -> ShardedOutcome {
    let wall = Instant::now();
    let epoch = world.run_epoch;
    world.run_epoch += 1;
    let n_gws = world.gateways.len();

    // Channel universe and channel-indexed context only — the big
    // global link tables are exactly what this path avoids.
    let mut ctx = RunContext::default();
    ctx.intern_channel_list(source.channels());
    ctx.rebuild_channels(&world.gateways);
    let n_ch = ctx.n_channels();

    let part = partition(&ctx, n_gws, opts.shard_ceiling());
    let n_shards = part.n_shards;

    let ever_down: Vec<bool> = (0..n_gws).map(|g| faults.gateway_ever_down(g)).collect();
    let ever_locked: Vec<bool> = (0..n_gws)
        .map(|g| faults.decoder_lockups_possible(g))
        .collect();
    // The admission path only refreshes lock state for gateways the
    // schedule can actually lock; clear everyone else's up front so
    // state left by a previous faulted run cannot leak in.
    for (g, &locked) in ever_locked.iter().enumerate() {
        if !locked {
            world.gateways[g].set_locked_decoders(0);
        }
    }

    // Take the sink for the run; gateway identities go out first, in
    // global order, exactly like the monolithic run.
    let mut taken = world.obs.take();
    let obs_on = taken.as_deref().map(|s| s.enabled()).unwrap_or(false);
    if obs_on {
        let sink = taken.as_deref_mut().expect("sink present when enabled");
        for g in &world.gateways {
            sink.record(&ObsEvent::GatewayInfo {
                gw: g.id as u32,
                network: g.network_id,
                capacity: g.pool().capacity() as u32,
            });
        }
    }

    // Live per-shard heartbeats: `ALPHAWAN_HEARTBEAT=<path>` appends
    // JSONL heartbeat frames (rate-limited per shard by
    // `ALPHAWAN_HEARTBEAT_MS`, default 500) viewable mid-run with
    // `obsctl tail`. The stream is wall-clock telemetry in a separate
    // file; the deterministic event stream is untouched.
    let hb: Option<obs::HeartbeatWriter> = std::env::var("ALPHAWAN_HEARTBEAT")
        .ok()
        .filter(|p| !p.is_empty())
        .and_then(|p| {
            let interval_ms = std::env::var("ALPHAWAN_HEARTBEAT_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(500);
            obs::HeartbeatWriter::create(std::path::Path::new(&p), interval_ms).ok()
        });

    // Move the gateways out to their shards; unassigned ones stay
    // parked.
    let mut parked: Vec<Option<Gateway>> = world.gateways.drain(..).map(Some).collect();

    let topo = &world.topo;
    let node_power = &world.node_power[..];
    let node_network = &world.node_network[..];
    let cic = world.cic;

    let mut ch_tx_count = vec![0u64; n_ch];
    let mut total_txs: u64 = 0;

    let mut outputs: Vec<ShardOutput> = if n_shards == 0 {
        // Empty channel universe: the source must be empty too.
        let mut buf = Vec::new();
        while source.next_chunk(&mut buf).is_some() {
            assert!(
                buf.is_empty(),
                "plan emitted outside the declared channel universe"
            );
        }
        Vec::new()
    } else {
        let ctx_ref = &ctx;
        let part_ref = &part;
        let ever_down_ref = &ever_down[..];
        let ever_locked_ref = &ever_locked[..];
        let hb_ref = hb.as_ref();
        let accum_on = opts.accum;
        let chunk_hint = opts.chunk_txs;
        std::thread::scope(|scope| {
            let mut senders = Vec::with_capacity(n_shards);
            let mut handles = Vec::with_capacity(n_shards);
            for shard in 0..n_shards {
                let (tx, rx) = mpsc::sync_channel::<ChunkMsg>(2);
                let gw_global = part_ref.shard_gws[shard].clone();
                let gateways: Vec<Gateway> = gw_global
                    .iter()
                    .map(|&g| parked[g as usize].take().expect("gateway assigned once"))
                    .collect();
                // Candidate lists in local gateway ids (global order is
                // ascending in both, so candidate order is preserved).
                let mut cand_local: Vec<Vec<u32>> = vec![Vec::new(); n_ch];
                for (ci, cl) in cand_local.iter_mut().enumerate() {
                    if part_ref.shard_of_channel[ci] == shard as u32 {
                        *cl = ctx_ref.cand[ci]
                            .iter()
                            .map(|&g| {
                                gw_global
                                    .binary_search(&g)
                                    .expect("candidate gateway owned by this shard")
                                    as u32
                            })
                            .collect();
                    }
                }
                handles.push(scope.spawn(move || {
                    ShardMachine::new(
                        topo,
                        node_power,
                        node_network,
                        ctx_ref,
                        faults,
                        ever_down_ref,
                        ever_locked_ref,
                        cic,
                        epoch,
                        collect_records,
                        obs_on,
                        hb_ref,
                        shard as u32,
                        gw_global,
                        cand_local,
                        gateways,
                        accum_on,
                        chunk_hint,
                    )
                    .run(rx)
                }));
                senders.push(tx);
            }

            // Producer: route plans to shards by channel, assigning
            // global ids in emission order; every shard gets every
            // frontier so it can drain eagerly.
            let mut buf: Vec<TxPlan> = Vec::new();
            let mut per_shard: Vec<Vec<RoutedPlan>> = (0..n_shards).map(|_| Vec::new()).collect();
            while let Some(frontier) = source.next_chunk(&mut buf) {
                for p in &buf {
                    let cid = ctx_ref
                        .channel_id(&p.channel)
                        .expect("plan channel outside the declared universe")
                        as usize;
                    ch_tx_count[cid] += 1;
                    let shard = part_ref.shard_of_channel[cid] as usize;
                    per_shard[shard].push((total_txs, cid as u32, *p));
                    total_txs += 1;
                }
                for (shard, sender) in senders.iter().enumerate() {
                    sender
                        .send((std::mem::take(&mut per_shard[shard]), frontier))
                        .expect("shard thread alive");
                }
            }
            drop(senders);
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        })
    };

    // Restore gateways to global order (unassigned ones never moved).
    for out in &mut outputs {
        for (lg, g) in out.gateways.drain(..).enumerate() {
            let g_idx = out.gw_global[lg] as usize;
            debug_assert!(parked[g_idx].is_none());
            parked[g_idx] = Some(g);
        }
    }
    world.gateways = parked
        .into_iter()
        .map(|g| g.expect("every gateway restored"))
        .collect();

    // Not-detected reconciliation, matching the monolithic run: in-loop
    // SNR-miss tallies (shard-local), per-transmission tallies for
    // crashable gateways (shard-local, any shard's transmissions), and
    // the O(1)-per-gateway bulk for never-down gateways.
    let mut miss = vec![0u64; n_gws];
    for out in &outputs {
        for (lg, &u) in out.undetected.iter().enumerate() {
            miss[out.gw_global[lg] as usize] += u;
        }
        for (g, &u) in out.extra_undetected.iter().enumerate() {
            miss[g] += u;
        }
    }
    for (g, m) in miss.iter_mut().enumerate() {
        if !ever_down[g] {
            let mut cand_txs = 0u64;
            for (c, cnt) in ch_tx_count.iter().enumerate() {
                if ctx.is_cand[c * n_gws + g] {
                    cand_txs += *cnt;
                }
            }
            *m += total_txs - cand_txs;
        }
    }
    for (g, &m) in miss.iter().enumerate() {
        if m > 0 {
            world.gateways[g].note_undetected(m);
        }
    }

    // K-way merge the per-shard obs buffers by global event key. Keys
    // are unique across shards (each is tagged with its transmission
    // id), so `<` alone reconstructs the monolithic stream.
    if obs_on {
        let _sp = obs::span::enter(obs::span::SpanId::ShardMerge);
        let sink = taken.as_deref_mut().expect("sink present when enabled");
        let mut idx = vec![0usize; outputs.len()];
        loop {
            let mut best: Option<(usize, (u64, u8, u64))> = None;
            for (s, out) in outputs.iter().enumerate() {
                if let Some(&(key, _)) = out.obs.get(idx[s]) {
                    if best.is_none_or(|(_, bk)| key < bk) {
                        best = Some((s, key));
                    }
                }
            }
            match best {
                Some((s, _)) => {
                    sink.record(&outputs[s].obs[idx[s]].1);
                    idx[s] += 1;
                }
                None => break,
            }
        }
    }
    if let Some(sink) = taken.as_deref_mut() {
        sink.flush();
    }
    world.obs = taken;

    // Scatter records back into global id order.
    let records = if collect_records {
        let mut slots: Vec<Option<PacketRecord>> = vec![None; total_txs as usize];
        for out in &mut outputs {
            for (id, r) in out.records.drain(..) {
                slots[id as usize] = Some(r);
            }
        }
        Some(
            slots
                .into_iter()
                .map(|r| r.expect("every tx finished"))
                .collect(),
        )
    } else {
        None
    };

    let mut summary = RunSummary::default();
    let mut shard_stats = Vec::with_capacity(outputs.len());
    let mut events = 0u64;
    let mut candidate_visits = 0u64;
    let mut accum_updates = 0u64;
    let mut accum_undos = 0u64;
    let mut accum_evictions = 0u64;
    let mut wheel_cascades = 0u64;
    for out in &outputs {
        summary.merge(&out.summary);
        events += out.stats.events;
        candidate_visits += out.stats.candidate_visits;
        accum_updates += out.stats.accum_updates;
        accum_undos += out.stats.accum_undos;
        accum_evictions += out.stats.accum_evictions;
        wheel_cascades += out.stats.wheel_cascades;
        shard_stats.push(out.stats);
    }
    let stats = SimRunStats {
        txs: total_txs,
        events,
        gateways: n_gws as u32,
        candidate_visits,
        candidate_ceiling: total_txs * n_gws as u64,
        accum_updates,
        accum_undos,
        accum_evictions,
        wheel_cascades,
        wall_us: wall.elapsed().as_micros() as u64,
    };
    world.last_stats = Some(stats);
    world.last_shard_stats = Some(shard_stats.clone());

    ShardedOutcome {
        records,
        summary,
        stats,
        shard_stats,
    }
}

impl SimWorld {
    /// [`Self::run`] over the sharded engine: byte-identical records,
    /// gateway stats and obs stream, computed over independent channel
    /// shards on up to `opts.max_shards` threads.
    pub fn run_sharded(&mut self, plans: &[TxPlan], opts: &ShardOpts) -> Vec<PacketRecord> {
        self.run_sharded_with_faults(plans, &NoFaults, opts)
    }

    /// [`Self::run_with_faults`] over the sharded engine. `faults`
    /// must be `Sync` (shards query it concurrently; [`InfraFaults`]
    /// implementations are pure).
    pub fn run_sharded_with_faults(
        &mut self,
        plans: &[TxPlan],
        faults: &(dyn InfraFaults + Sync),
        opts: &ShardOpts,
    ) -> Vec<PacketRecord> {
        let mut source = SliceChunks::new(plans, opts.chunk_txs);
        run_chunked(self, &mut source, faults, opts, true)
            .records
            .expect("records collected")
    }

    /// Run a streamed workload to completion without materializing it:
    /// plans are generated chunk by chunk, per-packet records are
    /// folded into an aggregate [`RunSummary`] instead of being kept,
    /// and peak memory is bounded by the on-air set — the 1M–10M-node
    /// path.
    pub fn run_streamed(&mut self, source: &mut dyn ChunkSource, opts: &ShardOpts) -> StreamedRun {
        self.run_streamed_with_faults(source, &NoFaults, opts)
    }

    /// [`Self::run_streamed`] under an infrastructure-fault schedule.
    pub fn run_streamed_with_faults(
        &mut self,
        source: &mut dyn ChunkSource,
        faults: &(dyn InfraFaults + Sync),
        opts: &ShardOpts,
    ) -> StreamedRun {
        let out = run_chunked(self, source, faults, opts, false);
        StreamedRun {
            summary: out.summary,
            stats: out.stats,
            shard_stats: out.shard_stats,
        }
    }

    /// Per-shard counters from the most recent sharded/streamed run;
    /// `None` before the first, or after a monolithic run.
    pub fn last_shard_stats(&self) -> Option<&[ShardRunStats]> {
        self.last_shard_stats.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{concurrent_burst, duty_cycled, BurstScheme};
    use gateway::config::GatewayConfig;
    use gateway::profile::GatewayProfile;
    use lora_phy::channel::Channel;
    use lora_phy::pathloss::PathLossModel;
    use lora_phy::region::StandardChannelPlan;
    use lora_phy::types::DataRate;

    fn two_subband_world(n_nodes: usize) -> SimWorld {
        let model = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let topo = Topology::new((1_000.0, 1_000.0), n_nodes, 2, model, 7);
        let profile = GatewayProfile::rak7268cv2();
        // Two gateways on spectrally disjoint sub-bands: exactly two
        // independent components.
        let gateways = vec![
            Gateway::new(
                0,
                1,
                profile,
                GatewayConfig::new(profile, StandardChannelPlan::us915_subband(0).channels)
                    .unwrap(),
            ),
            Gateway::new(
                1,
                2,
                profile,
                GatewayConfig::new(profile, StandardChannelPlan::us915_subband(2).channels)
                    .unwrap(),
            ),
        ];
        let networks = (0..n_nodes).map(|i| 1 + (i % 2) as u32).collect();
        SimWorld::new(topo, networks, gateways)
    }

    fn two_subband_assignments(n: usize) -> Vec<(usize, Channel, DataRate)> {
        let a = StandardChannelPlan::us915_subband(0).channels;
        let b = StandardChannelPlan::us915_subband(2).channels;
        (0..n)
            .map(|i| {
                let ch = if i % 2 == 0 {
                    a[i / 2 % 8]
                } else {
                    b[i / 2 % 8]
                };
                (i, ch, DataRate::from_index(i % 6).unwrap())
            })
            .collect()
    }

    #[test]
    fn partition_separates_disjoint_subbands() {
        let w = two_subband_world(4);
        let plans = duty_cycled(&two_subband_assignments(4), 12, 0.01, 60_000_000, 3);
        let mut ctx = RunContext::default();
        let chans: Vec<Channel> = {
            let mut cs = Vec::new();
            for p in &plans {
                if !cs.contains(&p.channel) {
                    cs.push(p.channel);
                }
            }
            cs
        };
        ctx.intern_channel_list(&chans);
        ctx.rebuild_channels(&w.gateways);
        let part = partition(&ctx, 2, 8);
        assert_eq!(part.n_shards, 2, "two disjoint sub-bands, two shards");
        assert_eq!(part.shard_gws.iter().map(Vec::len).sum::<usize>(), 2);
        // Gateway 0 (sub-band 0) and gateway 1 (sub-band 2) are in
        // different shards.
        let s0 = part.shard_gws.iter().position(|g| g.contains(&0)).unwrap();
        let s1 = part.shard_gws.iter().position(|g| g.contains(&1)).unwrap();
        assert_ne!(s0, s1);
    }

    #[test]
    fn sharded_matches_monolithic() {
        let assigns = two_subband_assignments(24);
        let plans = duty_cycled(&assigns, 12, 0.02, 120_000_000, 11);
        assert!(!plans.is_empty());

        let mut mono = two_subband_world(24);
        let recs_mono = mono.run(&plans);

        for shards in [1usize, 2, 4] {
            let mut sharded = two_subband_world(24);
            let opts = ShardOpts {
                max_shards: shards,
                chunk_txs: 7,
                accum: false,
            };
            let recs = sharded.run_sharded(&plans, &opts);
            assert_eq!(recs, recs_mono, "shards={shards}");
            for (a, b) in sharded.gateways.iter().zip(&mono.gateways) {
                assert_eq!(a.stats(), b.stats(), "shards={shards}");
            }
            let stats = sharded.last_run_stats().unwrap();
            assert_eq!(stats.txs, plans.len() as u64);
            assert_eq!(stats.events, 3 * plans.len() as u64);
            let per_shard = sharded.last_shard_stats().unwrap();
            assert_eq!(per_shard.iter().map(|s| s.txs).sum::<u64>(), stats.txs);
            assert!(per_shard.iter().all(|s| s.peak_live <= s.txs));
        }
    }

    #[test]
    fn sharded_run_out_of_order_plans() {
        // `run` accepts plans in any order (ids = indices); the
        // chunked path must too.
        let assigns = two_subband_assignments(8);
        let mut plans = duty_cycled(&assigns, 12, 0.02, 60_000_000, 5);
        plans.reverse();
        let mut mono = two_subband_world(8);
        let recs_mono = mono.run(&plans);
        let mut sharded = two_subband_world(8);
        let opts = ShardOpts {
            max_shards: 2,
            chunk_txs: 3,
            accum: false,
        };
        assert_eq!(sharded.run_sharded(&plans, &opts), recs_mono);
    }

    #[test]
    fn streamed_summary_matches_materialized_records() {
        use crate::traffic::{collect_chunks, DutyCycleStream};
        let assigns = two_subband_assignments(16);
        let mut stream = DutyCycleStream::new(&assigns, 12, 0.02, 120_000_000, 9, 10_000_000);
        let plans = collect_chunks(&mut DutyCycleStream::new(
            &assigns,
            12,
            0.02,
            120_000_000,
            9,
            10_000_000,
        ));
        assert!(!plans.is_empty());

        let mut mat = two_subband_world(16);
        let recs = mat.run(&plans);
        let expect = RunSummary::from_records(&recs);

        let mut streamed = two_subband_world(16);
        let opts = ShardOpts {
            max_shards: 2,
            chunk_txs: 64,
            accum: false,
        };
        let run = streamed.run_streamed(&mut stream, &opts);
        assert_eq!(run.summary, expect);
        assert_eq!(run.stats.txs, plans.len() as u64);
        assert!(run
            .summary
            .statistically_equivalent(&expect, 0.0, 0.0)
            .is_ok());
    }

    #[test]
    fn concurrent_burst_sharded_equivalence() {
        // Same-instant-heavy schedule: frontier gating must not
        // reorder equal-timestamp events.
        let plan = StandardChannelPlan::us915_subband(0);
        let assigns: Vec<(usize, Channel, DataRate)> = (0..20)
            .map(|i| {
                (
                    i,
                    plan.channels[i % 8],
                    DataRate::from_index(i / 8 % 6).unwrap(),
                )
            })
            .collect();
        let plans = concurrent_burst(
            &assigns,
            10,
            1_000_000,
            2_000,
            BurstScheme::FinalPreambleOrdered,
        );
        let mk = || {
            let model = PathLossModel {
                shadowing_sigma_db: 0.0,
                ..Default::default()
            };
            let topo = Topology::new((100.0, 100.0), 20, 1, model, 1);
            let profile = GatewayProfile::rak7268cv2();
            let gw = Gateway::new(
                0,
                1,
                profile,
                GatewayConfig::new(profile, plan.channels.clone()).unwrap(),
            );
            SimWorld::new(topo, vec![1; 20], vec![gw])
        };
        let mut mono = mk();
        let recs_mono = mono.run(&plans);
        let mut sharded = mk();
        let opts = ShardOpts {
            max_shards: 4,
            chunk_txs: 3,
            accum: false,
        };
        assert_eq!(sharded.run_sharded(&plans, &opts), recs_mono);
    }

    #[test]
    fn accum_mode_statistically_matches_scan() {
        use lora_phy::channel::ChannelGrid;
        // Overlapping-channel world: gateway 1 listens on 50 kHz-
        // shifted channels so partial-overlap leak accumulators are
        // exercised end to end, not just the detect-class maxes.
        let base = ChannelGrid::standard(916_800_000, 1_600_000).channels();
        let shifted: Vec<Channel> = base
            .iter()
            .take(4)
            .map(|ch| Channel::khz125(ch.center_hz + 50_000))
            .collect();
        let mk = || {
            let model = PathLossModel {
                shadowing_sigma_db: 0.0,
                ..Default::default()
            };
            let topo = Topology::new((2_000.0, 2_000.0), 24, 2, model, 17);
            let profile = GatewayProfile::rak7268cv2();
            let gw0 = Gateway::new(
                0,
                1,
                profile,
                GatewayConfig::new(profile, base.clone()).unwrap(),
            );
            let mut both = shifted.clone();
            both.extend(base.iter().take(4).copied());
            let gw1 = Gateway::new(1, 2, profile, GatewayConfig::new(profile, both).unwrap());
            let networks = (0..24).map(|i| 1 + (i % 2) as u32).collect();
            SimWorld::new(topo, networks, vec![gw0, gw1])
        };
        let pool: Vec<Channel> = base.iter().chain(shifted.iter()).copied().collect();
        let assigns: Vec<(usize, Channel, DataRate)> = (0..24)
            .map(|i| {
                (
                    i,
                    pool[i % pool.len()],
                    DataRate::from_index(i % 6).unwrap(),
                )
            })
            .collect();
        let plans = duty_cycled(&assigns, 16, 0.05, 120_000_000, 11);
        assert!(!plans.is_empty());

        let mut scan_w = mk();
        let scan_opts = ShardOpts {
            max_shards: 1,
            chunk_txs: 32,
            accum: false,
        };
        let mut source = crate::traffic::SliceChunks::new(&plans, 32);
        let scan = scan_w.run_streamed(&mut source, &scan_opts);
        assert_eq!(scan.stats.accum_updates, 0, "scan mode must not count");

        for shards in [1usize, 2, 3] {
            let mut w = mk();
            let opts = ShardOpts {
                max_shards: shards,
                chunk_txs: 32,
                accum: true,
            };
            let mut source = crate::traffic::SliceChunks::new(&plans, 32);
            let run = w.run_streamed(&mut source, &opts);
            assert_eq!(run.stats.txs, plans.len() as u64);
            // Statistical gate: capture / cross-SF decisions are
            // bit-exact, the leak sum differs only in summation
            // representation, so the verdict distributions must agree
            // within the documented gate tolerances.
            let gate = run
                .summary
                .statistically_equivalent(&scan.summary, 0.02, 0.02);
            assert!(gate.is_ok(), "shards={shards}: {}", gate.unwrap_err());
            assert!(
                run.stats.accum_updates > 0 && run.stats.accum_undos > 0,
                "accumulator counters not recorded (shards={shards})"
            );
        }
    }

    #[test]
    fn empty_plan_list() {
        let mut w = two_subband_world(2);
        let recs = w.run_sharded(&[], &ShardOpts::default());
        assert!(recs.is_empty());
        assert_eq!(w.last_run_stats().unwrap().txs, 0);
    }

    #[test]
    fn from_env_parses_shards() {
        // Only exercises the parser default (env mutation is racy in
        // parallel test runs).
        let opts = ShardOpts::default();
        assert_eq!(opts.max_shards, 0);
        assert!(opts.shard_ceiling() >= 1);
    }
}
