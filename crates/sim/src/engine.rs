//! Minimal deterministic discrete-event queue.
//!
//! Events are ordered by timestamp, then by a fixed kind priority
//! (transmission ends are processed before lock-ons at the same instant,
//! so a decoder freed at time `t` is available to a packet locking on at
//! `t`), then by transmission id for full determinism.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event concerning one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The packet's first preamble symbol goes on air: interference
    /// registration.
    TxStart {
        /// Transmission the event belongs to.
        tx_id: u64,
    },
    /// The packet's preamble completes: gateways lock on (or drop).
    LockOn {
        /// Transmission the event belongs to.
        tx_id: u64,
    },
    /// The packet's airtime ends: decoders release, verdicts are made.
    TxEnd {
        /// Transmission the event belongs to.
        tx_id: u64,
    },
}

impl Event {
    /// The transmission this event belongs to.
    pub fn tx_id(&self) -> u64 {
        match *self {
            Event::TxStart { tx_id } | Event::LockOn { tx_id } | Event::TxEnd { tx_id } => tx_id,
        }
    }

    /// Same-timestamp ordering priority (lower first). Ends precede
    /// starts (back-to-back packets don't overlap) which precede
    /// lock-ons (a decoder freed at `t` serves a preamble ending at `t`).
    fn priority(&self) -> u8 {
        match self {
            Event::TxEnd { .. } => 0,
            Event::TxStart { .. } => 1,
            Event::LockOn { .. } => 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at_us: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at_us
            .cmp(&self.at_us)
            .then_with(|| other.event.priority().cmp(&self.event.priority()))
            .then_with(|| other.event.tx_id().cmp(&self.event.tx_id()))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// An empty queue whose heap can hold `n` events without
    /// reallocating (a run schedules exactly three per transmission).
    pub fn with_capacity(n: usize) -> EventQueue {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
        }
    }

    /// Reserve capacity for at least `n` additional events, so a burst
    /// of pushes never reallocates mid-run.
    pub fn reserve(&mut self, n: usize) {
        self.heap.reserve(n);
    }

    /// Schedule `event` at absolute time `at_us`.
    pub fn push(&mut self, at_us: u64, event: Event) {
        self.heap.push(Scheduled { at_us, event });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|s| (s.at_us, s.event))
    }

    /// Pop the earliest event only if it is scheduled *strictly before*
    /// `frontier_us`.
    ///
    /// This is the draining rule for chunk-fed schedules (the streaming
    /// shard loop): after a producer promises that every future
    /// transmission starts at or after `frontier_us`, all queued events
    /// strictly below the frontier are safe to process — no future push
    /// can precede them. Events *at* the frontier must wait: a future
    /// TxEnd at the same instant would sort ahead of a queued TxStart
    /// or LockOn (see [`Event`]'s same-timestamp priorities), so
    /// popping them early could reorder equal-timestamp events versus
    /// the full-knowledge [`sort_schedule`] order. The
    /// `chunked_drain_matches_sort_schedule` proptest pins this.
    pub fn pop_before(&mut self, frontier_us: u64) -> Option<(u64, Event)> {
        match self.heap.peek() {
            Some(s) if s.at_us < frontier_us => self.pop(),
            _ => None,
        }
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no event remains.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One event queued in a [`TimeWheel`]: `(t_us, kind priority, tx id,
/// payload)`. The payload rides along untouched (the sharded engine
/// stores the slot id there so the hot path never needs an id→slot
/// map); ordering ignores it.
pub type WheelEntry = (u64, u8, u64, u32);

/// Log2 of the level-0 bucket width in µs (1024 µs ≈ one LoRa symbol
/// at SF10/125 kHz — fine-grained enough that a bucket rarely holds
/// more than a handful of events at realistic duty cycles).
const WHEEL_BASE_SHIFT: u32 = 10;
/// Log2 of the slots per wheel level.
const WHEEL_BITS: u32 = 8;
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
/// Wheel levels before the unsorted overflow list. Three levels span
/// `2^(10+8·3)` µs ≈ 4.8 hours, comfortably past every simulated
/// horizon; overflow exists for correctness, not for the hot path.
const WHEEL_LEVELS: usize = 3;

/// A hierarchical timer wheel that reproduces [`EventQueue`]'s exact
/// pop order — `(t_us, kind priority, tx id)` ascending — under the
/// monotone frontier-drain discipline of [`EventQueue::pop_before`].
///
/// Inserts are O(1): an entry lands in the finest wheel level whose
/// current rotation can address its timestamp, or in the overflow
/// list. Draining advances a cursor bucket by bucket, cascading
/// coarser-level buckets down as their windows open, and sorts each
/// level-0 bucket's handful of events on arrival — O(1) amortized per
/// event versus the `O(log n)` sift of a binary heap, which is the
/// entire point at million-event queue depths.
///
/// Two contract differences from a general priority queue, both
/// inherited from the chunk-fed shard loop that owns it:
///
/// * pushes must be at or after every timestamp already drained
///   (`ChunkSource` promises all future starts are at or after the
///   last frontier), and
/// * successive [`Self::pop_before`] frontiers must be nondecreasing.
///
/// Both are debug-asserted. The `wheel_matches_event_queue` proptest
/// pins the pop order to [`EventQueue`] under adversarial same-instant
/// schedules.
#[derive(Debug)]
pub struct TimeWheel {
    /// `levels[l][slot]`: entries with `t >> (BASE + 8l)` equal to the
    /// slot's current rotation tick.
    levels: Vec<Vec<Vec<WheelEntry>>>,
    /// Entries beyond the top level's span, unsorted.
    overflow: Vec<WheelEntry>,
    /// The sorted run currently being served (all entries `< cur`).
    ready: Vec<WheelEntry>,
    ready_idx: usize,
    /// Every entry strictly before `cur` has been moved to `ready`.
    cur: u64,
    /// Entries still in `levels` + `overflow`.
    pending: usize,
    /// Level-(l+1) tick `cur` was last cascaded at, per level.
    last_tick: [u64; WHEEL_LEVELS],
    /// Entries re-filed from a coarser level (or overflow) to a finer
    /// one — the wheel's only non-O(1) motion, surfaced for telemetry.
    cascades: u64,
}

impl Default for TimeWheel {
    fn default() -> TimeWheel {
        TimeWheel::new()
    }
}

impl TimeWheel {
    /// An empty wheel with its cursor at time 0.
    pub fn new() -> TimeWheel {
        TimeWheel {
            levels: (0..WHEEL_LEVELS)
                .map(|_| (0..WHEEL_SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            ready: Vec::new(),
            ready_idx: 0,
            cur: 0,
            pending: 0,
            last_tick: [0; WHEEL_LEVELS],
            cascades: 0,
        }
    }

    /// An empty wheel pre-sized from an expected event count `n` (size
    /// it from the chunk hint: a chunk schedules three events per
    /// transmission).
    ///
    /// The ready run only ever serves one level-0 bucket at a time, so
    /// its useful capacity is bounded by bucket occupancy, not by `n`;
    /// the reservation is capped accordingly to keep the streamed
    /// path's heap ceiling at the on-air working set (see the
    /// `sim_streaming_mem` audit) while still skipping the early
    /// doubling reallocations a cold `Vec` would pay.
    pub fn with_capacity(n: usize) -> TimeWheel {
        let mut w = TimeWheel::new();
        w.ready.reserve(n.min(4 * WHEEL_SLOTS));
        w
    }

    /// Entries still queued.
    pub fn len(&self) -> usize {
        self.pending + (self.ready.len() - self.ready_idx)
    }

    /// Whether no entry remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries moved down a level by cursor advancement so far.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// File `e` into the finest level that can address its timestamp.
    fn place(&mut self, e: WheelEntry) {
        let t = e.0;
        for l in 0..WHEEL_LEVELS {
            let shift = WHEEL_BASE_SHIFT + WHEEL_BITS * l as u32;
            if (t >> shift) - (self.cur >> shift) < WHEEL_SLOTS as u64 {
                self.levels[l][(t >> shift) as usize & (WHEEL_SLOTS - 1)].push(e);
                return;
            }
        }
        self.overflow.push(e);
    }

    /// Schedule an entry. Must not precede any already-drained time.
    pub fn push(&mut self, e: WheelEntry) {
        debug_assert!(
            e.0 >= self.cur,
            "push at {} behind wheel cursor {}",
            e.0,
            self.cur
        );
        self.pending += 1;
        self.place(e);
    }

    /// Cascade coarser levels whose tick the cursor has entered, then
    /// overflow entries that now fit somewhere.
    fn cascade_at_cursor(&mut self) {
        for l in (0..WHEEL_LEVELS).rev() {
            let shift = WHEEL_BASE_SHIFT + WHEEL_BITS * (l as u32 + 1);
            let tick = self.cur >> shift;
            if tick == self.last_tick[l] {
                continue;
            }
            self.last_tick[l] = tick;
            if l + 1 < WHEEL_LEVELS {
                let slot = tick as usize & (WHEEL_SLOTS - 1);
                let moved = std::mem::take(&mut self.levels[l + 1][slot]);
                self.cascades += moved.len() as u64;
                for e in moved {
                    self.place(e);
                }
            } else {
                // Top level rolled a tick: any overflow entry the wheels
                // can now address moves down.
                let mut i = 0;
                while i < self.overflow.len() {
                    let t = self.overflow[i].0;
                    let top_shift = WHEEL_BASE_SHIFT + WHEEL_BITS * (WHEEL_LEVELS as u32 - 1);
                    if (t >> top_shift) - (self.cur >> top_shift) < WHEEL_SLOTS as u64 {
                        let e = self.overflow.swap_remove(i);
                        self.cascades += 1;
                        self.place(e);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Move every entry strictly before `frontier` toward `ready`,
    /// stopping as soon as the ready run is non-empty (later buckets
    /// hold strictly later times, so serving the current run first is
    /// exact).
    fn advance(&mut self, frontier: u64) {
        self.ready.clear();
        self.ready_idx = 0;
        while self.pending > 0 && self.cur < frontier {
            self.cascade_at_cursor();
            let slot = (self.cur >> WHEEL_BASE_SHIFT) as usize & (WHEEL_SLOTS - 1);
            let bucket_end = ((self.cur >> WHEEL_BASE_SHIFT) + 1) << WHEEL_BASE_SHIFT;
            if bucket_end <= frontier {
                // `append` empties the bucket but keeps its capacity
                // for the next rotation.
                let bucket = &mut self.levels[0][slot];
                self.pending -= bucket.len();
                self.ready.append(bucket);
                self.cur = bucket_end;
            } else {
                // The frontier splits this bucket: serve what is due,
                // keep the rest filed (the cursor stays inside the
                // bucket, so the slot remains addressable).
                let bucket = &mut self.levels[0][slot];
                let mut i = 0;
                while i < bucket.len() {
                    if bucket[i].0 < frontier {
                        self.ready.push(bucket.swap_remove(i));
                        self.pending -= 1;
                    } else {
                        i += 1;
                    }
                }
                self.cur = frontier;
            }
            if !self.ready.is_empty() {
                break;
            }
        }
        if self.pending == 0 && self.cur < frontier {
            // Nothing left to walk toward: jump the cursor (and the
            // cascade ticks, which have nothing left to move).
            self.cur = frontier;
            for l in 0..WHEEL_LEVELS {
                self.last_tick[l] = self.cur >> (WHEEL_BASE_SHIFT + WHEEL_BITS * (l as u32 + 1));
            }
        }
        self.ready.sort_unstable_by_key(|e| (e.0, e.1, e.2));
    }

    /// Pop the earliest entry scheduled strictly before `frontier_us` —
    /// [`EventQueue::pop_before`]'s contract, including the "events at
    /// the frontier must wait" rule. Frontiers must be nondecreasing
    /// across calls.
    pub fn pop_before(&mut self, frontier_us: u64) -> Option<WheelEntry> {
        loop {
            if self.ready_idx < self.ready.len() {
                let e = self.ready[self.ready_idx];
                if e.0 < frontier_us {
                    self.ready_idx += 1;
                    return Some(e);
                }
                // Only possible after a frontier regression, which the
                // shard loop never performs.
                debug_assert!(false, "frontier regressed below served run");
                return None;
            }
            if self.pending == 0 || self.cur >= frontier_us {
                return None;
            }
            self.advance(frontier_us);
        }
    }
}

/// Sort a batch of `(at_us, event)` entries into exactly the order
/// [`EventQueue`] would pop them: timestamp, then kind priority, then
/// transmission id.
///
/// A scheduler that knows every event up front — the world's run loop
/// schedules all three events per transmission before processing any —
/// can sort once and iterate linearly, skipping the per-pop heap sift
/// that dominates queue cost at scale. The ordering key is total (a
/// transmission has at most one event of each kind), so the unstable
/// sort is deterministic and the resulting sequence is identical to
/// draining an [`EventQueue`] holding the same entries.
pub fn sort_schedule(events: &mut [(u64, Event)]) {
    events.sort_unstable_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| a.1.priority().cmp(&b.1.priority()))
            .then_with(|| a.1.tx_id().cmp(&b.1.tx_id()))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.push(30, Event::LockOn { tx_id: 1 });
        q.push(10, Event::LockOn { tx_id: 2 });
        q.push(20, Event::TxEnd { tx_id: 3 });
        assert_eq!(q.pop().unwrap().0, 10);
        assert_eq!(q.pop().unwrap().0, 20);
        assert_eq!(q.pop().unwrap().0, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn txend_before_lockon_at_same_instant() {
        let mut q = EventQueue::new();
        q.push(100, Event::LockOn { tx_id: 1 });
        q.push(100, Event::TxEnd { tx_id: 2 });
        assert_eq!(q.pop().unwrap().1, Event::TxEnd { tx_id: 2 });
        assert_eq!(q.pop().unwrap().1, Event::LockOn { tx_id: 1 });
    }

    #[test]
    fn tie_break_by_tx_id() {
        let mut q = EventQueue::new();
        q.push(5, Event::LockOn { tx_id: 9 });
        q.push(5, Event::LockOn { tx_id: 3 });
        q.push(5, Event::LockOn { tx_id: 7 });
        let ids: Vec<u64> = (0..3).map(|_| q.pop().unwrap().1.tx_id()).collect();
        assert_eq!(ids, vec![3, 7, 9]);
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Event::LockOn { tx_id: 0 });
        q.push(2, Event::TxEnd { tx_id: 0 });
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pops come out in nondecreasing time order regardless of push
        /// order.
        #[test]
        fn sorted_output(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(*t, Event::LockOn { tx_id: i as u64 });
            }
            let mut prev = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= prev);
                prev = t;
            }
        }

        /// `sort_schedule` reproduces the queue's pop order exactly —
        /// the guarantee the world's batch scheduler stands on. Times
        /// are drawn from a narrow range so same-instant kind and id
        /// tie-breaks are exercised constantly.
        fn sort_schedule_matches_pop_order(
            times in proptest::collection::vec(0u64..16, 1..200),
        ) {
            let mut batch: Vec<(u64, Event)> = Vec::new();
            let mut q = EventQueue::with_capacity(3 * times.len());
            for (i, &t) in times.iter().enumerate() {
                let id = i as u64;
                for ev in [
                    Event::TxStart { tx_id: id },
                    Event::LockOn { tx_id: id },
                    Event::TxEnd { tx_id: id },
                ] {
                    batch.push((t, ev));
                    q.push(t, ev);
                }
            }
            sort_schedule(&mut batch);
            for &entry in &batch {
                prop_assert_eq!(q.pop(), Some(entry));
            }
            prop_assert!(q.is_empty());
        }

        /// Chunked feeding + frontier-gated draining reproduces the
        /// full-knowledge `sort_schedule` order exactly: the streaming
        /// shard loop ingests transmissions in start-time chunks and
        /// drains with [`EventQueue::pop_before`], and no chunk
        /// boundary may reorder equal-timestamp events versus pop
        /// order. Start times are drawn from a narrow range so chunk
        /// frontiers constantly land *on* queued event timestamps.
        fn chunked_drain_matches_sort_schedule(
            starts in proptest::collection::vec(0u64..24, 1..200),
            chunk in 1usize..8,
        ) {
            // Transmission i: start, lock-on +0..2, end +0..4 (narrow
            // offsets force heavy same-instant contention).
            let mut txs: Vec<(u64, u64, u64)> = starts
                .iter()
                .map(|&s| (s, s + s % 3, s + s % 5))
                .collect();
            // Chunks are emitted in start order, ids in emission order
            // (the contract of `ChunkSource`).
            txs.sort_by_key(|&(s, _, _)| s);

            let mut expected: Vec<(u64, Event)> = Vec::new();
            for (i, &(s, l, e)) in txs.iter().enumerate() {
                let id = i as u64;
                expected.push((s, Event::TxStart { tx_id: id }));
                expected.push((l, Event::LockOn { tx_id: id }));
                expected.push((e, Event::TxEnd { tx_id: id }));
            }
            sort_schedule(&mut expected);

            let mut q = EventQueue::new();
            let mut drained: Vec<(u64, Event)> = Vec::new();
            for (ci, group) in txs.chunks(chunk).enumerate() {
                q.reserve(3 * group.len());
                let base = (ci * chunk) as u64;
                for (k, &(s, l, e)) in group.iter().enumerate() {
                    let id = base + k as u64;
                    q.push(s, Event::TxStart { tx_id: id });
                    q.push(l, Event::LockOn { tx_id: id });
                    q.push(e, Event::TxEnd { tx_id: id });
                }
                // All later transmissions start at or after the next
                // chunk's first start time.
                let frontier = txs
                    .get((ci + 1) * chunk)
                    .map(|&(s, _, _)| s)
                    .unwrap_or(u64::MAX);
                while let Some(entry) = q.pop_before(frontier) {
                    drained.push(entry);
                }
            }
            while let Some(entry) = q.pop() {
                drained.push(entry);
            }
            prop_assert_eq!(drained, expected);
        }

        /// The hierarchical [`TimeWheel`] reproduces the binary-heap
        /// drain order exactly under the same chunked feeding and
        /// frontier gating as `chunked_drain_matches_sort_schedule` —
        /// same-instant priority and id tie-breaks included. Time
        /// offsets are stretched across bucket and cascade boundaries
        /// so level transitions are exercised, not just bucket 0.
        #[test]
        fn wheel_matches_event_queue(
            starts in proptest::collection::vec(0u64..40, 1..200),
            // Index into a stretch table spanning bucket, cascade and
            // overflow boundaries (the last entry is past the top
            // level's span, so overflow entries cascade in).
            stretch_i in 0usize..5,
            chunk in 1usize..8,
        ) {
            let stretch = [1u64, 1_000, 300_000, 80_000_000, 600_000_000][stretch_i];
            let mut txs: Vec<(u64, u64, u64)> = starts
                .iter()
                .map(|&s| {
                    let s = s * stretch;
                    (s, s + s % 3, s + s % 5)
                })
                .collect();
            txs.sort_by_key(|&(s, _, _)| s);

            let mut expected: Vec<(u64, Event)> = Vec::new();
            for (i, &(s, l, e)) in txs.iter().enumerate() {
                let id = i as u64;
                expected.push((s, Event::TxStart { tx_id: id }));
                expected.push((l, Event::LockOn { tx_id: id }));
                expected.push((e, Event::TxEnd { tx_id: id }));
            }
            sort_schedule(&mut expected);

            let mut w = TimeWheel::with_capacity(8);
            let mut drained: Vec<(u64, u8, u64, u32)> = Vec::new();
            for (ci, group) in txs.chunks(chunk).enumerate() {
                let base = (ci * chunk) as u64;
                for (k, &(s, l, e)) in group.iter().enumerate() {
                    let id = base + k as u64;
                    w.push((s, 1, id, id as u32));
                    w.push((l, 2, id, id as u32));
                    w.push((e, 0, id, id as u32));
                }
                let frontier = txs
                    .get((ci + 1) * chunk)
                    .map(|&(s, _, _)| s)
                    .unwrap_or(u64::MAX);
                while let Some(entry) = w.pop_before(frontier) {
                    drained.push(entry);
                }
            }
            prop_assert!(w.is_empty());
            prop_assert_eq!(drained.len(), expected.len());
            for (got, want) in drained.iter().zip(&expected) {
                let prio = match want.1 {
                    Event::TxEnd { .. } => 0u8,
                    Event::TxStart { .. } => 1,
                    Event::LockOn { .. } => 2,
                };
                prop_assert_eq!((got.0, got.1, got.2), (want.0, prio, want.1.tx_id()));
                prop_assert_eq!(got.3 as u64, want.1.tx_id());
            }
        }
    }
}
