//! Minimal deterministic discrete-event queue.
//!
//! Events are ordered by timestamp, then by a fixed kind priority
//! (transmission ends are processed before lock-ons at the same instant,
//! so a decoder freed at time `t` is available to a packet locking on at
//! `t`), then by transmission id for full determinism.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event concerning one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The packet's first preamble symbol goes on air: interference
    /// registration.
    TxStart {
        /// Transmission the event belongs to.
        tx_id: u64,
    },
    /// The packet's preamble completes: gateways lock on (or drop).
    LockOn {
        /// Transmission the event belongs to.
        tx_id: u64,
    },
    /// The packet's airtime ends: decoders release, verdicts are made.
    TxEnd {
        /// Transmission the event belongs to.
        tx_id: u64,
    },
}

impl Event {
    /// The transmission this event belongs to.
    pub fn tx_id(&self) -> u64 {
        match *self {
            Event::TxStart { tx_id } | Event::LockOn { tx_id } | Event::TxEnd { tx_id } => tx_id,
        }
    }

    /// Same-timestamp ordering priority (lower first). Ends precede
    /// starts (back-to-back packets don't overlap) which precede
    /// lock-ons (a decoder freed at `t` serves a preamble ending at `t`).
    fn priority(&self) -> u8 {
        match self {
            Event::TxEnd { .. } => 0,
            Event::TxStart { .. } => 1,
            Event::LockOn { .. } => 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at_us: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at_us
            .cmp(&self.at_us)
            .then_with(|| other.event.priority().cmp(&self.event.priority()))
            .then_with(|| other.event.tx_id().cmp(&self.event.tx_id()))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// An empty queue whose heap can hold `n` events without
    /// reallocating (a run schedules exactly three per transmission).
    pub fn with_capacity(n: usize) -> EventQueue {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
        }
    }

    /// Reserve capacity for at least `n` additional events, so a burst
    /// of pushes never reallocates mid-run.
    pub fn reserve(&mut self, n: usize) {
        self.heap.reserve(n);
    }

    /// Schedule `event` at absolute time `at_us`.
    pub fn push(&mut self, at_us: u64, event: Event) {
        self.heap.push(Scheduled { at_us, event });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|s| (s.at_us, s.event))
    }

    /// Pop the earliest event only if it is scheduled *strictly before*
    /// `frontier_us`.
    ///
    /// This is the draining rule for chunk-fed schedules (the streaming
    /// shard loop): after a producer promises that every future
    /// transmission starts at or after `frontier_us`, all queued events
    /// strictly below the frontier are safe to process — no future push
    /// can precede them. Events *at* the frontier must wait: a future
    /// TxEnd at the same instant would sort ahead of a queued TxStart
    /// or LockOn (see [`Event`]'s same-timestamp priorities), so
    /// popping them early could reorder equal-timestamp events versus
    /// the full-knowledge [`sort_schedule`] order. The
    /// `chunked_drain_matches_sort_schedule` proptest pins this.
    pub fn pop_before(&mut self, frontier_us: u64) -> Option<(u64, Event)> {
        match self.heap.peek() {
            Some(s) if s.at_us < frontier_us => self.pop(),
            _ => None,
        }
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no event remains.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Sort a batch of `(at_us, event)` entries into exactly the order
/// [`EventQueue`] would pop them: timestamp, then kind priority, then
/// transmission id.
///
/// A scheduler that knows every event up front — the world's run loop
/// schedules all three events per transmission before processing any —
/// can sort once and iterate linearly, skipping the per-pop heap sift
/// that dominates queue cost at scale. The ordering key is total (a
/// transmission has at most one event of each kind), so the unstable
/// sort is deterministic and the resulting sequence is identical to
/// draining an [`EventQueue`] holding the same entries.
pub fn sort_schedule(events: &mut [(u64, Event)]) {
    events.sort_unstable_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| a.1.priority().cmp(&b.1.priority()))
            .then_with(|| a.1.tx_id().cmp(&b.1.tx_id()))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.push(30, Event::LockOn { tx_id: 1 });
        q.push(10, Event::LockOn { tx_id: 2 });
        q.push(20, Event::TxEnd { tx_id: 3 });
        assert_eq!(q.pop().unwrap().0, 10);
        assert_eq!(q.pop().unwrap().0, 20);
        assert_eq!(q.pop().unwrap().0, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn txend_before_lockon_at_same_instant() {
        let mut q = EventQueue::new();
        q.push(100, Event::LockOn { tx_id: 1 });
        q.push(100, Event::TxEnd { tx_id: 2 });
        assert_eq!(q.pop().unwrap().1, Event::TxEnd { tx_id: 2 });
        assert_eq!(q.pop().unwrap().1, Event::LockOn { tx_id: 1 });
    }

    #[test]
    fn tie_break_by_tx_id() {
        let mut q = EventQueue::new();
        q.push(5, Event::LockOn { tx_id: 9 });
        q.push(5, Event::LockOn { tx_id: 3 });
        q.push(5, Event::LockOn { tx_id: 7 });
        let ids: Vec<u64> = (0..3).map(|_| q.pop().unwrap().1.tx_id()).collect();
        assert_eq!(ids, vec![3, 7, 9]);
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Event::LockOn { tx_id: 0 });
        q.push(2, Event::TxEnd { tx_id: 0 });
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pops come out in nondecreasing time order regardless of push
        /// order.
        #[test]
        fn sorted_output(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(*t, Event::LockOn { tx_id: i as u64 });
            }
            let mut prev = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= prev);
                prev = t;
            }
        }

        /// `sort_schedule` reproduces the queue's pop order exactly —
        /// the guarantee the world's batch scheduler stands on. Times
        /// are drawn from a narrow range so same-instant kind and id
        /// tie-breaks are exercised constantly.
        fn sort_schedule_matches_pop_order(
            times in proptest::collection::vec(0u64..16, 1..200),
        ) {
            let mut batch: Vec<(u64, Event)> = Vec::new();
            let mut q = EventQueue::with_capacity(3 * times.len());
            for (i, &t) in times.iter().enumerate() {
                let id = i as u64;
                for ev in [
                    Event::TxStart { tx_id: id },
                    Event::LockOn { tx_id: id },
                    Event::TxEnd { tx_id: id },
                ] {
                    batch.push((t, ev));
                    q.push(t, ev);
                }
            }
            sort_schedule(&mut batch);
            for &entry in &batch {
                prop_assert_eq!(q.pop(), Some(entry));
            }
            prop_assert!(q.is_empty());
        }

        /// Chunked feeding + frontier-gated draining reproduces the
        /// full-knowledge `sort_schedule` order exactly: the streaming
        /// shard loop ingests transmissions in start-time chunks and
        /// drains with [`EventQueue::pop_before`], and no chunk
        /// boundary may reorder equal-timestamp events versus pop
        /// order. Start times are drawn from a narrow range so chunk
        /// frontiers constantly land *on* queued event timestamps.
        fn chunked_drain_matches_sort_schedule(
            starts in proptest::collection::vec(0u64..24, 1..200),
            chunk in 1usize..8,
        ) {
            // Transmission i: start, lock-on +0..2, end +0..4 (narrow
            // offsets force heavy same-instant contention).
            let mut txs: Vec<(u64, u64, u64)> = starts
                .iter()
                .map(|&s| (s, s + s % 3, s + s % 5))
                .collect();
            // Chunks are emitted in start order, ids in emission order
            // (the contract of `ChunkSource`).
            txs.sort_by_key(|&(s, _, _)| s);

            let mut expected: Vec<(u64, Event)> = Vec::new();
            for (i, &(s, l, e)) in txs.iter().enumerate() {
                let id = i as u64;
                expected.push((s, Event::TxStart { tx_id: id }));
                expected.push((l, Event::LockOn { tx_id: id }));
                expected.push((e, Event::TxEnd { tx_id: id }));
            }
            sort_schedule(&mut expected);

            let mut q = EventQueue::new();
            let mut drained: Vec<(u64, Event)> = Vec::new();
            for (ci, group) in txs.chunks(chunk).enumerate() {
                q.reserve(3 * group.len());
                let base = (ci * chunk) as u64;
                for (k, &(s, l, e)) in group.iter().enumerate() {
                    let id = base + k as u64;
                    q.push(s, Event::TxStart { tx_id: id });
                    q.push(l, Event::LockOn { tx_id: id });
                    q.push(e, Event::TxEnd { tx_id: id });
                }
                // All later transmissions start at or after the next
                // chunk's first start time.
                let frontier = txs
                    .get((ci + 1) * chunk)
                    .map(|&(s, _, _)| s)
                    .unwrap_or(u64::MAX);
                while let Some(entry) = q.pop_before(frontier) {
                    drained.push(entry);
                }
            }
            while let Some(entry) = q.pop() {
                drained.push(entry);
            }
            prop_assert_eq!(drained, expected);
        }
    }
}
