//! Synthetic packet-trace pool — the stand-in for the paper's
//! Appendix D dataset ("over 100,000 packet traces collected from 500
//! sites in our testbed, with packet SNRs ranging from −15 dB to 5 dB").
//!
//! A [`TracePool`] holds per-site link observations (per-gateway SNRs)
//! sampled from a topology. Long-term simulations draw each synthetic
//! node's link profile from a site's traces instead of a fresh path-loss
//! roll, exactly how the paper synthesizes "node traffic across
//! different frequency channels" and simulates "the communications of
//! massive IoT nodes" from recorded traces. Pools serialize to JSON so
//! a collected pool can be reused across runs.

use crate::topology::Topology;
use lora_phy::types::TxPowerDbm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One recorded packet observation at one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Site the observation was collected at.
    pub site: usize,
    /// SNR per gateway, dB (NaN-free; unreachable gateways omitted by
    /// clamping to a floor far below any demod threshold).
    pub snr_per_gw: Vec<f64>,
}

/// A pool of packet traces collected from a fixed set of sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePool {
    /// Gateway count every record's `snr_per_gw` is indexed by.
    pub n_gateways: usize,
    /// The collected observations.
    pub records: Vec<TraceRecord>,
}

/// SNR clamp for unreachable links in a trace.
pub const TRACE_SNR_FLOOR_DB: f64 = -40.0;

impl TracePool {
    /// Collect `per_site` packet observations from each of `n_sites`
    /// random sites of `topo`, with per-packet fading of `fading_db`
    /// std-dev. SNRs are clamped into the paper's −15…+5 dB window at
    /// the best gateway (weaker gateways fall where they fall).
    pub fn collect(
        topo: &Topology,
        n_sites: usize,
        per_site: usize,
        fading_db: f64,
        seed: u64,
    ) -> TracePool {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_gw = topo.gateways.len();
        let mut records = Vec::with_capacity(n_sites * per_site);
        for site_idx in 0..n_sites {
            let node = rng.gen_range(0..topo.nodes.len());
            // Per-site calibration offset: shift the best-gateway SNR
            // into the paper's measured window.
            let best = (0..n_gw)
                .map(|j| topo.snr_db(node, j, TxPowerDbm(14.0)))
                .fold(f64::NEG_INFINITY, f64::max);
            let target_best = rng.gen_range(-15.0..5.0);
            let offset = target_best - best;
            for _ in 0..per_site {
                let snr_per_gw = (0..n_gw)
                    .map(|j| {
                        let fade = if fading_db > 0.0 {
                            rng.gen_range(-fading_db..fading_db)
                        } else {
                            0.0
                        };
                        // Record at 0.1 dB granularity (what real
                        // gateways report) — also keeps JSON roundtrips
                        // bit-exact.
                        let snr = (topo.snr_db(node, j, TxPowerDbm(14.0)) + offset + fade)
                            .max(TRACE_SNR_FLOOR_DB);
                        (snr * 10.0).round() / 10.0
                    })
                    .collect();
                records.push(TraceRecord {
                    site: site_idx,
                    snr_per_gw,
                });
            }
        }
        TracePool {
            n_gateways: n_gw,
            records,
        }
    }

    /// Number of trace records in the pool.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the pool holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Draw a trace record uniformly.
    pub fn sample<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> &'a TraceRecord {
        &self.records[rng.gen_range(0..self.records.len())]
    }

    /// Serialize the pool to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace pool serializes")
    }

    /// Load a pool from JSON.
    pub fn from_json(json: &str) -> Option<TracePool> {
        serde_json::from_str(json).ok()
    }

    /// Fraction of records whose best-gateway SNR falls inside
    /// `[lo, hi]` dB — for validating against the paper's window.
    pub fn best_snr_within(&self, lo: f64, hi: f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let n = self
            .records
            .iter()
            .filter(|r| {
                let best = r
                    .snr_per_gw
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                best >= lo && best <= hi
            })
            .count();
        n as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::pathloss::PathLossModel;

    fn pool() -> TracePool {
        let topo = Topology::new((2_100.0, 1_600.0), 600, 10, PathLossModel::default(), 77);
        TracePool::collect(&topo, 500, 20, 2.0, 7)
    }

    #[test]
    fn paper_scale_pool() {
        let p = pool();
        assert_eq!(p.len(), 10_000);
        assert_eq!(p.n_gateways, 10);
        // Best-gateway SNRs live in the paper's window (±fading slack).
        assert!(p.best_snr_within(-17.5, 7.5) > 0.99);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = pool();
        let b = pool();
        assert_eq!(a, b);
    }

    #[test]
    fn json_roundtrip() {
        let p = {
            let topo = Topology::new((500.0, 500.0), 20, 3, PathLossModel::default(), 1);
            TracePool::collect(&topo, 5, 4, 1.0, 2)
        };
        let json = p.to_json();
        assert_eq!(TracePool::from_json(&json), Some(p));
        assert_eq!(TracePool::from_json("{"), None);
    }

    #[test]
    fn sampling_covers_sites() {
        let p = pool();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(p.sample(&mut rng).site);
        }
        assert!(seen.len() > 400, "only {} sites sampled", seen.len());
    }

    #[test]
    fn floor_clamps_unreachable_links() {
        let p = pool();
        assert!(p
            .records
            .iter()
            .all(|r| r.snr_per_gw.iter().all(|&s| s >= TRACE_SNR_FLOOR_DB)));
    }
}
