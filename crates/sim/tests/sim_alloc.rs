//! Heap-allocation audit for the simulation hot path.
//!
//! A counting global allocator wraps the system allocator; after one
//! warm-up run has sized the world's reusable scratch arenas (timeline,
//! interferer lists, admission spans, on-air buckets, verdict buffers,
//! link tables), further runs of the same shape must perform no
//! steady-state heap allocation beyond the returned record vector —
//! one allocation per run. The scenario keeps every node out of
//! detection range so no record clones a non-empty receiving-gateway
//! list; richer paths are held to the same arenas by construction
//! (they reuse the identical buffers) and to correctness by the
//! workspace `sim_equivalence` proptest. This is the binary's only
//! test so no concurrent test can perturb the counter.

use gateway::config::GatewayConfig;
use gateway::profile::GatewayProfile;
use gateway::radio::Gateway;
use lora_phy::channel::{Channel, ChannelGrid};
use lora_phy::pathloss::PathLossModel;
use lora_phy::types::DataRate;
use sim::topology::Topology;
use sim::traffic::duty_cycled;
use sim::world::SimWorld;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn run_hot_path_steady_state_never_allocates() {
    // Nodes scattered over tens of km: every link is far below the
    // detection floor, so each record's receiving list stays empty
    // (delivered records would clone it, which is the one permitted
    // output allocation besides the record vector itself).
    let model = PathLossModel {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    };
    let topo = Topology::new((60_000.0, 60_000.0), 48, 3, model, 9);
    let profile = GatewayProfile::rak7268cv2();
    let channels = ChannelGrid::standard(916_800_000, 1_600_000).channels();
    let gateways = (0..3)
        .map(|j| {
            Gateway::new(
                j,
                1,
                profile,
                GatewayConfig::new(profile, channels.clone()).unwrap(),
            )
        })
        .collect();
    let mut world = SimWorld::new(topo, vec![1; 48], gateways);

    let assigns: Vec<(usize, Channel, DataRate)> = (0..48)
        .map(|i| (i, channels[i % 8], DataRate::from_index(i / 8 % 6).unwrap()))
        .collect();
    let plans = duty_cycled(&assigns, 23, 0.02, 30_000_000, 17);
    assert!(plans.len() > 100, "workload too small to be meaningful");

    // Warm-up: the first run sizes every arena (and interns channels).
    let warm = world.run(&plans);
    assert!(
        warm.iter().all(|r| !r.delivered),
        "scenario must be out of range"
    );

    const RUNS: u64 = 3;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut total_records = 0usize;
    for _ in 0..RUNS {
        world.reset();
        total_records += world.run(&plans).len();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(total_records, RUNS as usize * plans.len());
    let delta = after - before;
    assert!(
        delta <= RUNS,
        "steady-state runs heap-allocated {delta} times \
         (allowed: one record-vector allocation per run, {RUNS} total)"
    );
}
