//! Memory-ceiling audit for the streamed (sharded) simulation path.
//!
//! A byte-tracking global allocator wraps the system allocator; a
//! streamed run over a workload of ~10k transmissions must keep its
//! transient heap growth *below the cost of materializing the event
//! timeline alone* — direct evidence that [`sim::shard`] never builds
//! the 3n-event timeline or the full plan list, which is the entire
//! point of the streaming path (at 10M transmissions the timeline is
//! ~0.5 GB; the streamed working set stays at the on-air ceiling).
//!
//! This is the binary's only test so no concurrent test can perturb
//! the counters.

use gateway::config::GatewayConfig;
use gateway::profile::GatewayProfile;
use gateway::radio::Gateway;
use lora_phy::channel::{Channel, ChannelGrid};
use lora_phy::pathloss::PathLossModel;
use lora_phy::types::DataRate;
use sim::shard::ShardOpts;
use sim::topology::Topology;
use sim::traffic::DutyCycleStream;
use sim::world::SimWorld;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct PeakAlloc;

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn note_alloc(bytes: usize) {
    let cur = CURRENT.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    PEAK.fetch_max(cur, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Conservatively counted as a fresh allocation of the new size
        // (the old block is released below); over-counts peak, which
        // only makes the ceiling assertion stricter.
        note_alloc(new_size);
        CURRENT.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

#[test]
fn streamed_run_peak_heap_stays_below_timeline_cost() {
    let n_nodes = 200usize;
    let model = PathLossModel {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    };
    let topo = Topology::new((3_000.0, 3_000.0), n_nodes, 2, model, 21);
    let profile = GatewayProfile::rak7268cv2();
    let channels = ChannelGrid::standard(916_800_000, 1_600_000).channels();
    let gateways = (0..2)
        .map(|j| {
            Gateway::new(
                j,
                1,
                profile,
                GatewayConfig::new(profile, channels.clone()).unwrap(),
            )
        })
        .collect();
    let mut world = SimWorld::new(topo, vec![1; n_nodes], gateways);

    let assigns: Vec<(usize, Channel, DataRate)> = (0..n_nodes)
        .map(|i| (i, channels[i % 8], DataRate::from_index(i / 8 % 6).unwrap()))
        .collect();
    // ~10k transmissions streamed in 200 ms windows: hundreds of
    // chunks, each a sliver of the run.
    let mut stream = DutyCycleStream::new(&assigns, 23, 0.01, 600_000_000, 33, 200_000);
    let opts = ShardOpts {
        max_shards: 2,
        chunk_txs: 4096,
        accum: false,
    };

    let before = CURRENT.load(Ordering::Relaxed);
    PEAK.store(before, Ordering::Relaxed);
    let run = world.run_streamed(&mut stream, &opts);
    let peak_delta = PEAK.load(Ordering::Relaxed).saturating_sub(before);

    let txs = run.stats.txs;
    assert!(txs > 5_000, "workload too small to be meaningful ({txs})");

    // Materializing just the (t, event) timeline costs 16 bytes per
    // entry, 3 entries per transmission — before plans, link tables or
    // per-packet records. The streamed run must beat that, or it is
    // materializing something it promised to stream.
    let timeline_bytes = 3 * txs * 16;
    assert!(
        peak_delta < timeline_bytes,
        "streamed run peaked at {peak_delta} heap bytes, not below the \
         {timeline_bytes}-byte timeline it claims never to build"
    );

    // Slot recycling keeps the live transmission ceiling far below the
    // run length (on-air set + one producer chunk, not 3n events).
    let peak_live: u64 = run
        .shard_stats
        .iter()
        .map(|s| s.peak_live)
        .max()
        .unwrap_or(0);
    assert!(
        peak_live > 0 && peak_live < txs / 10,
        "peak live slots {peak_live} not an order of magnitude below {txs} txs"
    );
}
