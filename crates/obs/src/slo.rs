//! In-process SLO burn-rate rules over [`Tsdb`]
//! frames.
//!
//! A rule watches a windowed ratio (`numer / denom` counter deltas,
//! e.g. dedup-late packets over all packets) or a windowed rate
//! (`numer` per second, e.g. ingest throughput). When the value crosses
//! its threshold the rule *breaches*; svc daemons feed breaches into a
//! [`FlightRecorder`](crate::flight::FlightRecorder) trigger so the
//! recent event ring is snapshotted with the rule name as the trigger
//! reason. Rules are serde-loadable (JSON) so deployments can override
//! the built-in defaults without recompiling.

use serde::{Deserialize, Serialize};

use crate::tsdb::Tsdb;

/// One burn-rate rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloRule {
    /// Rule name: becomes the FlightRecorder trigger reason.
    pub name: String,
    /// Counter whose windowed delta (or rate) is watched.
    pub numer: String,
    /// Optional denominator counter: present → the rule watches the
    /// ratio `numer/denom`; absent → it watches `numer` per second.
    #[serde(default)]
    pub denom: Option<String>,
    /// Trailing evaluation window, microseconds.
    pub window_us: u64,
    /// Breach threshold (ratio in `[0,1]` or events/sec).
    pub threshold: f64,
    /// Breach when the value falls *below* the threshold instead of
    /// above it (e.g. "ingest rate collapsed").
    #[serde(default)]
    pub breach_below: bool,
    /// Minimum windowed sample count (denominator for ratio rules,
    /// numerator for rate rules) before an *above*-threshold breach can
    /// fire — keeps near-empty windows from flapping. Ignored for
    /// `breach_below` rules (an empty window is exactly the emergency).
    #[serde(default)]
    pub min_count: u64,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloBreach {
    /// Breaching rule name.
    pub rule: String,
    /// Observed value (ratio or events/sec).
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// End of the evaluation window, microseconds.
    pub t_us: u64,
}

/// A set of rules with per-rule refire suppression: after a breach a
/// rule stays silent until a full window of new frames has closed, so
/// one incident produces one flight snapshot, not one per sampler tick.
#[derive(Debug, Clone)]
pub struct SloSet {
    rules: Vec<SloRule>,
    last_fired: Vec<Option<u64>>,
}

impl SloSet {
    /// A set evaluating `rules`.
    pub fn new(rules: Vec<SloRule>) -> SloSet {
        let n = rules.len();
        SloSet {
            rules,
            last_fired: vec![None; n],
        }
    }

    /// Parse a JSON array of rules.
    pub fn from_json(json: &str) -> Result<SloSet, String> {
        let rules: Vec<SloRule> = serde_json::from_str(json).map_err(|e| e.to_string())?;
        Ok(SloSet::new(rules))
    }

    /// The configured rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluate every rule against the trailing window of `db` and
    /// return the breaches that fired (post-suppression).
    pub fn evaluate(&mut self, db: &Tsdb) -> Vec<SloBreach> {
        let Some(last_end) = db.frames().last().map(|f| f.t_end_us) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            if let Some(fired) = self.last_fired[i] {
                if last_end < fired.saturating_add(rule.window_us) {
                    continue;
                }
            }
            let cutoff = last_end.saturating_sub(rule.window_us);
            let mut numer = 0u64;
            let mut denom = 0u64;
            let mut span_start = last_end;
            for f in db.frames().rev() {
                if f.t_end_us <= cutoff {
                    break;
                }
                numer += f.counter(&rule.numer);
                if let Some(d) = &rule.denom {
                    denom += f.counter(d);
                }
                span_start = f.t_start_us.max(cutoff);
            }
            let value = match &rule.denom {
                Some(_) => {
                    if denom == 0 {
                        if rule.breach_below {
                            0.0
                        } else {
                            continue;
                        }
                    } else {
                        numer as f64 / denom as f64
                    }
                }
                None => {
                    let span = last_end.saturating_sub(span_start);
                    if span == 0 {
                        continue;
                    }
                    numer as f64 / (span as f64 / 1e6)
                }
            };
            let breached = if rule.breach_below {
                value < rule.threshold
            } else {
                let samples = if rule.denom.is_some() { denom } else { numer };
                samples >= rule.min_count.max(1) && value > rule.threshold
            };
            if breached {
                self.last_fired[i] = Some(last_end);
                out.push(SloBreach {
                    rule: rule.name.clone(),
                    value,
                    threshold: rule.threshold,
                    t_us: last_end,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn db_with(counts: &[(u64, u64)]) -> Tsdb {
        // counts: (late, total) per 1 s window.
        let mut db = Tsdb::new(1_000_000, 64);
        let mut reg = Registry::new();
        db.advance(0, &reg);
        for (i, &(late, total)) in counts.iter().enumerate() {
            reg.inc("dedup_late", late);
            reg.inc("pkts", total);
            db.advance((i as u64 + 1) * 1_000_000, &reg);
        }
        db
    }

    fn ratio_rule() -> SloRule {
        SloRule {
            name: "dedup-late-burn".into(),
            numer: "dedup_late".into(),
            denom: Some("pkts".into()),
            window_us: 3_000_000,
            threshold: 0.10,
            breach_below: false,
            min_count: 10,
        }
    }

    #[test]
    fn ratio_rule_fires_above_threshold() {
        let mut set = SloSet::new(vec![ratio_rule()]);
        let healthy = db_with(&[(1, 100), (2, 100), (1, 100)]);
        assert!(set.evaluate(&healthy).is_empty());
        let burning = db_with(&[(1, 100), (30, 100), (25, 100)]);
        let breaches = set.evaluate(&burning);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].rule, "dedup-late-burn");
        assert!(breaches[0].value > 0.10);
    }

    #[test]
    fn min_count_suppresses_thin_windows() {
        let mut set = SloSet::new(vec![ratio_rule()]);
        // 1/2 late is a 50% ratio but only 2 packets — below min_count.
        let thin = db_with(&[(1, 2)]);
        assert!(set.evaluate(&thin).is_empty());
    }

    #[test]
    fn refire_suppressed_until_window_passes() {
        let mut set = SloSet::new(vec![ratio_rule()]);
        let burning = db_with(&[(30, 100), (30, 100), (30, 100)]);
        assert_eq!(set.evaluate(&burning).len(), 1);
        assert!(set.evaluate(&burning).is_empty(), "same frames → no refire");
        // Three more burning windows close (a full window later).
        let later = db_with(&[(30, 100); 6]);
        assert_eq!(set.evaluate(&later).len(), 1, "refires after a window");
    }

    #[test]
    fn rate_below_rule_detects_collapse() {
        let mut set = SloSet::new(vec![SloRule {
            name: "ingest-collapse".into(),
            numer: "pkts".into(),
            denom: None,
            window_us: 2_000_000,
            threshold: 50.0,
            breach_below: true,
            min_count: 0,
        }]);
        let healthy = db_with(&[(0, 1_000), (0, 1_000)]);
        assert!(set.evaluate(&healthy).is_empty());
        let collapsed = db_with(&[(0, 1_000), (0, 1_000), (0, 1_000), (0, 10)]);
        // Trailing 2 s: windows 3+4 → (1 000 + 10)/2 s = 505/sec, fine;
        // make it truly collapse: last two windows nearly empty.
        let _ = collapsed;
        let dead = db_with(&[(0, 1_000), (0, 20), (0, 20)]);
        let breaches = set.evaluate(&dead);
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].value < 50.0, "value {}", breaches[0].value);
    }

    #[test]
    fn rules_parse_from_json() {
        let json = r#"[
            {"name": "late", "numer": "dedup_late", "denom": "pkts",
             "window_us": 10000000, "threshold": 0.05, "min_count": 100}
        ]"#;
        let set = SloSet::from_json(json).expect("parse");
        assert_eq!(set.rules().len(), 1);
        assert_eq!(set.rules()[0].denom.as_deref(), Some("pkts"));
        assert!(!set.rules()[0].breach_below);
        assert!(SloSet::from_json("not json").is_err());
    }
}
