//! The flight recorder: post-mortem snapshots of long runs.
//!
//! A [`FlightRecorder`] is an [`ObsSink`] that keeps the most recent
//! `capacity` events in a [`RingSink`] and writes them to a JSONL file
//! when something interesting happens:
//!
//! * a chaos fault activation ([`ObsEvent::FaultActivated`]),
//! * a pool-full drop burst — at least `threshold`
//!   [`ObsEvent::PoolFullDrop`]s within `window_us` of simulation time,
//! * an explicit [`FlightRecorder::trigger`] call.
//!
//! Snapshots are event JSONL — the same format [`JsonlSink`] writes —
//! prefixed with one [`FlightHeader`] line recording *why* and *when*
//! (simulation time) the snapshot fired, so post-hoc triage needs no
//! log correlation. Downstream consumers (`tracectl`, the
//! `TraceAnalyzer`, a `MetricsSink` refold) skip the header line via
//! [`FlightHeader::parse_line`] and read the rest unchanged. A
//! snapshot is a *window*, though: spans cut by its edges legitimately
//! show up as boundary causality violations when analyzed.
//!
//! Determinism: snapshot filenames are
//! `{prefix}-{seq:04}-{reason}-t{trigger_t_us}.jsonl` with a monotonic
//! sequence number and the **simulation** time of the most recent
//! event — no wall-clock anywhere — so a fixed-seed run produces
//! byte-identical snapshots with identical names. Disk errors are
//! swallowed (a recorder must never take down the run it is
//! recording); [`FlightRecorder::io_errors`] counts them.

use crate::event::ObsEvent;
use crate::sink::{JsonlSink, ObsSink, RingSink};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// Schema version stamped into [`FlightHeader`].
pub const FLIGHT_HEADER_VERSION: u32 = 1;

/// First line of every flight snapshot: the trigger context.
///
/// Serialized wrapped (`{"flight_header":{…}}`) so it is visibly not
/// an [`ObsEvent`]; JSONL consumers call
/// [`FlightHeader::parse_line`] on lines that fail event parsing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightHeader {
    /// Schema version ([`FLIGHT_HEADER_VERSION`]).
    pub version: u32,
    /// Trigger reason (sanitized, as in the filename).
    pub reason: String,
    /// Snapshot sequence number within this recorder.
    pub seq: u32,
    /// Simulation time (µs) of the most recent event when the trigger
    /// fired; `None` if no timestamped event had been recorded.
    pub trigger_t_us: Option<u64>,
    /// Events in the snapshot window.
    pub events: usize,
}

// The vendored serde derive serializes the field name verbatim (no
// rename support), so the field IS the wire tag — keep it descriptive.
#[derive(Serialize, Deserialize)]
struct FlightHeaderLine {
    flight_header: FlightHeader,
}

impl FlightHeader {
    /// Parse a JSONL line as a flight header, if it is one.
    pub fn parse_line(line: &str) -> Option<FlightHeader> {
        serde_json::from_str::<FlightHeaderLine>(line)
            .ok()
            .map(|l| l.flight_header)
    }

    fn to_line(&self) -> String {
        serde_json::to_string(&FlightHeaderLine {
            flight_header: self.clone(),
        })
        .unwrap_or_else(|_| "{}".to_string())
    }
}

/// Default number of pool-full drops within the window that counts as
/// a burst.
const DEFAULT_BURST_THRESHOLD: usize = 8;
/// Default burst window, µs of simulation time (1 s).
const DEFAULT_BURST_WINDOW_US: u64 = 1_000_000;

/// Callback invoked with each snapshot path after the file is sealed
/// (see [`FlightRecorder::with_snapshot_hook`]).
pub type SnapshotHook = Box<dyn FnMut(&Path) + Send>;

/// A bounded ring of recent events that snapshots itself to JSONL on
/// fault activations, drop bursts, or explicit request. See the module
/// docs for the trigger and determinism contract.
pub struct FlightRecorder {
    ring: RingSink,
    dir: PathBuf,
    prefix: String,
    seq: u32,
    burst_threshold: usize,
    burst_window_us: u64,
    /// Timestamps of recent pool-full drops inside the burst window.
    recent_drops: VecDeque<u64>,
    /// Events recorded since the last snapshot (cooldown guard).
    since_snapshot: u64,
    /// Minimum events between automatic snapshots, so a sustained storm
    /// produces mostly-disjoint windows instead of near-duplicates.
    cooldown: u64,
    /// Simulation time of the most recent timestamped event.
    last_t_us: Option<u64>,
    /// Called with the snapshot path after each successful write, so
    /// co-writers (the `ALPHAWAN_OBS_OUT` session stream) can flush to
    /// disk at the same moment the incident is captured.
    on_snapshot: Option<SnapshotHook>,
    snapshots: Vec<PathBuf>,
    io_errors: u64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("dir", &self.dir)
            .field("prefix", &self.prefix)
            .field("seq", &self.seq)
            .field("len", &self.ring.len())
            .field("snapshots", &self.snapshots.len())
            .field("io_errors", &self.io_errors)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events, snapshotting into
    /// `dir` (created on first snapshot).
    ///
    /// # Panics
    /// Panics if `capacity` is zero (via [`RingSink::new`]).
    pub fn new(dir: &Path, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: RingSink::new(capacity),
            dir: dir.to_path_buf(),
            prefix: "flight".to_string(),
            seq: 0,
            burst_threshold: DEFAULT_BURST_THRESHOLD,
            burst_window_us: DEFAULT_BURST_WINDOW_US,
            recent_drops: VecDeque::new(),
            since_snapshot: 0,
            cooldown: capacity as u64,
            last_t_us: None,
            on_snapshot: None,
            snapshots: Vec::new(),
            io_errors: 0,
        }
    }

    /// Install a hook called with the snapshot path after each
    /// successful write (e.g. to flush a concurrent session writer so
    /// its stream is on disk at the moment of the incident).
    pub fn with_snapshot_hook(mut self, hook: SnapshotHook) -> FlightRecorder {
        self.on_snapshot = Some(hook);
        self
    }

    /// Use `prefix` instead of `"flight"` in snapshot filenames.
    pub fn with_prefix(mut self, prefix: &str) -> FlightRecorder {
        self.prefix = sanitize(prefix);
        self
    }

    /// Snapshot when at least `threshold` pool-full drops land within
    /// `window_us` of simulation time (defaults: 8 drops in 1 s).
    pub fn with_drop_burst(mut self, threshold: usize, window_us: u64) -> FlightRecorder {
        self.burst_threshold = threshold.max(1);
        self.burst_window_us = window_us;
        self
    }

    /// Require at least `events` recorded between *automatic* snapshots
    /// (fault / burst triggers; explicit [`FlightRecorder::trigger`]
    /// calls always snapshot). Defaults to the ring capacity, so
    /// consecutive automatic snapshots barely overlap.
    pub fn with_cooldown(mut self, events: u64) -> FlightRecorder {
        self.cooldown = events;
        self
    }

    /// Paths of every snapshot written so far, in order.
    pub fn snapshots(&self) -> &[PathBuf] {
        &self.snapshots
    }

    /// Snapshot writes that failed (disk trouble is swallowed, never
    /// propagated into the run).
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Write the current ring contents to
    /// `{dir}/{prefix}-{seq:04}-{reason}-t{trigger_t_us}.jsonl`
    /// immediately, preceded by a [`FlightHeader`] line. `reason` is
    /// sanitized to `[a-z0-9-]` for the filename; the timestamp is the
    /// simulation time of the most recent event (`t0` if none).
    /// Returns the path when the write succeeded.
    pub fn trigger(&mut self, reason: &str) -> Option<PathBuf> {
        let reason = sanitize(reason);
        let header = FlightHeader {
            version: FLIGHT_HEADER_VERSION,
            reason: reason.clone(),
            seq: self.seq,
            trigger_t_us: self.last_t_us,
            events: self.ring.len(),
        };
        let path = self.dir.join(format!(
            "{}-{:04}-{}-t{}.jsonl",
            self.prefix,
            self.seq,
            reason,
            self.last_t_us.unwrap_or(0)
        ));
        self.seq += 1;
        self.since_snapshot = 0;
        match JsonlSink::create(&path) {
            Err(_) => {
                self.io_errors += 1;
                None
            }
            Ok(mut out) => {
                out.write_line(&header.to_line());
                for ev in self.ring.events() {
                    out.record(&ev);
                }
                out.flush();
                self.snapshots.push(path.clone());
                if let Some(hook) = self.on_snapshot.as_mut() {
                    hook(&path);
                }
                Some(path)
            }
        }
    }

    /// An automatic trigger: honors the cooldown.
    fn auto_trigger(&mut self, reason: &str) {
        if self.seq > 0 && self.since_snapshot < self.cooldown {
            return;
        }
        self.trigger(reason);
    }
}

/// Keep `[a-z0-9-]`, lowercase the rest where possible, map anything
/// else to `-`.
fn sanitize(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '-' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '-',
        })
        .collect();
    if cleaned.is_empty() {
        "snapshot".to_string()
    } else {
        cleaned
    }
}

impl ObsSink for FlightRecorder {
    fn record(&mut self, ev: &ObsEvent) {
        self.ring.record(ev);
        self.since_snapshot += 1;
        if let Some(t) = ev.t_us() {
            self.last_t_us = Some(t);
        }
        match *ev {
            ObsEvent::FaultActivated { .. } => self.auto_trigger("fault"),
            ObsEvent::PoolFullDrop { t_us, .. } => {
                while let Some(&front) = self.recent_drops.front() {
                    if t_us.saturating_sub(front) > self.burst_window_us {
                        self.recent_drops.pop_front();
                    } else {
                        break;
                    }
                }
                self.recent_drops.push_back(t_us);
                if self.recent_drops.len() >= self.burst_threshold {
                    self.auto_trigger("drop-burst");
                    self.recent_drops.clear();
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultKind;

    fn drop_ev(t: u64) -> ObsEvent {
        ObsEvent::PoolFullDrop {
            t_us: t,
            trace: 0,
            gw: 0,
            tx: t,
            locked: 0,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("obs_flight_{name}"))
    }

    #[test]
    fn explicit_trigger_writes_ring_contents() {
        let dir = tmp("explicit");
        let _ = std::fs::remove_dir_all(&dir);
        let mut fr = FlightRecorder::new(&dir, 4);
        for t in 0..6 {
            fr.record(&ObsEvent::TxStart {
                t_us: t,
                trace: t + 1,
                tx: t,
                node: 0,
                network: 1,
            });
        }
        let path = fr.trigger("User Asked!").expect("snapshot written");
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "flight-0000-user-asked--t5.jsonl",
            "sequence + sanitized reason + trigger time"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().count(),
            5,
            "header + ring capacity bounds the window"
        );
        let header =
            FlightHeader::parse_line(text.lines().next().unwrap()).expect("first line is a header");
        assert_eq!(header.reason, "user-asked-");
        assert_eq!(header.seq, 0);
        assert_eq!(header.trigger_t_us, Some(5));
        assert_eq!(header.events, 4);
        // Oldest retained event first: events 2..6.
        assert!(text.lines().nth(1).unwrap().contains("\"t_us\":2"));
        assert!(
            FlightHeader::parse_line(text.lines().nth(1).unwrap()).is_none(),
            "event lines are not headers"
        );
        assert_eq!(fr.snapshots().len(), 1);
        assert_eq!(fr.io_errors(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_activation_triggers_snapshot() {
        let dir = tmp("fault");
        let _ = std::fs::remove_dir_all(&dir);
        let mut fr = FlightRecorder::new(&dir, 8);
        fr.record(&drop_ev(1));
        fr.record(&ObsEvent::FaultActivated {
            kind: FaultKind::GatewayCrash,
            gw: 0,
            start_us: 0,
            end_us: 10,
        });
        assert_eq!(fr.snapshots().len(), 1);
        assert!(fr.snapshots()[0]
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .ends_with("-fault-t1.jsonl"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_burst_triggers_once_per_burst() {
        let dir = tmp("burst");
        let _ = std::fs::remove_dir_all(&dir);
        let mut fr = FlightRecorder::new(&dir, 64).with_drop_burst(3, 1_000);
        // Two drops inside the window: no snapshot.
        fr.record(&drop_ev(0));
        fr.record(&drop_ev(100));
        assert!(fr.snapshots().is_empty());
        // Third within 1 ms: burst.
        fr.record(&drop_ev(200));
        assert_eq!(fr.snapshots().len(), 1);
        // Window cleared: the next lone drop does not re-trigger.
        fr.record(&drop_ev(300));
        assert_eq!(fr.snapshots().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spread_out_drops_never_burst() {
        let dir = tmp("spread");
        let _ = std::fs::remove_dir_all(&dir);
        let mut fr = FlightRecorder::new(&dir, 64).with_drop_burst(3, 1_000);
        for i in 0..10u64 {
            fr.record(&drop_ev(i * 10_000)); // 10 ms apart ≫ 1 ms window
        }
        assert!(fr.snapshots().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cooldown_spaces_automatic_snapshots() {
        let dir = tmp("cooldown");
        let _ = std::fs::remove_dir_all(&dir);
        let mut fr = FlightRecorder::new(&dir, 16)
            .with_drop_burst(2, u64::MAX)
            .with_cooldown(10);
        fr.record(&drop_ev(0));
        fr.record(&drop_ev(1)); // burst → snapshot 1
        fr.record(&drop_ev(2));
        fr.record(&drop_ev(3)); // burst again, but only 2 events since
        assert_eq!(fr.snapshots().len(), 1, "cooldown suppressed the second");
        // Explicit trigger ignores the cooldown.
        assert!(fr.trigger("manual").is_some());
        assert_eq!(fr.snapshots().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn filenames_are_deterministic_sequence() {
        let dir = tmp("seq");
        let _ = std::fs::remove_dir_all(&dir);
        let mut fr = FlightRecorder::new(&dir, 4).with_prefix("fr");
        fr.record(&drop_ev(1));
        fr.trigger("a");
        fr.trigger("b");
        let names: Vec<String> = fr
            .snapshots()
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["fr-0000-a-t1.jsonl", "fr-0001-b-t1.jsonl"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_hook_fires_with_path() {
        let dir = tmp("hook");
        let _ = std::fs::remove_dir_all(&dir);
        let hits = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let hits2 = hits.clone();
        let mut fr = FlightRecorder::new(&dir, 4).with_snapshot_hook(Box::new(move |p| {
            hits2.lock().unwrap().push(p.to_path_buf());
        }));
        fr.record(&drop_ev(7));
        let path = fr.trigger("x").expect("written");
        assert_eq!(hits.lock().unwrap().as_slice(), &[path]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
