//! Low-overhead hierarchical span profiler for hot-path phase timing.
//!
//! The sim engine, the CP solver and the svc shard workers are
//! instrumented with scoped RAII spans ([`enter`]) at a closed set of
//! sites ([`SpanId`]). The profiler is designed around two invariants:
//!
//! * **Zero cost when detached.** [`enter`] is a single relaxed atomic
//!   load followed by an immediate return of an inert guard: no
//!   allocation, no thread-local access, no timestamp. The workspace
//!   counting-allocator test asserts the no-alloc half; the simworld
//!   bench asserts the observable-output half (records are
//!   byte-identical with the profiler attached or detached, because
//!   spans never touch the deterministic event stream).
//! * **Bounded cost when attached.** Every span call counts exactly
//!   (one `fetch_add`), but wall-clock timing is *sampled*: only every
//!   `2^stride`-th call per site pays the two `Instant::now` reads and
//!   the recent-record ring push. Total time per site is estimated as
//!   `sampled_ns * calls / samples`. The profiler measures its own
//!   per-call cost at attach time ([`SpanReport::self_ns_per_call`]) so
//!   reported timings can be corrected for instrumentation overhead.
//!
//! Spans are hierarchical: a per-thread depth counter tags each sampled
//! record with its nesting depth (e.g. a `SimLockOn` span inside the
//! `SimEventLoop` span records depth 1). State is process-global and
//! merged across threads by construction (plain atomics per site), so
//! shard workers and GA scoring threads need no explicit flush.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Schema version stamped into [`SpanReport`].
pub const SPAN_REPORT_VERSION: u32 = 1;

/// Default sampling stride shift: time every `2^6 = 64`-th call.
pub const DEFAULT_STRIDE_SHIFT: u32 = 6;

/// Capacity of the ring of recent sampled records.
const RECENT_CAP: usize = 512;

/// Closed enumeration of instrumented sites.
///
/// Sites are a fixed, compile-time set so per-site statistics live in a
/// direct-indexed table with no hashing on the hot path. Adding a site
/// means adding a variant here and a name in [`SpanId::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanId {
    /// Monolithic engine: per-run plan/context build before the loop.
    SimPlanBuild = 0,
    /// Monolithic engine: timeline schedule sort.
    SimSortSchedule = 1,
    /// Monolithic engine: the main event loop (whole-run envelope).
    SimEventLoop = 2,
    /// Monolithic engine: one LockOn dispatch decision.
    SimLockOn = 3,
    /// Monolithic engine: one TxEnd interference-verdict batch.
    SimVerdicts = 4,
    /// Sharded engine: one chunk ingest into a shard machine.
    ShardIngest = 5,
    /// Sharded engine: one bounded drain to the safe frontier.
    ShardDrain = 6,
    /// Sharded engine: k-way merge of per-shard event streams.
    ShardMerge = 7,
    /// CP solver: one `score_batch` evaluation call.
    SolverEval = 8,
    /// CP solver: one genome mutation.
    SolverMutate = 9,
    /// CP solver: one genome repair pass.
    SolverRepair = 10,
    /// svc shard worker: one drained batch of ingest packets.
    SvcBatch = 11,
    /// Internal: self-overhead calibration loop.
    Calibrate = 12,
}

/// Number of [`SpanId`] variants (size of the site table).
pub const SPAN_SITE_COUNT: usize = 13;

impl SpanId {
    /// Stable human-readable site name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            SpanId::SimPlanBuild => "sim.plan_build",
            SpanId::SimSortSchedule => "sim.sort_schedule",
            SpanId::SimEventLoop => "sim.event_loop",
            SpanId::SimLockOn => "sim.lock_on",
            SpanId::SimVerdicts => "sim.verdicts",
            SpanId::ShardIngest => "shard.ingest",
            SpanId::ShardDrain => "shard.drain",
            SpanId::ShardMerge => "shard.merge",
            SpanId::SolverEval => "solver.eval",
            SpanId::SolverMutate => "solver.mutate",
            SpanId::SolverRepair => "solver.repair",
            SpanId::SvcBatch => "svc.batch",
            SpanId::Calibrate => "span.calibrate",
        }
    }

    fn from_index(i: usize) -> SpanId {
        match i {
            0 => SpanId::SimPlanBuild,
            1 => SpanId::SimSortSchedule,
            2 => SpanId::SimEventLoop,
            3 => SpanId::SimLockOn,
            4 => SpanId::SimVerdicts,
            5 => SpanId::ShardIngest,
            6 => SpanId::ShardDrain,
            7 => SpanId::ShardMerge,
            8 => SpanId::SolverEval,
            9 => SpanId::SolverMutate,
            10 => SpanId::SolverRepair,
            11 => SpanId::SvcBatch,
            _ => SpanId::Calibrate,
        }
    }
}

struct SiteCell {
    calls: AtomicU64,
    samples: AtomicU64,
    sampled_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SiteCell {
    const fn new() -> Self {
        SiteCell {
            calls: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            sampled_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const SITE_INIT: SiteCell = SiteCell::new();
static SITES: [SiteCell; SPAN_SITE_COUNT] = [SITE_INIT; SPAN_SITE_COUNT];

static ATTACHED: AtomicBool = AtomicBool::new(false);
static STRIDE_MASK: AtomicU64 = AtomicU64::new((1 << DEFAULT_STRIDE_SHIFT) - 1);
static SELF_NS: AtomicU64 = AtomicU64::new(0);

struct RecentRing {
    buf: Vec<RawRecord>,
    next: usize,
    attach_at: Option<Instant>,
}

#[derive(Clone, Copy)]
struct RawRecord {
    site: u8,
    depth: u32,
    t_us: u64,
    dur_ns: u64,
}

static RECENT: Mutex<RecentRing> = Mutex::new(RecentRing {
    buf: Vec::new(),
    next: 0,
    attach_at: None,
});

thread_local! {
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// RAII guard returned by [`enter`]; the span closes when it drops.
#[must_use = "a span guard times the scope it lives in"]
pub struct SpanGuard {
    site: u8,
    depth: u32,
    start: Option<Instant>,
    armed: bool,
}

/// Open a span at `site`. Free (one relaxed load) when detached.
#[inline]
pub fn enter(site: SpanId) -> SpanGuard {
    if !ATTACHED.load(Ordering::Relaxed) {
        return SpanGuard {
            site: site as u8,
            depth: 0,
            start: None,
            armed: false,
        };
    }
    enter_attached(site)
}

fn enter_attached(site: SpanId) -> SpanGuard {
    let cell = &SITES[site as usize];
    let n = cell.calls.fetch_add(1, Ordering::Relaxed);
    let mask = STRIDE_MASK.load(Ordering::Relaxed);
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        site: site as u8,
        depth,
        start: if n & mask == 0 {
            Some(Instant::now())
        } else {
            None
        },
        armed: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            let cell = &SITES[self.site as usize];
            cell.samples.fetch_add(1, Ordering::Relaxed);
            cell.sampled_ns.fetch_add(ns, Ordering::Relaxed);
            cell.max_ns.fetch_max(ns, Ordering::Relaxed);
            let mut ring = match RECENT.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            let t_us = ring
                .attach_at
                .map(|a| a.elapsed().as_micros() as u64)
                .unwrap_or(0);
            let rec = RawRecord {
                site: self.site,
                depth: self.depth,
                t_us,
                dur_ns: ns,
            };
            if ring.buf.len() < RECENT_CAP {
                ring.buf.push(rec);
            } else {
                let at = ring.next;
                ring.buf[at] = rec;
            }
            ring.next = (ring.next + 1) % RECENT_CAP;
        }
    }
}

/// Attach the profiler with the default sampling stride and calibrate
/// the per-call self-overhead. Idempotent; resets all statistics.
pub fn attach() {
    attach_with_stride(DEFAULT_STRIDE_SHIFT);
}

/// Attach with an explicit sampling stride shift (`0` times every
/// call — use in tests for exact durations). Resets all statistics.
pub fn attach_with_stride(stride_shift: u32) {
    reset();
    let shift = stride_shift.min(20);
    STRIDE_MASK.store((1u64 << shift) - 1, Ordering::Relaxed);
    {
        let mut ring = match RECENT.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        ring.attach_at = Some(Instant::now());
    }
    ATTACHED.store(true, Ordering::SeqCst);
    calibrate();
}

/// Detach the profiler. Statistics are retained until [`reset`] or the
/// next attach; subsequent [`enter`] calls are free again.
pub fn detach() {
    ATTACHED.store(false, Ordering::SeqCst);
}

/// Whether the profiler is currently attached.
pub fn is_attached() -> bool {
    ATTACHED.load(Ordering::Relaxed)
}

/// Zero every site statistic and clear the recent-record ring.
pub fn reset() {
    for cell in SITES.iter() {
        cell.calls.store(0, Ordering::Relaxed);
        cell.samples.store(0, Ordering::Relaxed);
        cell.sampled_ns.store(0, Ordering::Relaxed);
        cell.max_ns.store(0, Ordering::Relaxed);
    }
    let mut ring = match RECENT.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    ring.buf.clear();
    ring.next = 0;
}

/// Measure the profiler's own cost per *sampled* span call and record
/// it for [`SpanReport::self_ns_per_call`]. Runs a tight loop of
/// enter/drop pairs at stride 1 against the [`SpanId::Calibrate`] site,
/// then removes those calls from the site table.
pub fn calibrate() -> f64 {
    const ITERS: u64 = 4096;
    let saved_mask = STRIDE_MASK.load(Ordering::Relaxed);
    STRIDE_MASK.store(0, Ordering::Relaxed);
    let t0 = Instant::now();
    for _ in 0..ITERS {
        let _g = enter(SpanId::Calibrate);
    }
    let per_call = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    STRIDE_MASK.store(saved_mask, Ordering::Relaxed);
    // Remove the calibration traffic so reports only show real sites.
    let cell = &SITES[SpanId::Calibrate as usize];
    cell.calls.store(0, Ordering::Relaxed);
    cell.samples.store(0, Ordering::Relaxed);
    cell.sampled_ns.store(0, Ordering::Relaxed);
    cell.max_ns.store(0, Ordering::Relaxed);
    let mut ring = match RECENT.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    ring.buf.retain(|r| r.site != SpanId::Calibrate as u8);
    ring.next = ring.buf.len() % RECENT_CAP;
    SELF_NS.store(per_call as u64, Ordering::Relaxed);
    per_call
}

/// One sampled span occurrence in the recent-record ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Site name (see [`SpanId::name`]).
    pub site: String,
    /// Nesting depth at the time the span opened (0 = top level).
    pub depth: u32,
    /// Microseconds since profiler attach when the span closed.
    pub t_us: u64,
    /// Sampled wall duration of this occurrence, nanoseconds.
    pub dur_ns: u64,
}

/// Aggregated statistics for one instrumented site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSiteReport {
    /// Site name (see [`SpanId::name`]).
    pub site: String,
    /// Exact number of times the span was entered.
    pub calls: u64,
    /// Number of calls that were wall-clock sampled.
    pub samples: u64,
    /// Total sampled duration, nanoseconds.
    pub sampled_ns: u64,
    /// Mean sampled duration, nanoseconds.
    pub mean_ns: f64,
    /// Maximum sampled duration, nanoseconds.
    pub max_ns: u64,
    /// Estimated total time at this site: `sampled_ns * calls / samples`.
    pub est_total_ns: f64,
}

/// Point-in-time snapshot of the whole profiler, serializable to JSON
/// for the svc `/spans` endpoint and `obsctl spans`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Schema version ([`SPAN_REPORT_VERSION`]).
    pub version: u32,
    /// Whether the profiler was attached when the report was taken.
    pub attached: bool,
    /// Sampling stride in calls (1 = every call timed).
    pub stride: u64,
    /// Calibrated profiler self-cost per sampled call, nanoseconds.
    pub self_ns_per_call: u64,
    /// Per-site aggregates, site-table order, sites with zero calls
    /// omitted.
    pub sites: Vec<SpanSiteReport>,
    /// Most recent sampled records, oldest first.
    pub recent: Vec<SpanRecord>,
}

impl SpanReport {
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Snapshot current profiler state into a [`SpanReport`].
pub fn report() -> SpanReport {
    let mut sites = Vec::new();
    for (i, cell) in SITES.iter().enumerate() {
        let calls = cell.calls.load(Ordering::Relaxed);
        if calls == 0 {
            continue;
        }
        let samples = cell.samples.load(Ordering::Relaxed);
        let sampled_ns = cell.sampled_ns.load(Ordering::Relaxed);
        let mean = if samples > 0 {
            sampled_ns as f64 / samples as f64
        } else {
            0.0
        };
        sites.push(SpanSiteReport {
            site: SpanId::from_index(i).name().to_string(),
            calls,
            samples,
            sampled_ns,
            mean_ns: mean,
            max_ns: cell.max_ns.load(Ordering::Relaxed),
            est_total_ns: mean * calls as f64,
        });
    }
    let ring = match RECENT.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    let mut recent = Vec::with_capacity(ring.buf.len());
    if ring.buf.len() == RECENT_CAP {
        for off in 0..RECENT_CAP {
            let r = ring.buf[(ring.next + off) % RECENT_CAP];
            recent.push(r);
        }
    } else {
        recent.extend(ring.buf.iter().copied());
    }
    let recent = recent
        .into_iter()
        .map(|r| SpanRecord {
            site: SpanId::from_index(r.site as usize).name().to_string(),
            depth: r.depth,
            t_us: r.t_us,
            dur_ns: r.dur_ns,
        })
        .collect();
    SpanReport {
        version: SPAN_REPORT_VERSION,
        attached: is_attached(),
        stride: STRIDE_MASK.load(Ordering::Relaxed) + 1,
        self_ns_per_call: SELF_NS.load(Ordering::Relaxed),
        sites,
        recent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global; serialize tests that attach.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn detached_enter_is_inert() {
        let _l = lock();
        detach();
        reset();
        {
            let _g = enter(SpanId::SimLockOn);
        }
        let rep = report();
        assert!(rep.sites.is_empty());
        assert!(!rep.attached);
    }

    #[test]
    fn attached_counts_exactly_and_samples() {
        let _l = lock();
        attach_with_stride(2); // time every 4th call
        for _ in 0..100 {
            let _g = enter(SpanId::SolverEval);
        }
        let rep = report();
        detach();
        let site = rep
            .sites
            .iter()
            .find(|s| s.site == "solver.eval")
            .expect("site present");
        assert_eq!(site.calls, 100);
        assert_eq!(site.samples, 25);
        assert!(site.est_total_ns >= site.sampled_ns as f64);
        assert!(rep.self_ns_per_call < 100_000);
    }

    #[test]
    fn depth_tracks_nesting() {
        let _l = lock();
        attach_with_stride(0);
        {
            let _outer = enter(SpanId::SimEventLoop);
            let _inner = enter(SpanId::SimLockOn);
        }
        let rep = report();
        detach();
        let inner = rep
            .recent
            .iter()
            .find(|r| r.site == "sim.lock_on")
            .expect("inner record");
        assert_eq!(inner.depth, 1);
        let outer = rep
            .recent
            .iter()
            .find(|r| r.site == "sim.event_loop")
            .expect("outer record");
        assert_eq!(outer.depth, 0);
    }

    #[test]
    fn report_round_trips_json() {
        let _l = lock();
        attach_with_stride(0);
        {
            let _g = enter(SpanId::ShardDrain);
        }
        let rep = report();
        detach();
        let json = rep.to_json();
        let back: SpanReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, rep);
    }
}
