//! A dependency-free metrics registry and the event-stream aggregator.
//!
//! [`Registry`] holds named counters, gauges and fixed-bucket
//! [`Histogram`]s in sorted maps so every snapshot serializes in a
//! deterministic order. [`MetricsSink`] implements
//! [`ObsSink`] and folds the raw event stream
//! into the derived quantities the paper's analysis needs: per-gateway
//! decoder-occupancy timelines (the quantity behind the decoder
//! contention losses of Fig. 4), per-gateway utilization, and a
//! dispatch-latency histogram (how long each decoder was held).

use crate::event::ObsEvent;
use crate::sink::ObsSink;
use std::collections::{BTreeMap, HashMap};

/// Default bucket upper bounds (µs) for the dispatch-latency histogram:
/// spans LoRa airtimes from a short SF7 frame (~50 ms) to a max-length
/// SF12 frame (~3 s).
pub const DISPATCH_LATENCY_BOUNDS_US: [u64; 8] = [
    25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000,
];

/// Bucket upper bounds (µs) for the CP-solver wall-time histogram:
/// spans a sub-millisecond toy instance to a minute-scale
/// production-size search.
pub const SOLVER_WALL_BOUNDS_US: [u64; 8] = [
    1_000, 10_000, 100_000, 500_000, 1_000_000, 5_000_000, 15_000_000, 60_000_000,
];

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets use upper-inclusive bounds (Prometheus `le` semantics): a
/// sample lands in the first bucket whose bound is ≥ the sample; samples
/// above the last bound land in the implicit overflow bucket, so
/// `counts` has `bounds.len() + 1` entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given strictly-increasing upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest sample observed (0 with no samples).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper-bound estimate of quantile `q` ∈ [0, 1]: the bound of the
    /// first bucket whose cumulative count reaches `⌈q·total⌉`, capped
    /// at the largest sample actually observed (so a histogram whose
    /// samples all fit the first bucket does not report that bucket's
    /// full width). Samples in the overflow bucket resolve to the max.
    /// Returns 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return match self.bounds.get(i) {
                    Some(&b) => b.min(self.max),
                    None => self.max, // overflow bucket
                };
            }
        }
        self.max
    }

    /// Median upper-bound estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile upper-bound estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile upper-bound estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Named counters, gauges and histograms with deterministic iteration
/// order (sorted by name).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Read counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Read gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record `v` into histogram `name`, creating it with `bounds` on
    /// first use.
    pub fn observe(&mut self, name: &str, bounds: &[u64], v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Read histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Render the registry in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` line per metric, histogram buckets
    /// as cumulative `_bucket{le="…"}` series ending in `+Inf`, plus
    /// `_sum` and `_count`. Metric names are sanitized to
    /// `[a-zA-Z0-9_:]` (anything else becomes `_`). Output order is the
    /// registries' sorted iteration order, so two identical registries
    /// render byte-identically — scrape endpoints stay diffable.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in self.counters() {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in self.gauges() {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in self.histograms() {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (i, &c) in h.counts().iter().enumerate() {
                cum += c;
                match h.bounds().get(i) {
                    Some(b) => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cum}");
                    }
                    None => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.total());
        }
        out
    }
}

/// Point-in-time process memory reading from `/proc/self/status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcMem {
    /// Resident set size, bytes (`VmRSS`).
    pub rss_bytes: u64,
    /// Peak resident set size, bytes (`VmHWM`).
    pub peak_rss_bytes: u64,
}

/// Read the current process's RSS and peak RSS from
/// `/proc/self/status`. Returns `None` on platforms without procfs or
/// if the fields are missing — callers treat memory telemetry as
/// best-effort.
pub fn proc_mem() -> Option<ProcMem> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let field = |key: &str| -> Option<u64> {
        status
            .lines()
            .find(|l| l.starts_with(key))?
            .split_whitespace()
            .nth(1)?
            .parse::<u64>()
            .ok()
            .map(|kb| kb * 1024)
    };
    Some(ProcMem {
        rss_bytes: field("VmRSS:")?,
        peak_rss_bytes: field("VmHWM:")?,
    })
}

impl Registry {
    /// Sample process memory into the `process_rss_bytes` /
    /// `process_peak_rss_bytes` gauges (no-op where procfs is
    /// unavailable). Returns the reading.
    pub fn sample_process_memory(&mut self) -> Option<ProcMem> {
        let mem = proc_mem()?;
        self.set_gauge("process_rss_bytes", mem.rss_bytes as f64);
        self.set_gauge("process_peak_rss_bytes", mem.peak_rss_bytes as f64);
        Some(mem)
    }
}

/// Sanitize a metric name for the Prometheus exposition format.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Per-gateway occupancy bookkeeping derived from decoder events.
#[derive(Debug, Clone, Default)]
pub struct GatewayOccupancy {
    /// Pool capacity as reported by acquisition events.
    pub capacity: u32,
    /// Step function of pool occupancy: (time µs, decoders in use
    /// *after* the event). Consecutive events at one instant each get a
    /// point; plotters draw steps.
    pub timeline: Vec<(u64, u32)>,
    /// Highest occupancy observed.
    pub peak_in_use: u32,
    /// ∫ in_use dt over the observed span, in decoder-µs.
    busy_integral: u128,
    /// Observed span: sum of forward inter-event gaps, in µs. One
    /// sink may aggregate several runs whose simulation clocks each
    /// restart at zero; a backwards time jump contributes nothing to
    /// either integral, so utilization stays a true busy fraction.
    observed_us: u128,
    first_t: Option<u64>,
    last_t: u64,
    last_in_use: u32,
}

impl GatewayOccupancy {
    fn step(&mut self, t_us: u64, in_use: u32) {
        if self.first_t.is_none() {
            self.first_t = Some(t_us);
        } else {
            let dt = t_us.saturating_sub(self.last_t);
            self.busy_integral += dt as u128 * self.last_in_use as u128;
            self.observed_us += dt as u128;
        }
        self.last_t = t_us;
        self.last_in_use = in_use;
        self.peak_in_use = self.peak_in_use.max(in_use);
        self.timeline.push((t_us, in_use));
    }

    /// Mean fraction of the pool busy over the observed span
    /// (`∫ in_use dt / (capacity · span)`), 0 when nothing was observed.
    pub fn utilization(&self) -> f64 {
        if self.observed_us == 0 || self.capacity == 0 {
            return 0.0;
        }
        self.busy_integral as f64 / (self.capacity as f64 * self.observed_us as f64)
    }
}

/// An [`ObsSink`] that aggregates the event stream into a [`Registry`]
/// plus per-gateway occupancy state. Attach it (directly, behind a
/// [`SharedSink`](crate::sink::SharedSink), or teed with a
/// [`JsonlSink`](crate::sink::JsonlSink)) and read the results back as
/// a [`RunReport`](crate::report::RunReport) via
/// [`RunReport::from_metrics`](crate::report::RunReport::from_metrics).
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    registry: Registry,
    gateways: BTreeMap<u32, GatewayOccupancy>,
    /// Acquisition instant of each decoder currently held, keyed by
    /// (gateway, transmission) — feeds the dispatch-latency histogram.
    held: HashMap<(u32, u64), u64>,
    events: u64,
}

impl MetricsSink {
    /// An empty aggregator.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// Events consumed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The aggregated registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Per-gateway occupancy state, keyed by gateway index.
    pub fn gateways(&self) -> &BTreeMap<u32, GatewayOccupancy> {
        &self.gateways
    }
}

impl ObsSink for MetricsSink {
    fn record(&mut self, ev: &ObsEvent) {
        self.events += 1;
        self.registry.inc(ev.kind_name(), 1);
        match *ev {
            ObsEvent::GatewayInfo { gw, capacity, .. } => {
                // Announce the pool size up front so utilization is
                // well-defined even for a gateway that never admits.
                self.gateways.entry(gw).or_default().capacity = capacity;
            }
            ObsEvent::DecoderAcquired {
                t_us,
                gw,
                tx,
                in_use,
                capacity,
                ..
            } => {
                let occ = self.gateways.entry(gw).or_default();
                occ.capacity = capacity;
                occ.step(t_us, in_use);
                self.held.insert((gw, tx), t_us);
            }
            ObsEvent::DecoderReleased {
                t_us,
                gw,
                tx,
                in_use,
                ..
            } => {
                let occ = self.gateways.entry(gw).or_default();
                occ.step(t_us, in_use);
                if let Some(t0) = self.held.remove(&(gw, tx)) {
                    self.registry.observe(
                        "dispatch_latency_us",
                        &DISPATCH_LATENCY_BOUNDS_US,
                        t_us.saturating_sub(t0),
                    );
                }
            }
            ObsEvent::PacketOutcome {
                delivered, cause, ..
            } => {
                if delivered {
                    self.registry.inc("delivered", 1);
                } else {
                    self.registry.inc("lost", 1);
                    if let Some(kind) = cause {
                        self.registry.inc(&format!("loss_{kind:?}"), 1);
                    }
                }
            }
            ObsEvent::Dedup { outcome, .. } => {
                self.registry.inc(&format!("dedup_{outcome:?}"), 1);
            }
            ObsEvent::MasterPlanServed { source, .. } => {
                self.registry.inc(&format!("master_plan_{source:?}"), 1);
            }
            ObsEvent::SolverRun {
                solver,
                evaluations,
                wall_us,
                ..
            } => {
                self.registry.inc(&format!("solver_{solver:?}_runs"), 1);
                self.registry.inc("solver_evaluations", evaluations);
                self.registry
                    .observe("solver_wall_us", &SOLVER_WALL_BOUNDS_US, wall_us);
                if wall_us > 0 {
                    self.registry.set_gauge(
                        "solver_evals_per_sec",
                        evaluations as f64 / (wall_us as f64 / 1e6),
                    );
                }
            }
            ObsEvent::SimRunStats {
                txs,
                events,
                candidate_visits,
                candidate_ceiling,
                accum_updates,
                accum_undos,
                accum_evictions,
                wheel_cascades,
                wall_us,
                ..
            } => {
                self.registry.inc("sim_runs", 1);
                self.registry.inc("sim_txs", txs);
                self.registry.inc("sim_events", events);
                self.registry.inc("sim_candidate_visits", candidate_visits);
                self.registry
                    .inc("sim_candidate_ceiling", candidate_ceiling);
                // Accumulator-path counters (see `sim::shard` accum
                // mode); all 0 for scan-mode runs, so soak dashboards
                // can tell which hot path a run exercised.
                self.registry.inc("sim_accum_updates", accum_updates);
                self.registry.inc("sim_accum_undos", accum_undos);
                self.registry.inc("sim_accum_evictions", accum_evictions);
                self.registry
                    .inc("sim_accum_wheel_cascades", wheel_cascades);
                if wall_us > 0 {
                    self.registry
                        .set_gauge("sim_events_per_sec", events as f64 / (wall_us as f64 / 1e6));
                }
            }
            ObsEvent::SimShardStats {
                txs,
                events,
                candidate_visits,
                peak_live,
                ..
            } => {
                self.registry.inc("sim_shards", 1);
                self.registry.inc("sim_shard_txs", txs);
                self.registry.inc("sim_shard_events", events);
                self.registry
                    .inc("sim_shard_candidate_visits", candidate_visits);
                self.registry.inc("sim_shard_peak_live", peak_live);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DedupKind, LossKind};

    #[test]
    fn histogram_bucket_edges_are_upper_inclusive() {
        let mut h = Histogram::new(&[10, 20]);
        h.observe(0); // first bucket
        h.observe(10); // exactly on the first bound → first bucket
        h.observe(11); // second bucket
        h.observe(20); // exactly on the last bound → second bucket
        h.observe(21); // overflow
        assert_eq!(h.counts(), &[2, 2, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.sum(), 62);
        assert!((h.mean() - 12.4).abs() < 1e-12);
    }

    #[test]
    fn histogram_single_bucket_and_overflow() {
        let mut h = Histogram::new(&[5]);
        h.observe(5);
        h.observe(6);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_empty_bounds() {
        Histogram::new(&[]);
    }

    #[test]
    fn registry_counters_and_gauges() {
        let mut r = Registry::new();
        r.inc("a", 2);
        r.inc("a", 3);
        r.set_gauge("g", 1.5);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(1.5));
        let names: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a"], "sorted, deterministic iteration");
    }

    fn acquire(t: u64, gw: u32, tx: u64, in_use: u32) -> ObsEvent {
        ObsEvent::DecoderAcquired {
            t_us: t,
            trace: 0,
            gw,
            tx,
            in_use,
            capacity: 16,
        }
    }

    fn release(t: u64, gw: u32, tx: u64, in_use: u32) -> ObsEvent {
        ObsEvent::DecoderReleased {
            t_us: t,
            trace: 0,
            gw,
            tx,
            in_use,
        }
    }

    #[test]
    fn occupancy_timeline_and_utilization() {
        let mut m = MetricsSink::new();
        // One decoder busy from t=0 to t=100, then two from 100..200,
        // then zero: ∫ in_use dt = 1·100 + 2·100 = 300 decoder-µs over
        // a 200 µs span of a 16-decoder pool.
        m.record(&acquire(0, 0, 1, 1));
        m.record(&acquire(100, 0, 2, 2));
        m.record(&release(200, 0, 1, 1));
        m.record(&release(200, 0, 2, 0));
        let occ = &m.gateways()[&0];
        assert_eq!(occ.timeline, vec![(0, 1), (100, 2), (200, 1), (200, 0)]);
        assert_eq!(occ.peak_in_use, 2);
        assert!((occ.utilization() - 300.0 / (16.0 * 200.0)).abs() < 1e-12);
        // Dispatch latency: tx 1 held 200 µs, tx 2 held 100 µs.
        let h = m.registry().histogram("dispatch_latency_us").unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.sum(), 300);
    }

    #[test]
    fn utilization_survives_clock_restarts() {
        // One sink fed by two runs whose simulation clocks both start
        // near zero (the bench harness aggregates a whole process).
        // The backwards jump between runs must not inflate utilization
        // past the true busy fraction.
        let mut m = MetricsSink::new();
        for _run in 0..2 {
            m.record(&acquire(1_000, 0, 1, 1));
            m.record(&release(2_000, 0, 1, 0));
        }
        let occ = &m.gateways()[&0];
        // Each run: 1 decoder busy for 1 000 of 1 000 observed µs.
        assert!((occ.utilization() - 2_000.0 / (16.0 * 2_000.0)).abs() < 1e-12);
        assert!(occ.utilization() <= 1.0);
    }

    #[test]
    fn outcome_and_dedup_counters() {
        let mut m = MetricsSink::new();
        m.record(&ObsEvent::PacketOutcome {
            t_us: 1,
            trace: 0,
            tx: 0,
            delivered: true,
            cause: None,
        });
        m.record(&ObsEvent::PacketOutcome {
            t_us: 2,
            trace: 0,
            tx: 1,
            delivered: false,
            cause: Some(LossKind::DecoderInter),
        });
        m.record(&ObsEvent::Dedup {
            t_us: 3,
            trace: 0,
            dev: 1,
            fcnt: 0,
            gw: 0,
            outcome: DedupKind::Late,
        });
        assert_eq!(m.registry().counter("delivered"), 1);
        assert_eq!(m.registry().counter("lost"), 1);
        assert_eq!(m.registry().counter("loss_DecoderInter"), 1);
        assert_eq!(m.registry().counter("dedup_Late"), 1);
        assert_eq!(m.registry().counter("packet_outcome"), 2);
        assert_eq!(m.events(), 3);
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds_capped_by_max() {
        let mut h = Histogram::new(&[10, 100, 1_000]);
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 600] {
            h.observe(v);
        }
        // 9 of 10 samples sit in the ≤10 bucket: p50 resolves to that
        // bucket's bound.
        assert_eq!(h.p50(), 10);
        // p95 needs the 10th sample, which sits in the ≤1000 bucket;
        // the cap trims the estimate to the observed max.
        assert_eq!(h.p95(), 600);
        assert_eq!(h.p99(), 600);
        assert_eq!(h.max(), 600);
    }

    #[test]
    fn quantiles_on_empty_and_overflow() {
        let h = Histogram::new(&[10]);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        let mut h = Histogram::new(&[10]);
        h.observe(5_000); // overflow bucket
        assert_eq!(h.p50(), 5_000, "overflow resolves to the observed max");
        // All samples below the first bound: the cap keeps the estimate
        // at the true max instead of the bucket's full width.
        let mut h = Histogram::new(&[1_000_000]);
        h.observe(3);
        h.observe(4);
        assert_eq!(h.p99(), 4);
    }

    #[test]
    fn prometheus_exposition_format() {
        let mut r = Registry::new();
        r.inc("delivered", 42);
        r.inc("loss_DecoderInter", 3);
        r.set_gauge("gw0_utilization", 0.25);
        r.observe("latency_us", &[10, 20], 5);
        r.observe("latency_us", &[10, 20], 15);
        r.observe("latency_us", &[10, 20], 99);
        let text = r.render_prometheus();
        let expected = "\
# TYPE delivered counter
delivered 42
# TYPE loss_DecoderInter counter
loss_DecoderInter 3
# TYPE gw0_utilization gauge
gw0_utilization 0.25
# TYPE latency_us histogram
latency_us_bucket{le=\"10\"} 1
latency_us_bucket{le=\"20\"} 2
latency_us_bucket{le=\"+Inf\"} 3
latency_us_sum 119
latency_us_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_sanitizes_names() {
        let mut r = Registry::new();
        r.inc("loss/decoder-inter", 1);
        r.inc("9lives", 1);
        let text = r.render_prometheus();
        assert!(text.contains("loss_decoder_inter 1"));
        assert!(text.contains("_9lives 1"), "{text}");
        assert!(!text.contains('/'));
    }

    #[test]
    fn process_memory_gauges_on_linux() {
        // Linux-only assertion; elsewhere proc_mem is allowed to be None.
        if let Some(mem) = proc_mem() {
            assert!(mem.rss_bytes > 0);
            assert!(mem.peak_rss_bytes >= mem.rss_bytes);
            let mut r = Registry::new();
            let sampled = r.sample_process_memory().unwrap();
            assert!(r.gauge("process_rss_bytes").unwrap() > 0.0);
            let peak = r.gauge("process_peak_rss_bytes").unwrap();
            assert!(peak >= sampled.rss_bytes as f64 * 0.5, "peak {peak} sane");
        }
    }

    #[test]
    fn gateway_info_seeds_capacity() {
        let mut m = MetricsSink::new();
        m.record(&ObsEvent::GatewayInfo {
            gw: 3,
            network: 1,
            capacity: 8,
        });
        assert_eq!(m.gateways()[&3].capacity, 8);
        assert_eq!(m.registry().counter("gateway_info"), 1);
    }
}
