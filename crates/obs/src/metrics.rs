//! A dependency-free metrics registry and the event-stream aggregator.
//!
//! [`Registry`] holds named counters, gauges and fixed-bucket
//! [`Histogram`]s in sorted maps so every snapshot serializes in a
//! deterministic order. [`MetricsSink`] implements
//! [`ObsSink`] and folds the raw event stream
//! into the derived quantities the paper's analysis needs: per-gateway
//! decoder-occupancy timelines (the quantity behind the decoder
//! contention losses of Fig. 4), per-gateway utilization, and a
//! dispatch-latency histogram (how long each decoder was held).

use crate::event::ObsEvent;
use crate::sink::ObsSink;
use std::collections::{BTreeMap, HashMap};

/// Default bucket upper bounds (µs) for the dispatch-latency histogram:
/// spans LoRa airtimes from a short SF7 frame (~50 ms) to a max-length
/// SF12 frame (~3 s).
pub const DISPATCH_LATENCY_BOUNDS_US: [u64; 8] = [
    25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000,
];

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets use upper-inclusive bounds (Prometheus `le` semantics): a
/// sample lands in the first bucket whose bound is ≥ the sample; samples
/// above the last bound land in the implicit overflow bucket, so
/// `counts` has `bounds.len() + 1` entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram with the given strictly-increasing upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }
}

/// Named counters, gauges and histograms with deterministic iteration
/// order (sorted by name).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Read counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Read gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record `v` into histogram `name`, creating it with `bounds` on
    /// first use.
    pub fn observe(&mut self, name: &str, bounds: &[u64], v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Read histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Per-gateway occupancy bookkeeping derived from decoder events.
#[derive(Debug, Clone, Default)]
pub struct GatewayOccupancy {
    /// Pool capacity as reported by acquisition events.
    pub capacity: u32,
    /// Step function of pool occupancy: (time µs, decoders in use
    /// *after* the event). Consecutive events at one instant each get a
    /// point; plotters draw steps.
    pub timeline: Vec<(u64, u32)>,
    /// Highest occupancy observed.
    pub peak_in_use: u32,
    /// ∫ in_use dt over the observed span, in decoder-µs.
    busy_integral: u128,
    /// Observed span: sum of forward inter-event gaps, in µs. One
    /// sink may aggregate several runs whose simulation clocks each
    /// restart at zero; a backwards time jump contributes nothing to
    /// either integral, so utilization stays a true busy fraction.
    observed_us: u128,
    first_t: Option<u64>,
    last_t: u64,
    last_in_use: u32,
}

impl GatewayOccupancy {
    fn step(&mut self, t_us: u64, in_use: u32) {
        if self.first_t.is_none() {
            self.first_t = Some(t_us);
        } else {
            let dt = t_us.saturating_sub(self.last_t);
            self.busy_integral += dt as u128 * self.last_in_use as u128;
            self.observed_us += dt as u128;
        }
        self.last_t = t_us;
        self.last_in_use = in_use;
        self.peak_in_use = self.peak_in_use.max(in_use);
        self.timeline.push((t_us, in_use));
    }

    /// Mean fraction of the pool busy over the observed span
    /// (`∫ in_use dt / (capacity · span)`), 0 when nothing was observed.
    pub fn utilization(&self) -> f64 {
        if self.observed_us == 0 || self.capacity == 0 {
            return 0.0;
        }
        self.busy_integral as f64 / (self.capacity as f64 * self.observed_us as f64)
    }
}

/// An [`ObsSink`] that aggregates the event stream into a [`Registry`]
/// plus per-gateway occupancy state. Attach it (directly, behind a
/// [`SharedSink`](crate::sink::SharedSink), or teed with a
/// [`JsonlSink`](crate::sink::JsonlSink)) and read the results back as
/// a [`RunReport`](crate::report::RunReport) via
/// [`RunReport::from_metrics`](crate::report::RunReport::from_metrics).
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    registry: Registry,
    gateways: BTreeMap<u32, GatewayOccupancy>,
    /// Acquisition instant of each decoder currently held, keyed by
    /// (gateway, transmission) — feeds the dispatch-latency histogram.
    held: HashMap<(u32, u64), u64>,
    events: u64,
}

impl MetricsSink {
    /// An empty aggregator.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// Events consumed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The aggregated registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Per-gateway occupancy state, keyed by gateway index.
    pub fn gateways(&self) -> &BTreeMap<u32, GatewayOccupancy> {
        &self.gateways
    }
}

impl ObsSink for MetricsSink {
    fn record(&mut self, ev: &ObsEvent) {
        self.events += 1;
        self.registry.inc(ev.kind_name(), 1);
        match *ev {
            ObsEvent::DecoderAcquired {
                t_us,
                gw,
                tx,
                in_use,
                capacity,
            } => {
                let occ = self.gateways.entry(gw).or_default();
                occ.capacity = capacity;
                occ.step(t_us, in_use);
                self.held.insert((gw, tx), t_us);
            }
            ObsEvent::DecoderReleased {
                t_us,
                gw,
                tx,
                in_use,
            } => {
                let occ = self.gateways.entry(gw).or_default();
                occ.step(t_us, in_use);
                if let Some(t0) = self.held.remove(&(gw, tx)) {
                    self.registry.observe(
                        "dispatch_latency_us",
                        &DISPATCH_LATENCY_BOUNDS_US,
                        t_us.saturating_sub(t0),
                    );
                }
            }
            ObsEvent::PacketOutcome {
                delivered, cause, ..
            } => {
                if delivered {
                    self.registry.inc("delivered", 1);
                } else {
                    self.registry.inc("lost", 1);
                    if let Some(kind) = cause {
                        self.registry.inc(&format!("loss_{kind:?}"), 1);
                    }
                }
            }
            ObsEvent::Dedup { outcome, .. } => {
                self.registry.inc(&format!("dedup_{outcome:?}"), 1);
            }
            ObsEvent::MasterPlanServed { source, .. } => {
                self.registry.inc(&format!("master_plan_{source:?}"), 1);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DedupKind, LossKind};

    #[test]
    fn histogram_bucket_edges_are_upper_inclusive() {
        let mut h = Histogram::new(&[10, 20]);
        h.observe(0); // first bucket
        h.observe(10); // exactly on the first bound → first bucket
        h.observe(11); // second bucket
        h.observe(20); // exactly on the last bound → second bucket
        h.observe(21); // overflow
        assert_eq!(h.counts(), &[2, 2, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.sum(), 62);
        assert!((h.mean() - 12.4).abs() < 1e-12);
    }

    #[test]
    fn histogram_single_bucket_and_overflow() {
        let mut h = Histogram::new(&[5]);
        h.observe(5);
        h.observe(6);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_empty_bounds() {
        Histogram::new(&[]);
    }

    #[test]
    fn registry_counters_and_gauges() {
        let mut r = Registry::new();
        r.inc("a", 2);
        r.inc("a", 3);
        r.set_gauge("g", 1.5);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(1.5));
        let names: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a"], "sorted, deterministic iteration");
    }

    fn acquire(t: u64, gw: u32, tx: u64, in_use: u32) -> ObsEvent {
        ObsEvent::DecoderAcquired {
            t_us: t,
            gw,
            tx,
            in_use,
            capacity: 16,
        }
    }

    fn release(t: u64, gw: u32, tx: u64, in_use: u32) -> ObsEvent {
        ObsEvent::DecoderReleased {
            t_us: t,
            gw,
            tx,
            in_use,
        }
    }

    #[test]
    fn occupancy_timeline_and_utilization() {
        let mut m = MetricsSink::new();
        // One decoder busy from t=0 to t=100, then two from 100..200,
        // then zero: ∫ in_use dt = 1·100 + 2·100 = 300 decoder-µs over
        // a 200 µs span of a 16-decoder pool.
        m.record(&acquire(0, 0, 1, 1));
        m.record(&acquire(100, 0, 2, 2));
        m.record(&release(200, 0, 1, 1));
        m.record(&release(200, 0, 2, 0));
        let occ = &m.gateways()[&0];
        assert_eq!(occ.timeline, vec![(0, 1), (100, 2), (200, 1), (200, 0)]);
        assert_eq!(occ.peak_in_use, 2);
        assert!((occ.utilization() - 300.0 / (16.0 * 200.0)).abs() < 1e-12);
        // Dispatch latency: tx 1 held 200 µs, tx 2 held 100 µs.
        let h = m.registry().histogram("dispatch_latency_us").unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.sum(), 300);
    }

    #[test]
    fn utilization_survives_clock_restarts() {
        // One sink fed by two runs whose simulation clocks both start
        // near zero (the bench harness aggregates a whole process).
        // The backwards jump between runs must not inflate utilization
        // past the true busy fraction.
        let mut m = MetricsSink::new();
        for _run in 0..2 {
            m.record(&acquire(1_000, 0, 1, 1));
            m.record(&release(2_000, 0, 1, 0));
        }
        let occ = &m.gateways()[&0];
        // Each run: 1 decoder busy for 1 000 of 1 000 observed µs.
        assert!((occ.utilization() - 2_000.0 / (16.0 * 2_000.0)).abs() < 1e-12);
        assert!(occ.utilization() <= 1.0);
    }

    #[test]
    fn outcome_and_dedup_counters() {
        let mut m = MetricsSink::new();
        m.record(&ObsEvent::PacketOutcome {
            t_us: 1,
            tx: 0,
            delivered: true,
            cause: None,
        });
        m.record(&ObsEvent::PacketOutcome {
            t_us: 2,
            tx: 1,
            delivered: false,
            cause: Some(LossKind::DecoderInter),
        });
        m.record(&ObsEvent::Dedup {
            t_us: 3,
            dev: 1,
            fcnt: 0,
            gw: 0,
            outcome: DedupKind::Late,
        });
        assert_eq!(m.registry().counter("delivered"), 1);
        assert_eq!(m.registry().counter("lost"), 1);
        assert_eq!(m.registry().counter("loss_DecoderInter"), 1);
        assert_eq!(m.registry().counter("dedup_Late"), 1);
        assert_eq!(m.registry().counter("packet_outcome"), 2);
        assert_eq!(m.events(), 3);
    }
}
