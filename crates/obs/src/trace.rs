//! Packet-lifecycle tracing: deterministic trace ids, causal timeline
//! reconstruction, decoder-contention attribution, and Chrome
//! trace-event export.
//!
//! The event taxonomy ([`crate::event`]) records *point* moments; this
//! module joins them into causal spans. A [`TraceId`] is minted once
//! per uplink transmission by the simulator and threaded — as a plain
//! `u64`, so the cost when the sink is disabled is one register move —
//! through PHY airtime, gateway lock-on, decoder hold, the forwarder
//! wire format, and server-side dedup. Every event that carries the
//! same id is an edge of one packet's causal graph, including the
//! cross-gateway fan-out when several gateways hear the same
//! transmission.
//!
//! [`TraceAnalyzer`] folds an event stream (typically a JSONL file
//! re-parsed line by line) into per-packet [`PacketTimeline`]s and a
//! [`ContentionReport`]: who held decoder-seconds at which gateway,
//! and — for every [`ObsEvent::PoolFullDrop`] — exactly which packets
//! (the *blockers*) occupied the pool that the dropped packet (the
//! *victim*) needed. Foreign-network decoder-seconds are the paper's
//! Strategy ①/②/⑧ effect size: the occupancy those strategies would
//! displace.
//!
//! The analyzer also checks stream causality ([`CausalityViolation`]):
//! a decoder released before (or without) its acquisition, an acquire
//! for a trace that never locked on, a hold that never ends. A healthy
//! full-run stream has none; truncated streams (e.g. a
//! [`crate::flight::FlightRecorder`] snapshot) legitimately report
//! boundary violations for spans cut by the window edge.

use crate::event::{DedupKind, LossKind, ObsEvent, PlanServed};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A per-transmission trace identifier.
///
/// Plain `u64` on the wire and in events; this alias documents intent
/// at API boundaries. `0` is the reserved "untraced" sentinel (old
/// streams, call sites that predate tracing), and the top bit
/// distinguishes control-plane traces from packet traces — see
/// [`packet_trace`] and [`control_trace`].
pub type TraceId = u64;

/// Tag bit that marks a control-plane trace (Master plan requests).
const CONTROL_TAG: u64 = 1 << 63;

/// splitmix64 finalizer: the standard 64-bit avalanche mix. Purely
/// arithmetic, so ids are identical across runs, platforms and builds —
/// the determinism contract extends to trace ids.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mint the trace id for transmission `tx` of run `run_epoch`.
///
/// `tx` ids restart at 0 every run, but one JSONL stream may hold many
/// runs (the bench session appends); hashing the run epoch in keeps
/// ids unique across the whole stream while staying deterministic for
/// a fixed (epoch, tx) pair. Never returns 0 and never sets the
/// control tag bit.
pub fn packet_trace(run_epoch: u64, tx: u64) -> TraceId {
    let id = mix(run_epoch ^ mix(tx)) & !CONTROL_TAG;
    if id == 0 {
        // One-in-2^63 collision with the sentinel: remap to a fixed
        // non-zero id rather than branch on every caller.
        0x5EED
    } else {
        id
    }
}

/// Mint a control-plane trace id for the `seq`-th Master request of
/// client `endpoint`. Tagged with the top bit so analyzers can
/// separate control traffic from packet traffic; never returns 0.
pub fn control_trace(endpoint: u64, seq: u64) -> TraceId {
    mix(endpoint ^ mix(seq ^ 0xC0FF_EE00)) | CONTROL_TAG
}

/// Whether `trace` was minted by [`control_trace`].
pub fn is_control(trace: TraceId) -> bool {
    trace & CONTROL_TAG != 0
}

/// A gateway's static identity, learned from [`ObsEvent::GatewayInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayIdentity {
    /// Operator/network that deployed the gateway.
    pub network: u32,
    /// Decoder pool hardware capacity.
    pub capacity: u32,
}

/// One decoder occupancy span at one gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderHold {
    /// Gateway index.
    pub gw: u32,
    /// Acquisition instant, µs.
    pub start_us: u64,
    /// Release instant, µs; `None` when the stream ended (or was
    /// truncated) before the release.
    pub end_us: Option<u64>,
}

/// A pool-full drop of this packet at one gateway, from the victim's
/// point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayDrop {
    /// Gateway index.
    pub gw: u32,
    /// Drop instant, µs.
    pub t_us: u64,
    /// Foreign-held decoders at the instant of the drop (from the
    /// paired [`ObsEvent::StealRefused`]; 0 when none was emitted).
    pub foreign_held: u32,
}

/// A server-side dedup classification of one uplink copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerReceipt {
    /// Reporting gateway.
    pub gw: u32,
    /// Reception timestamp, µs.
    pub t_us: u64,
    /// Dedup outcome.
    pub outcome: DedupKind,
}

/// The reconstructed lifecycle of one traced transmission: airtime
/// endpoints, the per-gateway decoder holds and drops (cross-gateway
/// fan-out), the final verdict, and any server-side receipts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PacketTimeline {
    /// The trace id joining all of this packet's events.
    pub trace: TraceId,
    /// Simulator transmission id (not unique across runs).
    pub tx: u64,
    /// Sending node, when a `TxStart`/`PacketLockOn` was seen.
    pub node: Option<u64>,
    /// Sender's network, when known.
    pub network: Option<u32>,
    /// First preamble symbol on air, µs.
    pub start_us: Option<u64>,
    /// Preamble end (the FCFS dispatch instant), µs.
    pub lock_on_us: Option<u64>,
    /// Airtime end / final verdict instant, µs.
    pub outcome_us: Option<u64>,
    /// Final verdict, when a `PacketOutcome` was seen.
    pub delivered: Option<bool>,
    /// Loss cause when not delivered.
    pub cause: Option<LossKind>,
    /// Decoder occupancy spans, one per admitting gateway.
    pub holds: Vec<DecoderHold>,
    /// Pool-full drops, one per refusing gateway.
    pub drops: Vec<GatewayDrop>,
    /// Network-server dedup receipts for this packet's copies.
    pub receipts: Vec<ServerReceipt>,
}

impl PacketTimeline {
    /// Total decoder-µs this packet held across all gateways (spans
    /// without a release contribute nothing).
    pub fn decoder_us(&self) -> u64 {
        self.holds
            .iter()
            .filter_map(|h| Some(h.end_us?.saturating_sub(h.start_us)))
            .sum()
    }
}

/// The reconstructed lifecycle of one control-plane (Master) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControlTimeline {
    /// The control trace id.
    pub trace: TraceId,
    /// TCP connect attempts observed.
    pub connect_attempts: u32,
    /// Failed connect attempts among them.
    pub connect_failures: u32,
    /// RPC-level session retries observed.
    pub rpc_retries: u32,
    /// How the plan was finally served, when a `MasterPlanServed` was
    /// seen.
    pub served: Option<PlanServed>,
    /// Channels in the served plan.
    pub channels: u32,
}

/// One packet that occupied a decoder at the instant a victim was
/// dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocker {
    /// The blocker's trace id (0 when the hold was untraced).
    pub trace: TraceId,
    /// The blocker's transmission id.
    pub tx: u64,
    /// The blocker's network, when known.
    pub network: Option<u32>,
    /// When the blocker acquired the decoder it is holding, µs.
    pub held_since_us: u64,
}

/// Full attribution for one pool-full drop: the victim, the gateway,
/// and a snapshot of every packet holding a decoder at that instant.
#[derive(Debug, Clone, PartialEq)]
pub struct DropRecord {
    /// Drop instant, µs.
    pub t_us: u64,
    /// Gateway where the drop happened.
    pub gw: u32,
    /// That gateway's network, when a `GatewayInfo` was seen.
    pub gw_network: Option<u32>,
    /// The dropped packet's trace id.
    pub victim_trace: TraceId,
    /// The dropped packet's transmission id.
    pub victim_tx: u64,
    /// The dropped packet's network, when known.
    pub victim_network: Option<u32>,
    /// Every decoder holder at the drop instant, in acquisition order.
    pub blockers: Vec<Blocker>,
}

impl DropRecord {
    /// Blockers whose network differs from the victim's (the
    /// inter-network contention the paper's strategies attack).
    pub fn foreign_blockers(&self) -> impl Iterator<Item = &Blocker> {
        let victim = self.victim_network;
        self.blockers
            .iter()
            .filter(move |b| match (b.network, victim) {
                (Some(b), Some(v)) => b != v,
                _ => false,
            })
    }
}

/// A causal inconsistency in the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalityViolation {
    /// A `DecoderAcquired` whose trace never produced a
    /// `PacketLockOn` — an orphan span with no dispatch parent.
    OrphanSpan {
        /// Gateway of the orphan acquisition.
        gw: u32,
        /// Transmission id of the orphan acquisition.
        tx: u64,
        /// The unseen trace.
        trace: TraceId,
        /// Acquisition instant, µs.
        t_us: u64,
    },
    /// A `DecoderReleased` with no matching open `DecoderAcquired`.
    ReleaseWithoutAcquire {
        /// Gateway of the release.
        gw: u32,
        /// Transmission id of the release.
        tx: u64,
        /// Release instant, µs.
        t_us: u64,
    },
    /// A release timestamped before its own acquisition.
    ReleaseBeforeAcquire {
        /// Gateway of the span.
        gw: u32,
        /// Transmission id of the span.
        tx: u64,
        /// Acquisition instant, µs.
        acquired_us: u64,
        /// Release instant, µs (earlier than `acquired_us`).
        released_us: u64,
    },
    /// A `DecoderAcquired` still open when the stream ended.
    HoldNeverReleased {
        /// Gateway of the open span.
        gw: u32,
        /// Transmission id of the open span.
        tx: u64,
        /// Acquisition instant, µs.
        acquired_us: u64,
    },
    /// Two `DecoderAcquired` for the same (gateway, tx) without a
    /// release in between.
    DoubleAcquire {
        /// Gateway of the duplicate acquisition.
        gw: u32,
        /// Transmission id acquired twice.
        tx: u64,
        /// Second acquisition instant, µs.
        t_us: u64,
    },
}

impl fmt::Display for CausalityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CausalityViolation::OrphanSpan {
                gw,
                tx,
                trace,
                t_us,
            } => write!(
                f,
                "orphan span: decoder acquired at gw {gw} for tx {tx} \
                 (trace {trace:#x}) at {t_us} µs with no prior lock-on"
            ),
            CausalityViolation::ReleaseWithoutAcquire { gw, tx, t_us } => {
                write!(f, "release without acquire: gw {gw} tx {tx} at {t_us} µs")
            }
            CausalityViolation::ReleaseBeforeAcquire {
                gw,
                tx,
                acquired_us,
                released_us,
            } => write!(
                f,
                "release before acquire: gw {gw} tx {tx} released at \
                 {released_us} µs, acquired at {acquired_us} µs"
            ),
            CausalityViolation::HoldNeverReleased {
                gw,
                tx,
                acquired_us,
            } => write!(
                f,
                "hold never released: gw {gw} tx {tx} acquired at {acquired_us} µs"
            ),
            CausalityViolation::DoubleAcquire { gw, tx, t_us } => write!(
                f,
                "double acquire: gw {gw} tx {tx} re-acquired at {t_us} µs \
                 without an intervening release"
            ),
        }
    }
}

/// An open decoder hold tracked while scanning the stream.
#[derive(Debug, Clone, Copy)]
struct ActiveHold {
    trace: TraceId,
    network: Option<u32>,
    start_us: u64,
}

/// Streaming reconstruction of causal timelines from an event
/// sequence. Feed events in stream order with
/// [`TraceAnalyzer::observe`], then call [`TraceAnalyzer::into_report`]
/// for the assembled [`TraceReport`].
///
/// Events with `trace == 0` (untraced streams) are still folded into
/// contention accounting — holder identity falls back to the most
/// recent lock-on seen for the same `tx` — but get no per-packet
/// timeline, since `tx` ids collide across runs.
#[derive(Debug, Default)]
pub struct TraceAnalyzer {
    gateways: BTreeMap<u32, GatewayIdentity>,
    timelines: BTreeMap<TraceId, PacketTimeline>,
    control: BTreeMap<TraceId, ControlTimeline>,
    /// Open holds per gateway, keyed by tx (the pool's own key).
    active: BTreeMap<u32, BTreeMap<u64, ActiveHold>>,
    /// Fallback identity for untraced acquires: tx → (trace, network)
    /// of the latest lock-on.
    last_lock_on: BTreeMap<u64, (TraceId, u32)>,
    drops: Vec<DropRecord>,
    violations: Vec<CausalityViolation>,
    events_seen: u64,
}

impl TraceAnalyzer {
    /// An empty analyzer.
    pub fn new() -> TraceAnalyzer {
        TraceAnalyzer::default()
    }

    /// The timeline for `trace`, creating it on first touch.
    fn timeline(&mut self, trace: TraceId, tx: u64) -> &mut PacketTimeline {
        self.timelines
            .entry(trace)
            .or_insert_with(|| PacketTimeline {
                trace,
                tx,
                ..PacketTimeline::default()
            })
    }

    /// The control timeline for `trace`, creating it on first touch.
    fn control_timeline(&mut self, trace: TraceId) -> &mut ControlTimeline {
        self.control
            .entry(trace)
            .or_insert_with(|| ControlTimeline {
                trace,
                ..ControlTimeline::default()
            })
    }

    /// Fold one event into the reconstruction. Events must arrive in
    /// stream order (the order a sink recorded them).
    pub fn observe(&mut self, ev: &ObsEvent) {
        self.events_seen += 1;
        match *ev {
            ObsEvent::GatewayInfo {
                gw,
                network,
                capacity,
            } => {
                self.gateways
                    .insert(gw, GatewayIdentity { network, capacity });
            }
            ObsEvent::TxStart {
                t_us,
                trace,
                tx,
                node,
                network,
            } => {
                if trace != 0 {
                    let tl = self.timeline(trace, tx);
                    tl.node = Some(node);
                    tl.network = Some(network);
                    tl.start_us = Some(t_us);
                }
            }
            ObsEvent::PacketLockOn {
                t_us,
                trace,
                tx,
                node,
                network,
            } => {
                self.last_lock_on.insert(tx, (trace, network));
                if trace != 0 {
                    let tl = self.timeline(trace, tx);
                    tl.node = Some(node);
                    tl.network = Some(network);
                    tl.lock_on_us = Some(t_us);
                }
            }
            ObsEvent::DecoderAcquired {
                t_us,
                trace,
                gw,
                tx,
                ..
            } => {
                // Resolve the holder's identity: the event's own trace,
                // or (for untraced streams) the latest lock-on for tx.
                let (trace, network) = if trace != 0 {
                    (trace, self.timelines.get(&trace).and_then(|t| t.network))
                } else {
                    match self.last_lock_on.get(&tx) {
                        Some(&(tr, net)) => (tr, Some(net)),
                        None => (0, None),
                    }
                };
                if trace != 0 {
                    match self.timelines.get(&trace) {
                        Some(tl) if tl.lock_on_us.is_some() => {}
                        _ => self.violations.push(CausalityViolation::OrphanSpan {
                            gw,
                            tx,
                            trace,
                            t_us,
                        }),
                    }
                    self.timeline(trace, tx).holds.push(DecoderHold {
                        gw,
                        start_us: t_us,
                        end_us: None,
                    });
                }
                let open = self.active.entry(gw).or_default().insert(
                    tx,
                    ActiveHold {
                        trace,
                        network,
                        start_us: t_us,
                    },
                );
                if open.is_some() {
                    self.violations
                        .push(CausalityViolation::DoubleAcquire { gw, tx, t_us });
                }
            }
            ObsEvent::DecoderReleased { t_us, gw, tx, .. } => {
                match self.active.entry(gw).or_default().remove(&tx) {
                    None => self
                        .violations
                        .push(CausalityViolation::ReleaseWithoutAcquire { gw, tx, t_us }),
                    Some(hold) => {
                        if t_us < hold.start_us {
                            self.violations
                                .push(CausalityViolation::ReleaseBeforeAcquire {
                                    gw,
                                    tx,
                                    acquired_us: hold.start_us,
                                    released_us: t_us,
                                });
                        }
                        if hold.trace != 0 {
                            if let Some(tl) = self.timelines.get_mut(&hold.trace) {
                                if let Some(h) = tl
                                    .holds
                                    .iter_mut()
                                    .rev()
                                    .find(|h| h.gw == gw && h.end_us.is_none())
                                {
                                    h.end_us = Some(t_us);
                                }
                            }
                        }
                    }
                }
            }
            ObsEvent::PoolFullDrop {
                t_us,
                trace,
                gw,
                tx,
                ..
            } => {
                let victim_network = if trace != 0 {
                    self.timelines.get(&trace).and_then(|t| t.network)
                } else {
                    self.last_lock_on.get(&tx).map(|&(_, net)| net)
                };
                let blockers: Vec<Blocker> = self
                    .active
                    .get(&gw)
                    .map(|holds| {
                        let mut b: Vec<Blocker> = holds
                            .iter()
                            .map(|(&btx, h)| Blocker {
                                trace: h.trace,
                                tx: btx,
                                network: h.network,
                                held_since_us: h.start_us,
                            })
                            .collect();
                        b.sort_by_key(|b| (b.held_since_us, b.tx));
                        b
                    })
                    .unwrap_or_default();
                self.drops.push(DropRecord {
                    t_us,
                    gw,
                    gw_network: self.gateways.get(&gw).map(|g| g.network),
                    victim_trace: trace,
                    victim_tx: tx,
                    victim_network,
                    blockers,
                });
                if trace != 0 {
                    self.timeline(trace, tx).drops.push(GatewayDrop {
                        gw,
                        t_us,
                        foreign_held: 0,
                    });
                }
            }
            ObsEvent::StealRefused {
                trace,
                gw,
                foreign_held,
                ..
            } => {
                if trace != 0 {
                    if let Some(tl) = self.timelines.get_mut(&trace) {
                        if let Some(d) = tl.drops.iter_mut().rev().find(|d| d.gw == gw) {
                            d.foreign_held = foreign_held;
                        }
                    }
                }
            }
            ObsEvent::PacketOutcome {
                t_us,
                trace,
                tx,
                delivered,
                cause,
            } => {
                if trace != 0 {
                    let tl = self.timeline(trace, tx);
                    tl.outcome_us = Some(t_us);
                    tl.delivered = Some(delivered);
                    tl.cause = cause;
                }
            }
            ObsEvent::Dedup {
                t_us,
                trace,
                gw,
                outcome,
                ..
            } => {
                if trace != 0 {
                    if let Some(tl) = self.timelines.get_mut(&trace) {
                        tl.receipts.push(ServerReceipt { gw, t_us, outcome });
                    }
                }
            }
            ObsEvent::MasterConnectAttempt { trace, ok, .. } => {
                if trace != 0 {
                    let ct = self.control_timeline(trace);
                    ct.connect_attempts += 1;
                    if !ok {
                        ct.connect_failures += 1;
                    }
                }
            }
            ObsEvent::MasterRpcRetry { trace, .. } => {
                if trace != 0 {
                    self.control_timeline(trace).rpc_retries += 1;
                }
            }
            ObsEvent::MasterPlanServed {
                trace,
                source,
                channels,
            } => {
                if trace != 0 {
                    let ct = self.control_timeline(trace);
                    ct.served = Some(source);
                    ct.channels = channels;
                }
            }
            // Solver runs carry no packet lifecycle; the metrics layer
            // aggregates them (`solver_*` counters in MetricsSink).
            ObsEvent::SolverRun { .. } => {}
            // Run-level aggregates carry no packet lifecycle either.
            ObsEvent::SimRunStats { .. } | ObsEvent::SimShardStats { .. } => {}
            // Service transport events are aggregated by the metrics
            // layer; the per-copy Dedup events above carry the
            // packet-lifecycle content.
            ObsEvent::SvcAccept { .. } | ObsEvent::SvcIngest { .. } => {}
            ObsEvent::FaultActivated { .. } => {}
        }
    }

    /// [`TraceAnalyzer::observe`] over a whole slice.
    pub fn observe_all(&mut self, events: &[ObsEvent]) {
        for ev in events {
            self.observe(ev);
        }
    }

    /// Close the reconstruction: any decoder still held becomes a
    /// [`CausalityViolation::HoldNeverReleased`], and the assembled
    /// report is returned.
    pub fn into_report(mut self) -> TraceReport {
        for (&gw, holds) in &self.active {
            for (&tx, hold) in holds {
                self.violations.push(CausalityViolation::HoldNeverReleased {
                    gw,
                    tx,
                    acquired_us: hold.start_us,
                });
            }
        }
        TraceReport {
            gateways: self.gateways,
            timelines: self.timelines,
            control: self.control,
            drops: self.drops,
            violations: self.violations,
            events_seen: self.events_seen,
        }
    }
}

/// The assembled output of a [`TraceAnalyzer`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Gateway identities seen in the stream.
    pub gateways: BTreeMap<u32, GatewayIdentity>,
    /// Per-packet timelines, keyed by trace id (sorted, deterministic).
    pub timelines: BTreeMap<TraceId, PacketTimeline>,
    /// Control-plane (Master request) timelines.
    pub control: BTreeMap<TraceId, ControlTimeline>,
    /// Every pool-full drop with its blocker snapshot, in stream order.
    pub drops: Vec<DropRecord>,
    /// Causal inconsistencies found (empty for a healthy full stream).
    pub violations: Vec<CausalityViolation>,
    /// Total events folded in.
    pub events_seen: u64,
}

/// Decoder occupancy at one gateway, split by holder network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayContention {
    /// Gateway index.
    pub gw: u32,
    /// The gateway's own network, when known.
    pub network: Option<u32>,
    /// Decoder-µs held by the gateway's own network.
    pub own_decoder_us: u64,
    /// Decoder-µs held by foreign networks — the occupancy AlphaWAN's
    /// Strategies ①/②/⑧ would displace.
    pub foreign_decoder_us: u64,
    /// Decoder-µs by holder network, sorted by network id.
    pub by_network: Vec<(u32, u64)>,
    /// Decoder-µs from holds whose network could not be resolved.
    pub unattributed_us: u64,
}

/// How often packets of one network blocked packets of another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockerVictimPair {
    /// Network holding the decoder.
    pub blocker_network: u32,
    /// Network of the dropped packet.
    pub victim_network: u32,
    /// (blocker, victim-drop) incidences: each drop counts once per
    /// blocker of this network in its snapshot.
    pub incidences: u64,
    /// Distinct drops in which this pair appeared at least once.
    pub drops: u64,
}

/// One packet's share of the contention, for top-K tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockerShare {
    /// The blocker's trace id.
    pub trace: TraceId,
    /// The blocker's transmission id.
    pub tx: u64,
    /// The blocker's network, when known.
    pub network: Option<u32>,
    /// Decoder-µs this packet held at gateways of *other* networks.
    pub foreign_decoder_us: u64,
    /// Pool-full drops whose blocker snapshot includes this packet.
    pub drops_blocked: u64,
}

/// The decoder-contention attribution computed from a [`TraceReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionReport {
    /// Per-gateway occupancy split, sorted by gateway index.
    pub per_gateway: Vec<GatewayContention>,
    /// Blocker→victim network pairs across all pool-full drops, sorted
    /// by descending incidence.
    pub pairs: Vec<BlockerVictimPair>,
    /// Packets ranked by contention caused (drops blocked, then
    /// foreign decoder-µs).
    pub top_blockers: Vec<BlockerShare>,
    /// Total foreign decoder-µs across all gateways: the aggregate
    /// Strategy ①/②/⑧ effect size.
    pub foreign_decoder_us_total: u64,
}

impl TraceReport {
    /// Compute the decoder-contention attribution: per-gateway
    /// decoder-µs split own/foreign, blocker→victim network pairs for
    /// every pool-full drop, and the per-packet top-blocker ranking.
    pub fn contention(&self) -> ContentionReport {
        // Per-gateway, per-holder-network decoder-µs from the timelines'
        // completed holds.
        let mut per_gw: BTreeMap<u32, BTreeMap<Option<u32>, u64>> = BTreeMap::new();
        let mut per_trace_foreign: BTreeMap<TraceId, u64> = BTreeMap::new();
        for tl in self.timelines.values() {
            for h in &tl.holds {
                let Some(end) = h.end_us else { continue };
                let dur = end.saturating_sub(h.start_us);
                *per_gw
                    .entry(h.gw)
                    .or_default()
                    .entry(tl.network)
                    .or_insert(0) += dur;
                let gw_net = self.gateways.get(&h.gw).map(|g| g.network);
                if let (Some(holder), Some(owner)) = (tl.network, gw_net) {
                    if holder != owner {
                        *per_trace_foreign.entry(tl.trace).or_insert(0) += dur;
                    }
                }
            }
        }

        let mut per_gateway = Vec::new();
        let mut foreign_total = 0u64;
        // Include gateways that announced themselves but saw no holds.
        for &gw in per_gw.keys().chain(self.gateways.keys()) {
            if per_gateway.iter().any(|g: &GatewayContention| g.gw == gw) {
                continue;
            }
            let network = self.gateways.get(&gw).map(|g| g.network);
            let mut own = 0u64;
            let mut foreign = 0u64;
            let mut unattributed = 0u64;
            let mut by_network = Vec::new();
            if let Some(nets) = per_gw.get(&gw) {
                for (&holder, &us) in nets {
                    match (holder, network) {
                        (Some(h), Some(n)) if h == n => own += us,
                        (Some(_), Some(_)) => foreign += us,
                        _ => unattributed += us,
                    }
                    if let Some(h) = holder {
                        by_network.push((h, us));
                    }
                }
            }
            foreign_total += foreign;
            per_gateway.push(GatewayContention {
                gw,
                network,
                own_decoder_us: own,
                foreign_decoder_us: foreign,
                by_network,
                unattributed_us: unattributed,
            });
        }
        per_gateway.sort_by_key(|g| g.gw);

        // Blocker→victim pairs and per-packet blocking counts.
        let mut pair_incidences: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
        let mut drops_blocked: BTreeMap<TraceId, u64> = BTreeMap::new();
        for d in &self.drops {
            let mut pair_seen: Vec<(u32, u32)> = Vec::new();
            for b in &d.blockers {
                if b.trace != 0 {
                    *drops_blocked.entry(b.trace).or_insert(0) += 1;
                }
                if let (Some(bn), Some(vn)) = (b.network, d.victim_network) {
                    let e = pair_incidences.entry((bn, vn)).or_insert((0, 0));
                    e.0 += 1;
                    if !pair_seen.contains(&(bn, vn)) {
                        e.1 += 1;
                        pair_seen.push((bn, vn));
                    }
                }
            }
        }
        let mut pairs: Vec<BlockerVictimPair> = pair_incidences
            .into_iter()
            .map(|((b, v), (inc, drops))| BlockerVictimPair {
                blocker_network: b,
                victim_network: v,
                incidences: inc,
                drops,
            })
            .collect();
        pairs.sort_by(|a, b| {
            b.incidences
                .cmp(&a.incidences)
                .then(a.blocker_network.cmp(&b.blocker_network))
                .then(a.victim_network.cmp(&b.victim_network))
        });

        let mut top_blockers: Vec<BlockerShare> = self
            .timelines
            .values()
            .filter_map(|tl| {
                let foreign = per_trace_foreign.get(&tl.trace).copied().unwrap_or(0);
                let blocked = drops_blocked.get(&tl.trace).copied().unwrap_or(0);
                (foreign > 0 || blocked > 0).then_some(BlockerShare {
                    trace: tl.trace,
                    tx: tl.tx,
                    network: tl.network,
                    foreign_decoder_us: foreign,
                    drops_blocked: blocked,
                })
            })
            .collect();
        top_blockers.sort_by(|a, b| {
            b.drops_blocked
                .cmp(&a.drops_blocked)
                .then(b.foreign_decoder_us.cmp(&a.foreign_decoder_us))
                .then(a.trace.cmp(&b.trace))
        });

        ContentionReport {
            per_gateway,
            pairs,
            top_blockers,
            foreign_decoder_us_total: foreign_total,
        }
    }
}

/// One Chrome trace-event, the JSON array format that `chrome://tracing`
/// and Perfetto load. Only the fields this exporter uses are modeled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Event name shown on the slice.
    pub name: String,
    /// Comma-separated categories.
    pub cat: String,
    /// Phase: `"X"` complete span, `"i"` instant, `"M"` metadata.
    pub ph: String,
    /// Timestamp, µs.
    pub ts: u64,
    /// Duration for `"X"` spans, µs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dur: Option<u64>,
    /// Process id (one per gateway, plus the medium and the server).
    pub pid: u32,
    /// Thread id (decoder slot / node / reporting gateway).
    pub tid: u32,
    /// Instant scope (`"t"` = thread) for `"i"` events.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub s: Option<String>,
    /// Free-form arguments shown in the event detail pane.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub args: Option<serde::Value>,
}

/// A Chrome trace-event document: `{"traceEvents": [...]}`. The field
/// name is the literal key the Chrome/Perfetto loaders require.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct ChromeTrace {
    /// The event array.
    pub traceEvents: Vec<ChromeEvent>,
}

/// A string `serde::Value`.
fn sval(s: String) -> serde::Value {
    serde::Value::Str(s)
}

/// An object `serde::Value` from (key, value) pairs.
fn oval(fields: Vec<(&str, serde::Value)>) -> serde::Value {
    serde::Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Process id of the shared-medium (airtime) track.
const PID_MEDIUM: u32 = 1;
/// Process id of the network-server (dedup) track.
const PID_SERVER: u32 = 2;
/// First gateway process id; gateway `g` renders as `PID_GW0 + g`.
const PID_GW0: u32 = 10;

/// Export an event stream as a Chrome trace-event document.
///
/// Layout: one process per gateway with one thread per decoder slot
/// (slots are assigned greedily and deterministically in stream
/// order), a "medium" process whose threads are sending nodes
/// (airtime spans from `TxStart` to `PacketOutcome`), and a "network
/// server" process whose threads are reporting gateways (dedup
/// instants). Pool-full drops render as instants on the gateway's
/// slot row just past its capacity.
pub fn chrome_trace(events: &[ObsEvent]) -> ChromeTrace {
    let mut out = Vec::new();
    let mut gateways: BTreeMap<u32, GatewayIdentity> = BTreeMap::new();
    // Deterministic greedy decoder-slot assignment per gateway.
    let mut free: BTreeMap<u32, std::collections::BTreeSet<u32>> = BTreeMap::new();
    let mut next_slot: BTreeMap<u32, u32> = BTreeMap::new();
    let mut slot_of: BTreeMap<(u32, u64), (u32, u64, String)> = BTreeMap::new();
    // Open airtime spans: trace → (ts, node, tx, network).
    let mut air: BTreeMap<u64, (u64, u64, u64, u32)> = BTreeMap::new();
    let mut meta: Vec<ChromeEvent> = vec![
        process_name(PID_MEDIUM, "medium (airtime)"),
        process_name(PID_SERVER, "network server (dedup)"),
    ];

    for ev in events {
        match *ev {
            ObsEvent::GatewayInfo {
                gw,
                network,
                capacity,
            } => {
                gateways.insert(gw, GatewayIdentity { network, capacity });
                meta.push(process_name(
                    PID_GW0 + gw,
                    &format!("gateway {gw} (network {network})"),
                ));
            }
            ObsEvent::TxStart {
                t_us,
                trace,
                tx,
                node,
                network,
            } => {
                air.insert(
                    if trace != 0 { trace } else { tx },
                    (t_us, node, tx, network),
                );
            }
            ObsEvent::PacketOutcome {
                t_us,
                trace,
                tx,
                delivered,
                cause,
            } => {
                if let Some((start, node, tx, network)) =
                    air.remove(&(if trace != 0 { trace } else { tx }))
                {
                    let mut args = vec![
                        ("trace", sval(format!("{trace:#x}"))),
                        ("delivered", serde::Value::Bool(delivered)),
                    ];
                    if let Some(c) = cause {
                        args.push(("cause", sval(format!("{c:?}"))));
                    }
                    out.push(ChromeEvent {
                        name: format!("tx {tx} net {network}"),
                        cat: "air".into(),
                        ph: "X".into(),
                        ts: start,
                        dur: Some(t_us.saturating_sub(start)),
                        pid: PID_MEDIUM,
                        tid: node as u32,
                        s: None,
                        args: Some(oval(args)),
                    });
                }
            }
            ObsEvent::DecoderAcquired {
                t_us,
                trace,
                gw,
                tx,
                ..
            } => {
                let slot = match free.entry(gw).or_default().pop_first() {
                    Some(s) => s,
                    None => {
                        let n = next_slot.entry(gw).or_insert(0);
                        let s = *n;
                        *n += 1;
                        s
                    }
                };
                slot_of.insert((gw, tx), (slot, t_us, format!("{trace:#x}")));
            }
            ObsEvent::DecoderReleased { t_us, gw, tx, .. } => {
                if let Some((slot, start, trace)) = slot_of.remove(&(gw, tx)) {
                    free.entry(gw).or_default().insert(slot);
                    out.push(ChromeEvent {
                        name: format!("decode tx {tx}"),
                        cat: "decoder".into(),
                        ph: "X".into(),
                        ts: start,
                        dur: Some(t_us.saturating_sub(start)),
                        pid: PID_GW0 + gw,
                        tid: slot,
                        s: None,
                        args: Some(oval(vec![("trace", sval(trace))])),
                    });
                }
            }
            ObsEvent::PoolFullDrop {
                t_us,
                trace,
                gw,
                tx,
                locked,
            } => {
                let row = gateways.get(&gw).map(|g| g.capacity).unwrap_or(16);
                out.push(ChromeEvent {
                    name: format!("drop tx {tx}"),
                    cat: "drop".into(),
                    ph: "i".into(),
                    ts: t_us,
                    dur: None,
                    pid: PID_GW0 + gw,
                    tid: row,
                    s: Some("t".into()),
                    args: Some(oval(vec![
                        ("trace", sval(format!("{trace:#x}"))),
                        ("locked", serde::Value::U64(locked as u64)),
                    ])),
                });
            }
            ObsEvent::Dedup {
                t_us,
                trace,
                dev,
                fcnt,
                gw,
                outcome,
            } => {
                out.push(ChromeEvent {
                    name: format!("dedup {outcome:?} dev {dev:#x} fcnt {fcnt}"),
                    cat: "server".into(),
                    ph: "i".into(),
                    ts: t_us,
                    dur: None,
                    pid: PID_SERVER,
                    tid: gw,
                    s: Some("t".into()),
                    args: Some(oval(vec![("trace", sval(format!("{trace:#x}")))])),
                });
            }
            _ => {}
        }
    }

    meta.extend(out);
    ChromeTrace { traceEvents: meta }
}

/// A `process_name` metadata event.
fn process_name(pid: u32, name: &str) -> ChromeEvent {
    ChromeEvent {
        name: "process_name".into(),
        cat: "__metadata".into(),
        ph: "M".into(),
        ts: 0,
        dur: None,
        pid,
        tid: 0,
        s: None,
        args: Some(oval(vec![("name", sval(name.to_string()))])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_deterministic_nonzero_and_tagged() {
        let a = packet_trace(0, 0);
        let b = packet_trace(0, 0);
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert!(!is_control(a));
        assert_ne!(packet_trace(0, 1), a, "distinct tx, distinct id");
        assert_ne!(packet_trace(1, 0), a, "distinct epoch, distinct id");
        let c = control_trace(7, 0);
        assert!(is_control(c));
        assert_ne!(c, 0);
        assert_ne!(control_trace(7, 1), c);
    }

    fn lifecycle(trace: u64, tx: u64, net: u32, gw: u32, t0: u64, t1: u64) -> Vec<ObsEvent> {
        vec![
            ObsEvent::TxStart {
                t_us: t0,
                trace,
                tx,
                node: tx,
                network: net,
            },
            ObsEvent::PacketLockOn {
                t_us: t0 + 10,
                trace,
                tx,
                node: tx,
                network: net,
            },
            ObsEvent::DecoderAcquired {
                t_us: t0 + 10,
                trace,
                gw,
                tx,
                in_use: 1,
                capacity: 2,
            },
            ObsEvent::DecoderReleased {
                t_us: t1,
                trace,
                gw,
                tx,
                in_use: 0,
            },
            ObsEvent::PacketOutcome {
                t_us: t1,
                trace,
                tx,
                delivered: true,
                cause: None,
            },
        ]
    }

    #[test]
    fn reconstructs_timeline_and_attributes_drop() {
        // Gateway 0 belongs to network 1, capacity 2. Two network-2
        // packets fill the pool; a network-1 packet is dropped.
        let b1 = packet_trace(0, 10);
        let b2 = packet_trace(0, 11);
        let victim = packet_trace(0, 12);
        let b1_ev = lifecycle(b1, 10, 2, 0, 100, 5_000);
        let b2_ev = lifecycle(b2, 11, 2, 0, 200, 6_000);
        let mut ev = vec![ObsEvent::GatewayInfo {
            gw: 0,
            network: 1,
            capacity: 2,
        }];
        // Both blockers on air and holding decoders…
        ev.extend_from_slice(&b1_ev[..3]);
        ev.extend_from_slice(&b2_ev[..3]);
        // …when the victim locks on and is dropped…
        ev.push(ObsEvent::PacketLockOn {
            t_us: 300,
            trace: victim,
            tx: 12,
            node: 12,
            network: 1,
        });
        ev.push(ObsEvent::PoolFullDrop {
            t_us: 300,
            trace: victim,
            gw: 0,
            tx: 12,
            locked: 0,
        });
        ev.push(ObsEvent::StealRefused {
            t_us: 300,
            trace: victim,
            gw: 0,
            tx: 12,
            foreign_held: 2,
        });
        // …then the blockers finish.
        ev.extend_from_slice(&b1_ev[3..]);
        ev.extend_from_slice(&b2_ev[3..]);
        ev.push(ObsEvent::PacketOutcome {
            t_us: 7_000,
            trace: victim,
            tx: 12,
            delivered: false,
            cause: Some(LossKind::DecoderInter),
        });

        let mut an = TraceAnalyzer::new();
        an.observe_all(&ev);
        let report = an.into_report();
        assert!(report.violations.is_empty(), "{:?}", report.violations);

        let tl = &report.timelines[&victim];
        assert_eq!(tl.network, Some(1));
        assert_eq!(
            tl.drops,
            vec![GatewayDrop {
                gw: 0,
                t_us: 300,
                foreign_held: 2
            }]
        );
        assert_eq!(tl.delivered, Some(false));

        assert_eq!(report.drops.len(), 1);
        let d = &report.drops[0];
        assert_eq!(d.victim_network, Some(1));
        assert_eq!(d.gw_network, Some(1));
        assert_eq!(d.blockers.len(), 2);
        assert!(
            d.foreign_blockers().count() == 2,
            "both blockers are network 2"
        );

        let c = report.contention();
        // b1 held 110..5000 µs, b2 held 210..6000 µs, both foreign.
        let expect = (5_000 - 110) + (6_000 - 210);
        assert_eq!(c.foreign_decoder_us_total, expect);
        assert_eq!(c.per_gateway.len(), 1);
        assert_eq!(c.per_gateway[0].own_decoder_us, 0);
        assert_eq!(c.per_gateway[0].foreign_decoder_us, expect);
        assert_eq!(
            c.pairs,
            vec![BlockerVictimPair {
                blocker_network: 2,
                victim_network: 1,
                incidences: 2,
                drops: 1,
            }]
        );
        assert_eq!(c.top_blockers.len(), 2);
        assert_eq!(c.top_blockers[0].drops_blocked, 1);
    }

    #[test]
    fn violations_detected() {
        let t = packet_trace(0, 1);
        let mut an = TraceAnalyzer::new();
        // Release with no acquire.
        an.observe(&ObsEvent::DecoderReleased {
            t_us: 5,
            trace: t,
            gw: 0,
            tx: 1,
            in_use: 0,
        });
        // Acquire with no lock-on (orphan), never released.
        let t2 = packet_trace(0, 2);
        an.observe(&ObsEvent::DecoderAcquired {
            t_us: 10,
            trace: t2,
            gw: 1,
            tx: 2,
            in_use: 1,
            capacity: 16,
        });
        let report = an.into_report();
        assert_eq!(report.violations.len(), 3, "{:?}", report.violations);
        assert!(matches!(
            report.violations[0],
            CausalityViolation::ReleaseWithoutAcquire { gw: 0, tx: 1, .. }
        ));
        assert!(matches!(
            report.violations[1],
            CausalityViolation::OrphanSpan { gw: 1, tx: 2, .. }
        ));
        assert!(matches!(
            report.violations[2],
            CausalityViolation::HoldNeverReleased { gw: 1, tx: 2, .. }
        ));
    }

    #[test]
    fn untraced_stream_still_attributes_contention() {
        // trace == 0 everywhere: holder identity falls back to the
        // latest lock-on for the same tx.
        let ev = vec![
            ObsEvent::GatewayInfo {
                gw: 0,
                network: 1,
                capacity: 1,
            },
            ObsEvent::PacketLockOn {
                t_us: 10,
                trace: 0,
                tx: 5,
                node: 0,
                network: 2,
            },
            ObsEvent::DecoderAcquired {
                t_us: 10,
                trace: 0,
                gw: 0,
                tx: 5,
                in_use: 1,
                capacity: 1,
            },
            ObsEvent::PacketLockOn {
                t_us: 20,
                trace: 0,
                tx: 6,
                node: 1,
                network: 1,
            },
            ObsEvent::PoolFullDrop {
                t_us: 20,
                trace: 0,
                gw: 0,
                tx: 6,
                locked: 0,
            },
            ObsEvent::DecoderReleased {
                t_us: 100,
                trace: 0,
                gw: 0,
                tx: 5,
                in_use: 0,
            },
        ];
        let mut an = TraceAnalyzer::new();
        an.observe_all(&ev);
        let report = an.into_report();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.drops.len(), 1);
        assert_eq!(report.drops[0].victim_network, Some(1));
        assert_eq!(report.drops[0].blockers.len(), 1);
        assert_eq!(report.drops[0].blockers[0].network, Some(2));
    }

    #[test]
    fn chrome_trace_roundtrips_and_assigns_slots() {
        let mut ev = vec![ObsEvent::GatewayInfo {
            gw: 0,
            network: 1,
            capacity: 2,
        }];
        // Interleave the two lifecycles in time order, as a real
        // stream would be: both acquire before either releases.
        let a = lifecycle(packet_trace(0, 0), 0, 1, 0, 0, 1_000);
        let b = lifecycle(packet_trace(0, 1), 1, 2, 0, 50, 2_000);
        ev.extend_from_slice(&a[..3]);
        ev.extend_from_slice(&b[..3]);
        ev.extend_from_slice(&a[3..]);
        ev.extend_from_slice(&b[3..]);
        let doc = chrome_trace(&ev);
        // 3 process_name metadata + 2 air spans + 2 decoder spans.
        assert_eq!(doc.traceEvents.len(), 7);
        let spans: Vec<&ChromeEvent> = doc.traceEvents.iter().filter(|e| e.ph == "X").collect();
        assert_eq!(spans.len(), 4);
        // The two holds overlap (10..1000 and 60..2000 µs), so they
        // must land on distinct decoder-slot rows.
        let decoder_tids: Vec<u32> = doc
            .traceEvents
            .iter()
            .filter(|e| e.cat == "decoder")
            .map(|e| e.tid)
            .collect();
        assert_eq!(decoder_tids, vec![0, 1]);

        let json = serde_json::to_string(&doc).unwrap();
        assert!(json.contains("\"traceEvents\""));
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn slot_reuse_after_release() {
        let mut ev = vec![];
        ev.extend(lifecycle(packet_trace(0, 0), 0, 1, 0, 0, 1_000));
        // Second packet starts after the first released: reuses slot 0.
        ev.extend(lifecycle(packet_trace(0, 1), 1, 1, 0, 2_000, 3_000));
        let doc = chrome_trace(&ev);
        let decoder_tids: Vec<u32> = doc
            .traceEvents
            .iter()
            .filter(|e| e.cat == "decoder")
            .map(|e| e.tid)
            .collect();
        assert_eq!(decoder_tids, vec![0, 0]);
    }
}
