//! Event sinks: where [`ObsEvent`]s go.
//!
//! The contract is built for the simulation hot path: call sites guard
//! event construction behind [`ObsSink::enabled`], so an instrumented
//! run with a [`NullSink`] pays one predictable branch per potential
//! event and allocates nothing (the `obs_overhead` bench in the `bench`
//! crate holds this within noise of the uninstrumented engine).
//!
//! Sinks are deliberately single-threaded (`&mut self`); the simulator
//! is deterministic and sequential, and keeping sinks lock-free is part
//! of keeping them free. Share one across owners with [`SharedSink`].

use crate::event::ObsEvent;
use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

/// A destination for observability events.
pub trait ObsSink {
    /// Whether this sink wants events at all. Call sites use this to
    /// skip event construction entirely; `false` makes instrumentation
    /// free.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event. Implementations must be deterministic: the
    /// same event sequence must produce the same observable state
    /// (buffer contents, bytes on disk) on every run.
    fn record(&mut self, ev: &ObsEvent);

    /// Flush any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// The do-nothing sink: reports itself disabled so instrumented call
/// sites skip event construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ObsSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: &ObsEvent) {}
}

/// A bounded in-memory sink: keeps the most recent `capacity` events,
/// overwriting the oldest on wraparound (a flight recorder).
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Vec<ObsEvent>,
    capacity: usize,
    /// Index the next event will be written to once the ring is full.
    head: usize,
    total: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "a zero-capacity ring records nothing");
        RingSink {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// Events recorded over the sink's lifetime (including overwritten
    /// ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            // `head` points at the oldest retained event once full.
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }
}

impl ObsSink for RingSink {
    fn record(&mut self, ev: &ObsEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(*ev);
        } else {
            self.buf[self.head] = *ev;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }
}

/// An unbounded in-memory sink: keeps every event, in order. The
/// natural capture buffer for feeding a
/// [`TraceAnalyzer`](crate::trace::TraceAnalyzer) after a run; prefer
/// [`RingSink`] when the run is long and only the tail matters.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<ObsEvent>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// All recorded events, oldest first.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume the sink, returning the event buffer.
    pub fn into_events(self) -> Vec<ObsEvent> {
        self.events
    }
}

impl ObsSink for VecSink {
    fn record(&mut self, ev: &ObsEvent) {
        self.events.push(*ev);
    }
}

/// A file sink writing one JSON object per line (JSONL). Output is
/// buffered; [`ObsSink::flush`] or drop forces it to disk.
///
/// The byte stream is a pure function of the event sequence — no
/// timestamps of its own, no map iteration — so two same-seed runs
/// produce byte-identical files (asserted by the workspace's
/// `obs_determinism` integration test).
///
/// [`JsonlSink::create_atomic`] opens the file at `<path>.partial` and
/// renames it to the final path on [`JsonlSink::seal`] (or drop): a
/// crashed or aborted run leaves only the clearly-marked partial file,
/// never a truncated artifact at the real path. Sealing keeps the file
/// handle — on POSIX the rename moves the inode, so writes after the
/// seal still land in the final file.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    written: u64,
    /// `Some((partial, final))` until sealed.
    pending_rename: Option<(std::path::PathBuf, std::path::PathBuf)>,
}

/// Suffix appended to a not-yet-sealed atomic file.
pub const PARTIAL_SUFFIX: &str = ".partial";

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
            written: 0,
            pending_rename: None,
        })
    }

    /// Create the file at `<path>.partial`; it moves to `path` on the
    /// first [`JsonlSink::seal`] (or on drop). See the type docs.
    pub fn create_atomic(path: &Path) -> std::io::Result<JsonlSink> {
        let mut partial = path.as_os_str().to_owned();
        partial.push(PARTIAL_SUFFIX);
        let partial = std::path::PathBuf::from(partial);
        let mut sink = JsonlSink::create(&partial)?;
        sink.pending_rename = Some((partial, path.to_path_buf()));
        Ok(sink)
    }

    /// Flush and atomically move the `.partial` file to its final path.
    /// Idempotent; a no-op for sinks opened with [`JsonlSink::create`].
    /// Returns whether the file now exists at its final path.
    pub fn seal(&mut self) -> bool {
        let _ = self.out.flush();
        match self.pending_rename.take() {
            None => true,
            Some((partial, final_path)) => match std::fs::rename(&partial, &final_path) {
                Ok(()) => true,
                Err(_) => {
                    self.pending_rename = Some((partial, final_path));
                    false
                }
            },
        }
    }

    /// Whether the file has reached its final path (always true for
    /// [`JsonlSink::create`] sinks).
    pub fn is_sealed(&self) -> bool {
        self.pending_rename.is_none()
    }

    /// Write one pre-serialized JSON line (e.g. a
    /// [`FlightHeader`](crate::flight::FlightHeader)). The caller is
    /// responsible for `line` being a single line of valid JSON.
    pub fn write_line(&mut self, line: &str) {
        let _ = self.out.write_all(line.as_bytes());
        let _ = self.out.write_all(b"\n");
        self.written += 1;
    }

    /// Lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl ObsSink for JsonlSink {
    fn record(&mut self, ev: &ObsEvent) {
        // Serialization of a Copy event cannot fail; file trouble is
        // surfaced on flush/drop, not per event.
        if let Ok(line) = serde_json::to_string(ev) {
            let _ = self.out.write_all(line.as_bytes());
            let _ = self.out.write_all(b"\n");
            self.written += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.seal();
    }
}

/// Fans every event out to two sinks (compose for more).
#[derive(Debug, Default)]
pub struct TeeSink<A: ObsSink, B: ObsSink>(pub A, pub B);

impl<A: ObsSink, B: ObsSink> ObsSink for TeeSink<A, B> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn record(&mut self, ev: &ObsEvent) {
        self.0.record(ev);
        self.1.record(ev);
    }

    fn flush(&mut self) {
        self.0.flush();
        self.1.flush();
    }
}

/// A shared handle to a sink, so the producer (e.g. a `SimWorld`
/// holding a boxed sink) and the consumer (the harness reading metrics
/// back out) can both reach it. Single-threaded by design, like every
/// sink.
#[derive(Debug)]
pub struct SharedSink<S: ObsSink>(Rc<RefCell<S>>);

impl<S: ObsSink> SharedSink<S> {
    /// Wrap `sink` for shared access.
    pub fn new(sink: S) -> SharedSink<S> {
        SharedSink(Rc::new(RefCell::new(sink)))
    }

    /// A second handle to the same sink.
    pub fn handle(&self) -> SharedSink<S> {
        SharedSink(Rc::clone(&self.0))
    }

    /// Run `f` with shared (read) access to the sink.
    pub fn with<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Run `f` with exclusive access to the sink.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

impl<S: ObsSink> Clone for SharedSink<S> {
    fn clone(&self) -> SharedSink<S> {
        self.handle()
    }
}

impl<S: ObsSink> ObsSink for SharedSink<S> {
    fn enabled(&self) -> bool {
        self.0.borrow().enabled()
    }

    fn record(&mut self, ev: &ObsEvent) {
        self.0.borrow_mut().record(ev);
    }

    fn flush(&mut self) {
        self.0.borrow_mut().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> ObsEvent {
        ObsEvent::PacketLockOn {
            t_us: t,
            trace: 0,
            tx: t,
            node: 0,
            network: 1,
        }
    }

    /// A sink that reports itself disabled but panics if an event
    /// reaches it anyway — proves a guard was honored, not just set.
    struct TrapSink;

    impl ObsSink for TrapSink {
        fn enabled(&self) -> bool {
            false
        }

        fn record(&mut self, _ev: &ObsEvent) {
            panic!("record() called on a disabled sink");
        }
    }

    /// An instrumented call site, shaped exactly like the hot paths in
    /// `sim`/`gateway`: event construction and recording are guarded by
    /// `enabled()`.
    fn guarded_emit(sink: &mut dyn ObsSink, constructions: &mut u32) {
        if sink.enabled() {
            *constructions += 1;
            sink.record(&ev(1));
        }
    }

    #[test]
    fn null_sink_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(&ev(1)); // harmless
    }

    #[test]
    fn ring_before_wraparound_keeps_order() {
        let mut r = RingSink::new(4);
        for t in 0..3 {
            r.record(&ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_recorded(), 3);
        let ts: Vec<u64> = r.events().iter().map(|e| e.t_us().unwrap()).collect();
        assert_eq!(ts, vec![0, 1, 2]);
    }

    #[test]
    fn ring_wraparound_drops_oldest_first() {
        let mut r = RingSink::new(3);
        for t in 0..7 {
            r.record(&ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_recorded(), 7);
        let ts: Vec<u64> = r.events().iter().map(|e| e.t_us().unwrap()).collect();
        assert_eq!(ts, vec![4, 5, 6], "oldest-first after two wraps");
    }

    #[test]
    fn ring_exact_fill_boundary() {
        // Exactly `capacity` events: full but not yet wrapped.
        let mut r = RingSink::new(3);
        for t in 0..3 {
            r.record(&ev(t));
        }
        let ts: Vec<u64> = r.events().iter().map(|e| e.t_us().unwrap()).collect();
        assert_eq!(ts, vec![0, 1, 2]);
        // One more: the single oldest event is replaced.
        r.record(&ev(3));
        let ts: Vec<u64> = r.events().iter().map(|e| e.t_us().unwrap()).collect();
        assert_eq!(ts, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn ring_zero_capacity_panics() {
        RingSink::new(0);
    }

    #[test]
    fn tee_feeds_both() {
        let mut t = TeeSink(RingSink::new(8), RingSink::new(8));
        t.record(&ev(1));
        assert_eq!(t.0.len(), 1);
        assert_eq!(t.1.len(), 1);
    }

    #[test]
    fn tee_with_null_stays_enabled() {
        let t = TeeSink(NullSink, RingSink::new(1));
        assert!(t.enabled());
        let t = TeeSink(NullSink, NullSink);
        assert!(!t.enabled());
    }

    #[test]
    fn tee_both_arms_disabled_short_circuits_call_site() {
        // The composite guard: a tee of two disabled sinks reports
        // disabled, so a guarded call site constructs nothing and the
        // trap arms never see an event.
        let mut tee = TeeSink(TrapSink, TrapSink);
        let mut constructions = 0;
        guarded_emit(&mut tee, &mut constructions);
        assert_eq!(constructions, 0, "event must not even be constructed");
    }

    #[test]
    fn tee_one_arm_enabled_records_on_both_paths() {
        // One live arm re-enables the composite; the guarded call site
        // then constructs and records exactly once.
        let mut tee = TeeSink(NullSink, RingSink::new(4));
        let mut constructions = 0;
        guarded_emit(&mut tee, &mut constructions);
        assert_eq!(constructions, 1);
        assert_eq!(tee.1.len(), 1);
    }

    #[test]
    fn nested_tee_guard_composes() {
        // enabled() must propagate through arbitrary nesting.
        let inner = TeeSink(TrapSink, TrapSink);
        let mut outer = TeeSink(inner, TrapSink);
        assert!(!outer.enabled());
        let mut constructions = 0;
        guarded_emit(&mut outer, &mut constructions);
        assert_eq!(constructions, 0);
        let mut live = TeeSink(TeeSink(NullSink, NullSink), RingSink::new(2));
        assert!(live.enabled());
        guarded_emit(&mut live, &mut constructions);
        assert_eq!(live.1.len(), 1);
    }

    #[test]
    fn ring_wraparound_behind_tee_and_shared() {
        // Wraparound semantics survive composition: a ring reached
        // through SharedSink + TeeSink still keeps the newest events
        // oldest-first.
        let shared = SharedSink::new(RingSink::new(3));
        let mut tee = TeeSink(NullSink, shared.handle());
        for t in 0..8 {
            tee.record(&ev(t));
        }
        let ts: Vec<u64> = shared.with(|r| r.events().iter().map(|e| e.t_us().unwrap()).collect());
        assert_eq!(ts, vec![5, 6, 7]);
        assert_eq!(shared.with(|r| r.total_recorded()), 8);
    }

    #[test]
    fn vec_sink_keeps_everything_in_order() {
        let mut v = VecSink::new();
        assert!(v.is_empty());
        for t in 0..5 {
            v.record(&ev(t));
        }
        assert_eq!(v.len(), 5);
        let ts: Vec<u64> = v.into_events().iter().map(|e| e.t_us().unwrap()).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shared_sink_handles_see_same_buffer() {
        let shared = SharedSink::new(RingSink::new(8));
        let mut producer: SharedSink<RingSink> = shared.handle();
        producer.record(&ev(9));
        assert_eq!(shared.with(|r| r.len()), 1);
        shared.with_mut(|r| r.record(&ev(10)));
        assert_eq!(producer.with(|r| r.total_recorded()), 2);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("obs_sink_test");
        let path = dir.join("events.jsonl");
        {
            let mut s = JsonlSink::create(&path).unwrap();
            s.record(&ev(1));
            s.record(&ev(2));
            assert_eq!(s.written(), 2);
        } // drop flushes
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{')));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_sink_lives_at_partial_until_sealed() {
        let dir = std::env::temp_dir().join("obs_sink_atomic");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("events.jsonl");
        let mut s = JsonlSink::create_atomic(&path).unwrap();
        s.record(&ev(1));
        s.flush();
        assert!(!s.is_sealed());
        assert!(!path.exists(), "final path must not exist before seal");
        assert!(dir.join("events.jsonl.partial").exists());
        assert!(s.seal());
        assert!(s.is_sealed());
        assert!(path.exists());
        assert!(!dir.join("events.jsonl.partial").exists());
        // Post-seal writes land in the renamed file (same inode).
        s.record(&ev(2));
        s.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_sink_seals_on_drop() {
        let dir = std::env::temp_dir().join("obs_sink_atomic_drop");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("events.jsonl");
        {
            let mut s = JsonlSink::create_atomic(&path).unwrap();
            s.record(&ev(7));
        }
        assert!(path.exists(), "drop seals");
        assert!(!dir.join("events.jsonl.partial").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_line_interleaves_raw_json() {
        let dir = std::env::temp_dir().join("obs_sink_raw");
        let path = dir.join("mixed.jsonl");
        {
            let mut s = JsonlSink::create(&path).unwrap();
            s.write_line("{\"Header\":{\"v\":1}}");
            s.record(&ev(1));
            assert_eq!(s.written(), 2);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().next().unwrap().contains("Header"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
