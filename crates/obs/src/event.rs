//! The event taxonomy: one variant per load-bearing moment of a run.
//!
//! Events are small `Copy` values — no strings, no heap — so emitting
//! one on the simulation hot path costs a branch and a few stores.
//! Identifiers are numeric (`tx` is the simulator-global transmission
//! id, `gw` the gateway index, `dev` a raw DevAddr) and times are
//! simulation microseconds, matching the `sim` crate throughout.
//!
//! Packet-lifecycle events additionally carry a `trace` — the
//! [`TraceId`](crate::trace::TraceId) minted once per uplink
//! transmission and threaded as a plain `u64` through every layer the
//! packet touches. Unlike `tx` (which restarts at 0 every run), a
//! trace id is unique across all runs recorded into one stream, so a
//! multi-run JSONL file still reconstructs into unambiguous per-packet
//! timelines. `trace == 0` means "untraced" (events emitted by call
//! sites that predate tracing, or streams from older binaries —
//! deserialization defaults the field to 0).
//!
//! Serialization uses serde's external enum tagging, so a JSONL stream
//! reads as `{"DecoderAcquired":{"t_us":…,"gw":…,…}}` — one
//! self-describing object per line. The taxonomy is documented for
//! consumers in `docs/OBSERVABILITY.md`; adding a variant or a
//! defaulted field is a backwards-compatible schema change (readers
//! ignore unknown tags, old streams parse with the default), removing
//! or renaming one requires bumping
//! [`crate::report::RUN_REPORT_VERSION`].

use serde::{Deserialize, Serialize};

/// Why a lost packet was lost — the paper's Fig. 4 taxonomy, mirrored
/// here so `obs` does not depend on `sim` (the dependency points the
/// other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Own-network packets exhausted the decoder pool.
    DecoderIntra,
    /// Foreign-network packets held the decoders (Fig. 3e/f).
    DecoderInter,
    /// Same-channel same-SF collision within the network.
    ChannelIntra,
    /// Same-channel same-SF collision with a coexisting network.
    ChannelInter,
    /// Below-threshold SNR, cross-SF interference, out of range.
    Other,
    /// Injected infrastructure fault (chaos layer).
    Infrastructure,
}

/// Server-side deduplication outcome (mirrors
/// `netserver::dedup::DedupOutcome`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DedupKind {
    /// First copy of the frame: processed.
    New,
    /// Another gateway's copy of an already-processed frame.
    Duplicate,
    /// Delayed past the dedup window (faulty backhaul): dropped.
    Late,
}

/// Which fault domain a [`ObsEvent::FaultActivated`] window belongs to
/// (mirrors `chaos::FaultSpec` without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Gateway down (crash + reboot window).
    GatewayCrash,
    /// Part of a gateway's decoder pool stuck.
    DecoderLockup,
    /// Gateway timestamp counter drift.
    ClockDrift,
    /// Backhaul datagram loss.
    BackhaulLoss,
    /// Backhaul datagram delay.
    BackhaulDelay,
    /// Backhaul datagram duplication.
    BackhaulDuplicate,
    /// Backhaul datagram reordering.
    BackhaulReorder,
    /// Master control plane unreachable.
    MasterPartition,
    /// Master responses delayed.
    MasterSlowResponse,
}

/// Where a Master-assigned channel plan came from (mirrors
/// `alphawan::master::PlanSource`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanServed {
    /// Fetched from the Master on this call.
    Fresh,
    /// Served from the local cache while the Master was unreachable —
    /// the degraded-operation signal.
    Cached,
}

/// Which transport surface a service daemon accepted a peer on
/// (mirrors the `svc` crate's daemons without depending on them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SvcConn {
    /// UDP ingest: first datagram seen from a new gateway EUI.
    Udp,
    /// TCP: an accepted plan-server or metrics connection.
    Tcp,
}

/// Which CP search algorithm produced a [`ObsEvent::SolverRun`]
/// (mirrors `alphawan::cp` without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// The §4.3.1 evolutionary solver (`GaSolver`).
    Ga,
    /// The simulated-annealing ablation solver (`AnnealSolver`).
    Anneal,
}

/// One observed moment. See the module docs for identifier, trace and
/// time conventions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ObsEvent {
    /// One gateway's static identity, announced once per run before any
    /// packet event, so stream consumers can attribute decoder holds to
    /// the *gateway's* network (foreign vs own) without out-of-band
    /// configuration. Config-plane: no timestamp, no trace.
    GatewayInfo {
        /// Gateway index.
        gw: u32,
        /// Operator/network that deployed this gateway.
        network: u32,
        /// Decoder pool hardware capacity.
        capacity: u32,
    },
    /// A transmission's first preamble symbol went on air (medium
    /// arbitration registers it as a potential interferer).
    TxStart {
        /// Event time, simulation µs.
        t_us: u64,
        /// Per-transmission trace id (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Transmission id.
        tx: u64,
        /// Sending node index.
        node: u64,
        /// Sender's operator/network id.
        network: u32,
    },
    /// A transmission's preamble completed — the FCFS dispatch instant
    /// at every gateway (§3.1 insight 1). Emitted once per
    /// transmission; per-gateway admission outcomes follow as decoder
    /// events.
    PacketLockOn {
        /// Lock-on time, simulation µs.
        t_us: u64,
        /// Per-transmission trace id (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Transmission id.
        tx: u64,
        /// Sending node index.
        node: u64,
        /// Sender's operator/network id.
        network: u32,
    },
    /// A gateway assigned a decoder to the packet.
    DecoderAcquired {
        /// Acquisition time, simulation µs.
        t_us: u64,
        /// Per-transmission trace id (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Gateway index.
        gw: u32,
        /// Transmission id now holding the decoder.
        tx: u64,
        /// Pool occupancy *after* this acquisition.
        in_use: u32,
        /// Pool hardware capacity.
        capacity: u32,
    },
    /// A gateway released the decoder a packet was holding.
    DecoderReleased {
        /// Release time (the packet's airtime end), simulation µs.
        t_us: u64,
        /// Per-transmission trace id (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Gateway index.
        gw: u32,
        /// Transmission id that held the decoder.
        tx: u64,
        /// Pool occupancy *after* this release.
        in_use: u32,
    },
    /// A detected packet found every decoder busy and was dropped — the
    /// decoder-contention loss.
    PoolFullDrop {
        /// Drop time (lock-on instant), simulation µs.
        t_us: u64,
        /// Per-transmission trace id (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Gateway index.
        gw: u32,
        /// Dropped transmission id.
        tx: u64,
        /// Decoders locked up by fault injection at that instant.
        locked: u32,
    },
    /// A pool-full drop happened while foreign-network packets held
    /// decoders: preemption would have saved the packet, but FCFS
    /// dispatch never steals a busy decoder (§3.1). Always paired with
    /// a [`ObsEvent::PoolFullDrop`] at the same instant.
    StealRefused {
        /// Drop time, simulation µs.
        t_us: u64,
        /// Per-transmission trace id (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Gateway index.
        gw: u32,
        /// Dropped transmission id.
        tx: u64,
        /// Foreign-held decoders at that instant.
        foreign_held: u32,
    },
    /// Final per-packet verdict after medium arbitration: delivered to
    /// at least one own-network gateway, or lost with a cause.
    PacketOutcome {
        /// The transmission's airtime end, simulation µs.
        t_us: u64,
        /// Per-transmission trace id (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Transmission id.
        tx: u64,
        /// Whether any own-network gateway received it.
        delivered: bool,
        /// Loss cause when not delivered.
        cause: Option<LossKind>,
    },
    /// The network server classified an uplink copy.
    Dedup {
        /// The copy's reception timestamp, µs.
        t_us: u64,
        /// Trace id of the uplink transmission this copy carries
        /// (threaded through the forwarder codec; 0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Raw DevAddr of the frame.
        dev: u32,
        /// Frame counter.
        fcnt: u32,
        /// Reporting gateway id.
        gw: u32,
        /// Classification.
        outcome: DedupKind,
    },
    /// One Master TCP connect attempt (inside the retry loop).
    MasterConnectAttempt {
        /// Control-plane trace of the plan request driving this
        /// connect sequence (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// 0-based attempt number within this retry sequence.
        attempt: u32,
        /// Whether the TCP connect succeeded.
        ok: bool,
        /// Backoff delay scheduled *after* this attempt, µs (0 when no
        /// further attempt follows).
        backoff_us: u64,
    },
    /// A Master RPC failed on an established session and the session is
    /// being re-established (the resilient client's transport retry).
    MasterRpcRetry {
        /// Control-plane trace of the plan request being retried
        /// (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// How many sessions this client has established so far.
        reconnects: u64,
    },
    /// The resilient client served a channel plan.
    MasterPlanServed {
        /// Control-plane trace of this plan request — shared with the
        /// connect attempts and RPC retries it caused (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Fresh from the Master, or degraded to the local cache.
        source: PlanServed,
        /// Number of channels in the served plan.
        channels: u32,
    },
    /// One complete CP-solver search finished (a Master plan request,
    /// a capacity upgrade, or a bench invocation). Control-plane: no
    /// simulation timestamp; `wall_us` is host wall-clock time.
    SolverRun {
        /// Control-plane trace of the plan request that ran the solver
        /// (0 = untraced, e.g. direct bench invocations).
        #[serde(default)]
        trace: u64,
        /// Which search algorithm ran.
        solver: SolverKind,
        /// Problem size: node count.
        nodes: u32,
        /// Problem size: gateway count.
        gateways: u32,
        /// Objective evaluations performed across the whole search.
        evaluations: u64,
        /// Generations (GA) or iterations (annealing) executed.
        generations: u32,
        /// Scoring worker threads used (1 = serial).
        workers: u32,
        /// Host wall-clock duration of the search, µs.
        wall_us: u64,
    },
    /// One complete simulation run finished: aggregate counters from
    /// the indexed event loop. Emitted by the run's *caller* (the world
    /// only stores them, see `sim::SimRunStats`) because `wall_us` is
    /// host wall-clock and would break byte-identical event streams.
    SimRunStats {
        /// Trace of the run (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Transmissions in the plan.
        txs: u64,
        /// Events processed (3 × txs).
        events: u64,
        /// Gateways in the world.
        gateways: u32,
        /// (transmission, gateway) admission pairs visited at lock-on
        /// after the candidate cull.
        candidate_visits: u64,
        /// `txs × gateways`: the pairs an un-indexed loop would visit.
        candidate_ceiling: u64,
        /// Accumulator-mode: incremental contributions added at TxStart
        /// (0 in scan mode).
        #[serde(default)]
        accum_updates: u64,
        /// Accumulator-mode: contributions exactly undone at TxEnd.
        #[serde(default)]
        accum_undos: u64,
        /// Accumulator-mode: stale lazy-max index entries evicted
        /// during verdict queries.
        #[serde(default)]
        accum_evictions: u64,
        /// Time-wheel level cascades across all shards (0 before the
        /// wheel scheduler).
        #[serde(default)]
        wheel_cascades: u64,
        /// Host wall-clock duration of the run, µs.
        wall_us: u64,
    },
    /// One shard of a sharded simulation run finished (the per-shard
    /// roll-up under an aggregate [`ObsEvent::SimRunStats`]). Emitted
    /// by the run's caller, like `SimRunStats`, because `wall_us` is
    /// host wall-clock.
    SimShardStats {
        /// Trace of the run (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Shard index within the run.
        shard: u32,
        /// Transmissions routed to this shard.
        txs: u64,
        /// Events this shard processed (3 × its txs).
        events: u64,
        /// (transmission, gateway) admission pairs visited at lock-on.
        candidate_visits: u64,
        /// Peak simultaneously-live transmission slots (the streaming
        /// loop's working-set bound).
        peak_live: u64,
        /// Accumulator-mode: incremental contributions added at TxStart
        /// (0 in scan mode).
        #[serde(default)]
        accum_updates: u64,
        /// Accumulator-mode: contributions exactly undone at TxEnd.
        #[serde(default)]
        accum_undos: u64,
        /// Accumulator-mode: stale lazy-max index entries evicted
        /// during verdict queries.
        #[serde(default)]
        accum_evictions: u64,
        /// Time-wheel level cascades in this shard's scheduler.
        #[serde(default)]
        wheel_cascades: u64,
        /// Host wall-clock duration of the shard's event loop, µs.
        wall_us: u64,
    },
    /// A service daemon accepted a new peer. Control-plane: `wall_us`
    /// is host wall-clock time since daemon start, not simulation
    /// time.
    SvcAccept {
        /// Host wall-clock µs since daemon start.
        wall_us: u64,
        /// Transport surface the peer arrived on.
        conn: SvcConn,
        /// Peer identity: gateway EUI (UDP) or connection index (TCP).
        peer: u64,
    },
    /// A service daemon ingested one PUSH_DATA datagram (which may
    /// carry many rxpk copies). Control-plane timing like
    /// [`ObsEvent::SvcAccept`]; the per-copy dedup classifications
    /// follow as [`ObsEvent::Dedup`] events on the worker shards.
    SvcIngest {
        /// Host wall-clock µs since daemon start.
        wall_us: u64,
        /// Trace of the datagram's first traced rxpk (0 = untraced).
        #[serde(default)]
        trace: u64,
        /// Sending gateway EUI.
        gw: u64,
        /// rxpk copies carried in the datagram.
        pkts: u32,
    },
    /// A fault-plan entry is scheduled against this run (one event per
    /// `FaultSpec`, emitted when the plan is registered with the sink).
    FaultActivated {
        /// Fault domain.
        kind: FaultKind,
        /// Target gateway index, or −1 for faults without one
        /// (backhaul/Master domains).
        gw: i64,
        /// Window start, µs.
        start_us: u64,
        /// Window end, µs (`u64::MAX` = until the end of the run).
        end_us: u64,
    },
}

impl ObsEvent {
    /// The event's timestamp in simulation microseconds, where one
    /// exists (control-plane events are ordered by emission, not by
    /// simulation time).
    pub fn t_us(&self) -> Option<u64> {
        match *self {
            ObsEvent::TxStart { t_us, .. }
            | ObsEvent::PacketLockOn { t_us, .. }
            | ObsEvent::DecoderAcquired { t_us, .. }
            | ObsEvent::DecoderReleased { t_us, .. }
            | ObsEvent::PoolFullDrop { t_us, .. }
            | ObsEvent::StealRefused { t_us, .. }
            | ObsEvent::PacketOutcome { t_us, .. }
            | ObsEvent::Dedup { t_us, .. } => Some(t_us),
            ObsEvent::GatewayInfo { .. }
            | ObsEvent::MasterConnectAttempt { .. }
            | ObsEvent::MasterRpcRetry { .. }
            | ObsEvent::MasterPlanServed { .. }
            | ObsEvent::SolverRun { .. }
            | ObsEvent::SimRunStats { .. }
            | ObsEvent::SimShardStats { .. }
            | ObsEvent::SvcAccept { .. }
            | ObsEvent::SvcIngest { .. }
            | ObsEvent::FaultActivated { .. } => None,
        }
    }

    /// The event's trace id, where one exists and is set (`trace == 0`
    /// means the emitting call site was untraced and reads as `None`).
    pub fn trace(&self) -> Option<u64> {
        let trace = match *self {
            ObsEvent::TxStart { trace, .. }
            | ObsEvent::PacketLockOn { trace, .. }
            | ObsEvent::DecoderAcquired { trace, .. }
            | ObsEvent::DecoderReleased { trace, .. }
            | ObsEvent::PoolFullDrop { trace, .. }
            | ObsEvent::StealRefused { trace, .. }
            | ObsEvent::PacketOutcome { trace, .. }
            | ObsEvent::Dedup { trace, .. }
            | ObsEvent::MasterConnectAttempt { trace, .. }
            | ObsEvent::MasterRpcRetry { trace, .. }
            | ObsEvent::MasterPlanServed { trace, .. }
            | ObsEvent::SolverRun { trace, .. }
            | ObsEvent::SimRunStats { trace, .. }
            | ObsEvent::SimShardStats { trace, .. }
            | ObsEvent::SvcIngest { trace, .. } => trace,
            ObsEvent::GatewayInfo { .. }
            | ObsEvent::SvcAccept { .. }
            | ObsEvent::FaultActivated { .. } => 0,
        };
        (trace != 0).then_some(trace)
    }

    /// A stable snake_case name for the variant, used as the counter
    /// key in [`crate::metrics::MetricsSink`] and in reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ObsEvent::GatewayInfo { .. } => "gateway_info",
            ObsEvent::TxStart { .. } => "tx_start",
            ObsEvent::PacketLockOn { .. } => "packet_lock_on",
            ObsEvent::DecoderAcquired { .. } => "decoder_acquired",
            ObsEvent::DecoderReleased { .. } => "decoder_released",
            ObsEvent::PoolFullDrop { .. } => "pool_full_drop",
            ObsEvent::StealRefused { .. } => "steal_refused",
            ObsEvent::PacketOutcome { .. } => "packet_outcome",
            ObsEvent::Dedup { .. } => "dedup",
            ObsEvent::MasterConnectAttempt { .. } => "master_connect_attempt",
            ObsEvent::MasterRpcRetry { .. } => "master_rpc_retry",
            ObsEvent::MasterPlanServed { .. } => "master_plan_served",
            ObsEvent::SolverRun { .. } => "solver_run",
            ObsEvent::SimRunStats { .. } => "sim_run_stats",
            ObsEvent::SimShardStats { .. } => "sim_shard_stats",
            ObsEvent::SvcAccept { .. } => "svc_accept",
            ObsEvent::SvcIngest { .. } => "svc_ingest",
            ObsEvent::FaultActivated { .. } => "fault_activated",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json() {
        let events = [
            ObsEvent::GatewayInfo {
                gw: 0,
                network: 1,
                capacity: 16,
            },
            ObsEvent::PacketLockOn {
                t_us: 1_000,
                trace: 0xA1,
                tx: 7,
                node: 3,
                network: 1,
            },
            ObsEvent::DecoderAcquired {
                t_us: 1_000,
                trace: 0xA1,
                gw: 0,
                tx: 7,
                in_use: 4,
                capacity: 16,
            },
            ObsEvent::PacketOutcome {
                t_us: 50_000,
                trace: 0xA1,
                tx: 7,
                delivered: false,
                cause: Some(LossKind::DecoderInter),
            },
            ObsEvent::FaultActivated {
                kind: FaultKind::GatewayCrash,
                gw: 2,
                start_us: 0,
                end_us: u64::MAX,
            },
        ];
        for ev in events {
            let s = serde_json::to_string(&ev).unwrap();
            let back: ObsEvent = serde_json::from_str(&s).unwrap();
            assert_eq!(back, ev, "{s}");
        }
    }

    #[test]
    fn pre_trace_streams_still_parse() {
        // A line written before the trace field existed: the field
        // defaults to 0 and the event reads as untraced.
        let old = r#"{"PacketLockOn":{"t_us":5,"tx":1,"node":0,"network":2}}"#;
        let ev: ObsEvent = serde_json::from_str(old).unwrap();
        assert_eq!(
            ev,
            ObsEvent::PacketLockOn {
                t_us: 5,
                trace: 0,
                tx: 1,
                node: 0,
                network: 2,
            }
        );
        assert_eq!(ev.trace(), None);
    }

    #[test]
    fn timestamps_where_expected() {
        assert_eq!(
            ObsEvent::Dedup {
                t_us: 5,
                trace: 9,
                dev: 1,
                fcnt: 2,
                gw: 0,
                outcome: DedupKind::New,
            }
            .t_us(),
            Some(5)
        );
        assert_eq!(
            ObsEvent::MasterRpcRetry {
                trace: 0,
                reconnects: 1
            }
            .t_us(),
            None,
            "control-plane events carry no simulation clock"
        );
        assert_eq!(
            ObsEvent::GatewayInfo {
                gw: 0,
                network: 1,
                capacity: 16,
            }
            .t_us(),
            None,
            "config-plane events carry no simulation clock"
        );
    }

    #[test]
    fn trace_accessor_treats_zero_as_untraced() {
        let traced = ObsEvent::TxStart {
            t_us: 0,
            trace: 42,
            tx: 0,
            node: 0,
            network: 0,
        };
        assert_eq!(traced.trace(), Some(42));
        let untraced = ObsEvent::PoolFullDrop {
            t_us: 0,
            trace: 0,
            gw: 0,
            tx: 0,
            locked: 0,
        };
        assert_eq!(untraced.trace(), None);
        assert_eq!(
            ObsEvent::FaultActivated {
                kind: FaultKind::ClockDrift,
                gw: 0,
                start_us: 0,
                end_us: 1,
            }
            .trace(),
            None
        );
    }

    #[test]
    fn kind_names_distinct() {
        let names = [
            ObsEvent::TxStart {
                t_us: 0,
                trace: 0,
                tx: 0,
                node: 0,
                network: 0,
            }
            .kind_name(),
            ObsEvent::MasterRpcRetry {
                trace: 0,
                reconnects: 0,
            }
            .kind_name(),
            ObsEvent::GatewayInfo {
                gw: 0,
                network: 0,
                capacity: 0,
            }
            .kind_name(),
        ];
        assert_ne!(names[0], names[1]);
        assert_ne!(names[1], names[2]);
    }
}
