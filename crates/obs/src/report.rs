//! The versioned `RunReport` document: one JSON file per run folding
//! the derived metrics (from [`MetricsSink`]) and the simulator's own
//! aggregate `RunMetrics` together, so a run's outcome and its
//! observability derivatives travel as a single artifact under
//! `results/out/`.
//!
//! The schema is versioned by [`RUN_REPORT_VERSION`]; the field-level
//! contract lives in `docs/OBSERVABILITY.md`. Maps are flattened into
//! sorted `Vec`s of named entries ([`NamedCount`], [`NamedHistogram`])
//! so serialization order is deterministic and stable across runs.

use crate::metrics::MetricsSink;
use serde::{Deserialize, Serialize};

/// Current `RunReport` schema version. Bump on any
/// backwards-incompatible change (field removal/rename, semantics
/// change); additive changes keep the version.
pub const RUN_REPORT_VERSION: u32 = 1;

/// One named counter value (a sorted-map entry).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedCount {
    /// Counter name (event kind or derived counter).
    pub name: String,
    /// Final count.
    pub value: u64,
}

/// One named gauge value (a sorted-map entry).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedGauge {
    /// Gauge name.
    pub name: String,
    /// Final value.
    pub value: f64,
}

/// One named histogram snapshot (a sorted-map entry).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedHistogram {
    /// Histogram name (e.g. `dispatch_latency_us`).
    pub name: String,
    /// Upper-inclusive bucket bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one entry longer than `bounds` (overflow
    /// bucket last).
    pub counts: Vec<u64>,
    /// Total samples.
    pub total: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Median upper-bound estimate (see `Histogram::quantile`); 0 with
    /// no samples. Defaulted so pre-percentile reports still parse.
    #[serde(default)]
    pub p50: u64,
    /// 95th-percentile upper-bound estimate.
    #[serde(default)]
    pub p95: u64,
    /// 99th-percentile upper-bound estimate.
    #[serde(default)]
    pub p99: u64,
}

/// Per-gateway derived state: occupancy timeline and utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayReport {
    /// Gateway index.
    pub gw: u32,
    /// Decoder pool hardware capacity.
    pub capacity: u32,
    /// Highest concurrent occupancy observed.
    pub peak_in_use: u32,
    /// Mean busy fraction of the pool over the observed span.
    pub utilization: f64,
    /// Occupancy step function: `[t_us, in_use_after]` pairs.
    pub occupancy: Vec<(u64, u32)>,
}

/// The versioned per-run observability document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version ([`RUN_REPORT_VERSION`]).
    pub version: u32,
    /// Experiment name (usually the bench figure / CSV stem).
    pub experiment: String,
    /// Total events the metrics sink consumed.
    pub events_recorded: u64,
    /// All counters, sorted by name.
    pub counters: Vec<NamedCount>,
    /// All gauges, sorted by name.
    pub gauges: Vec<NamedGauge>,
    /// All histograms, sorted by name.
    pub histograms: Vec<NamedHistogram>,
    /// Per-gateway derived state, sorted by gateway index.
    pub gateways: Vec<GatewayReport>,
    /// The simulator's own `sim::metrics::RunMetrics` document, folded
    /// in as a serde value (kept schema-agnostic so `obs` stays a leaf
    /// crate).
    pub run_metrics: Option<serde::Value>,
}

impl RunReport {
    /// An empty report for `experiment` at the current schema version.
    pub fn new(experiment: &str) -> RunReport {
        RunReport {
            version: RUN_REPORT_VERSION,
            experiment: experiment.to_string(),
            events_recorded: 0,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            gateways: Vec::new(),
            run_metrics: None,
        }
    }

    /// Build a report from an aggregating sink's final state.
    pub fn from_metrics(experiment: &str, sink: &MetricsSink) -> RunReport {
        let reg = sink.registry();
        let mut report = RunReport::new(experiment);
        report.events_recorded = sink.events();
        report.counters = reg
            .counters()
            .map(|(name, value)| NamedCount {
                name: name.to_string(),
                value,
            })
            .collect();
        report.gauges = reg
            .gauges()
            .map(|(name, value)| NamedGauge {
                name: name.to_string(),
                value,
            })
            .collect();
        report.histograms = reg
            .histograms()
            .map(|(name, h)| NamedHistogram {
                name: name.to_string(),
                bounds: h.bounds().to_vec(),
                counts: h.counts().to_vec(),
                total: h.total(),
                sum: h.sum(),
                p50: h.p50(),
                p95: h.p95(),
                p99: h.p99(),
            })
            .collect();
        report.gateways = sink
            .gateways()
            .iter()
            .map(|(&gw, occ)| GatewayReport {
                gw,
                capacity: occ.capacity,
                peak_in_use: occ.peak_in_use,
                utilization: occ.utilization(),
                occupancy: occ.timeline.clone(),
            })
            .collect();
        report
    }

    /// Fold in an external metrics document (typically
    /// `sim::metrics::RunMetrics`) by value, without `obs` learning its
    /// schema.
    pub fn set_run_metrics<T: Serialize>(&mut self, metrics: &T) {
        self.run_metrics = Some(metrics.to_value());
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("RunReport serialization is infallible")
    }

    /// Write the report as JSON to `path`, creating parent directories.
    /// The bytes land in a `.partial` sibling first and are renamed
    /// into place, so a crash mid-write never leaves a truncated
    /// report behind.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(crate::sink::PARTIAL_SUFFIX);
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsEvent;
    use crate::sink::ObsSink;

    fn populated_sink() -> MetricsSink {
        let mut m = MetricsSink::new();
        m.record(&ObsEvent::DecoderAcquired {
            t_us: 0,
            trace: 0,
            gw: 1,
            tx: 5,
            in_use: 1,
            capacity: 16,
        });
        m.record(&ObsEvent::DecoderReleased {
            t_us: 80_000,
            trace: 0,
            gw: 1,
            tx: 5,
            in_use: 0,
        });
        m.record(&ObsEvent::PacketOutcome {
            t_us: 80_000,
            trace: 0,
            tx: 5,
            delivered: true,
            cause: None,
        });
        m
    }

    #[test]
    fn report_folds_sink_state() {
        let r = RunReport::from_metrics("fig03", &populated_sink());
        assert_eq!(r.version, RUN_REPORT_VERSION);
        assert_eq!(r.experiment, "fig03");
        assert_eq!(r.events_recorded, 3);
        assert!(r
            .counters
            .iter()
            .any(|c| c.name == "delivered" && c.value == 1));
        assert_eq!(r.gateways.len(), 1);
        assert_eq!(r.gateways[0].gw, 1);
        assert_eq!(r.gateways[0].peak_in_use, 1);
        assert_eq!(r.gateways[0].occupancy, vec![(0, 1), (80_000, 0)]);
        let h = &r.histograms[0];
        assert_eq!(h.name, "dispatch_latency_us");
        assert_eq!(h.total, 1);
        assert_eq!(h.sum, 80_000);
        // The single 80 000 µs sample is every percentile.
        assert_eq!((h.p50, h.p95, h.p99), (80_000, 80_000, 80_000));
    }

    #[test]
    fn pre_percentile_reports_still_parse() {
        let old =
            r#"{"name":"dispatch_latency_us","bounds":[10],"counts":[1,0],"total":1,"sum":4}"#;
        let h: NamedHistogram = serde_json::from_str(old).unwrap();
        assert_eq!((h.p50, h.p95, h.p99), (0, 0, 0), "defaulted");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut r = RunReport::from_metrics("fig05", &populated_sink());
        #[derive(Serialize)]
        struct Fake {
            prr: f64,
        }
        r.set_run_metrics(&Fake { prr: 0.93 });
        let s = r.to_json();
        let back: RunReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
        assert!(s.contains("\"prr\""), "folded run metrics serialize: {s}");
    }

    #[test]
    fn report_serialization_is_deterministic() {
        let a = RunReport::from_metrics("x", &populated_sink()).to_json();
        let b = RunReport::from_metrics("x", &populated_sink()).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn report_writes_to_disk() {
        let dir = std::env::temp_dir().join("obs_report_test");
        let path = dir.join("nested").join("report.json");
        let r = RunReport::new("empty");
        r.write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
