//! # obs — structured observability for the AlphaWAN reproduction
//!
//! The paper's entire argument rests on *when* decoders are occupied
//! (FCFS lock-on dispatch and decoder contention, §3.1), yet aggregate
//! metrics only say how a run *ended*. This crate records the
//! load-bearing moments as typed events so a decoder-pool occupancy
//! timeline, a per-packet dispatch trace, or a Master retry history can
//! be reconstructed after the fact:
//!
//! * [`event`] — the event taxonomy: packet lock-on, decoder
//!   acquire/release, pool-full drops, steal refusals (FCFS never
//!   preempts), dedup outcomes, Master RPC attempts and cache
//!   degradation, and fault-plan activations;
//! * [`sink`] — the zero-alloc-on-hot-path [`ObsSink`] trait with
//!   [`NullSink`] (free), [`RingSink`] (bounded in-memory),
//!   [`JsonlSink`] (one JSON object per line) and composition helpers;
//! * [`metrics`] — a dependency-free registry of counters, gauges and
//!   fixed-bucket histograms, plus [`MetricsSink`] which folds the
//!   event stream into decoder occupancy timelines, per-gateway
//!   utilization and dispatch-latency histograms;
//! * [`report`] — the versioned [`RunReport`] JSON document that the
//!   `bench` harness writes under `results/out/` (see
//!   `docs/OBSERVABILITY.md` for the schema);
//! * [`trace`] — per-transmission [`trace::TraceId`]s threaded through
//!   every packet-lifecycle event, the [`TraceAnalyzer`] that joins an
//!   event stream back into causal per-packet timelines with
//!   decoder-contention attribution (blocker→victim pairs for every
//!   pool-full drop), and Chrome trace-event export for Perfetto;
//! * [`flight`] — the [`FlightRecorder`] sink: a bounded ring that
//!   snapshots the recent past to JSONL (with a trigger-context header)
//!   on chaos fault activations, pool-full drop bursts, SLO breaches,
//!   or explicit request;
//! * [`span`] — a low-overhead hierarchical span profiler (scoped RAII
//!   timers, exact counts, sampled durations) instrumenting the sim
//!   engine phases, the CP-solver stages and the svc shard workers —
//!   free when detached;
//! * [`tsdb`] — the embedded step-aggregated time-series store:
//!   fixed-interval delta [`Frame`]s in a bounded ring, windowed rates
//!   and per-window quantiles, plus per-shard [`Heartbeat`]s for
//!   streamed runs;
//! * [`slo`] — burn-rate rules over tsdb frames that trigger the
//!   [`FlightRecorder`] in-process when violated.
//!
//! Events are plain `Copy` data and every sink implementation is
//! deterministic: a fixed-seed run produces a byte-identical JSONL
//! stream on every execution, which the workspace integration tests
//! assert.

#![deny(missing_docs)]

pub mod event;
pub mod flight;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod slo;
pub mod span;
pub mod trace;
pub mod tsdb;

pub use event::{DedupKind, FaultKind, LossKind, ObsEvent, PlanServed, SolverKind, SvcConn};
pub use flight::{FlightHeader, FlightRecorder, FLIGHT_HEADER_VERSION};
pub use metrics::{
    proc_mem, GatewayOccupancy, Histogram, MetricsSink, ProcMem, Registry,
    DISPATCH_LATENCY_BOUNDS_US, SOLVER_WALL_BOUNDS_US,
};
pub use report::{
    GatewayReport, NamedCount, NamedGauge, NamedHistogram, RunReport, RUN_REPORT_VERSION,
};
pub use sink::{JsonlSink, NullSink, ObsSink, RingSink, SharedSink, TeeSink, VecSink};
pub use slo::{SloBreach, SloRule, SloSet};
pub use span::{SpanGuard, SpanId, SpanRecord, SpanReport, SpanSiteReport, SPAN_REPORT_VERSION};
pub use trace::{
    chrome_trace, control_trace, packet_trace, ChromeTrace, ContentionReport, PacketTimeline,
    TraceAnalyzer, TraceId, TraceReport,
};
pub use tsdb::{
    Frame, Heartbeat, HeartbeatWriter, HistWindow, SeriesDoc, Tsdb, TsdbSink, TSDB_SCHEMA_VERSION,
};
