//! Embedded step-aggregated time-series store.
//!
//! Cumulative counters say how a run *ended*; the interesting dynamics
//! (ingest rate dips, dispatch-latency spikes, dedup-late bursts) are
//! time-local. [`Tsdb`] closes fixed-interval windows over a
//! [`Registry`] and stores the *deltas* of every counter and histogram
//! (plus changed gauges) as bounded ring [`Frame`]s, yielding windowed
//! rates (`pkts/sec over the last 10 s`) and per-window quantiles
//! (`p99 dispatch latency this second`) without unbounded memory.
//!
//! Two feed modes share the same window/delta machinery:
//!
//! * **Event-time driven** ([`TsdbSink`]): an [`ObsSink`] that folds the
//!   deterministic event stream through a [`MetricsSink`] and closes
//!   windows **only when simulation time advances past a boundary**.
//!   Because closes depend solely on the event stream, the resulting
//!   frames are byte-identical across runs regardless of when (or
//!   whether) a live viewer polls — [`Tsdb::poll`] is a read-only
//!   provisional view of the open window and never mutates state. The
//!   workspace proptest asserts this.
//! * **Wall-sampled** ([`Tsdb::sample`]): svc daemons call this from a
//!   sampler thread on a fixed tick against their live registry; the
//!   delta since the previous tick is attributed to the closing window.
//!
//! The module also hosts the per-shard [`Heartbeat`] frame and the
//! rate-limited JSONL [`HeartbeatWriter`] used by streamed
//! million-node runs (`ALPHAWAN_HEARTBEAT`), viewable live with
//! `obsctl tail`.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::event::ObsEvent;
use crate::metrics::{Histogram, MetricsSink, Registry};
use crate::sink::ObsSink;

/// Schema version stamped into [`SeriesDoc`].
pub const TSDB_SCHEMA_VERSION: u32 = 1;

/// Default window length: one second of run time.
pub const DEFAULT_INTERVAL_US: u64 = 1_000_000;

/// Default frame-ring capacity (~10 minutes at 1 s windows).
pub const DEFAULT_FRAME_CAP: usize = 600;

/// Windowed histogram summary: delta counts between two registry
/// snapshots reduced to count/sum and bucket-bound quantile estimates.
///
/// `max` is capped by the *run* maximum (histograms do not track a
/// per-window max), so it is an upper bound for the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistWindow {
    /// Samples recorded in this window.
    pub count: u64,
    /// Sum of samples in this window (saturating).
    pub sum: u64,
    /// Median upper-bound estimate for the window.
    pub p50: u64,
    /// 95th-percentile upper-bound estimate for the window.
    pub p95: u64,
    /// 99th-percentile upper-bound estimate for the window.
    pub p99: u64,
    /// Run-max cap applied to the estimates (see type docs).
    pub max: u64,
}

/// One closed aggregation window. Counters and histograms are window
/// *deltas*; gauges are the values that changed during the window.
/// Windows in which nothing changed produce no frame (gaps are visible
/// as jumps in `t_start_us`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Monotonic frame number (increments per emitted frame).
    pub seq: u64,
    /// Window start, microseconds (simulation or wall clock per mode).
    pub t_start_us: u64,
    /// Window end (exclusive), microseconds.
    pub t_end_us: u64,
    /// Nonzero counter deltas, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges whose value changed during the window, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram windows with at least one sample, sorted by name.
    pub hists: Vec<(String, HistWindow)>,
}

impl Frame {
    /// Whether the frame carries no data.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Delta of counter `name` in this window (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }
}

/// Serializable document served by svc `/series` and consumed by
/// `obsctl top`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesDoc {
    /// Schema version ([`TSDB_SCHEMA_VERSION`]).
    pub version: u32,
    /// Window length, microseconds.
    pub interval_us: u64,
    /// Closed frames, oldest first.
    pub frames: Vec<Frame>,
}

/// The step-aggregated store: bounded ring of closed [`Frame`]s plus
/// the open-window baseline.
#[derive(Debug, Clone)]
pub struct Tsdb {
    interval_us: u64,
    capacity: usize,
    frames: VecDeque<Frame>,
    seq: u64,
    open_start_us: u64,
    started: bool,
    prev: Registry,
}

impl Tsdb {
    /// A store closing `interval_us`-wide windows, keeping at most
    /// `capacity` frames.
    ///
    /// # Panics
    /// Panics if `interval_us` is 0 or `capacity` is 0.
    pub fn new(interval_us: u64, capacity: usize) -> Tsdb {
        assert!(interval_us > 0, "tsdb interval must be positive");
        assert!(capacity > 0, "tsdb capacity must be positive");
        Tsdb {
            interval_us,
            capacity,
            frames: VecDeque::new(),
            seq: 0,
            open_start_us: 0,
            started: false,
            prev: Registry::new(),
        }
    }

    /// Window length, microseconds.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Closed frames, oldest first.
    pub fn frames(&self) -> impl DoubleEndedIterator<Item = &Frame> + ExactSizeIterator {
        self.frames.iter()
    }

    /// Number of closed frames currently retained.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frame has been closed yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Advance the clock to `now_us`, closing every window whose end is
    /// ≤ `now_us` against the current registry state. The accumulated
    /// delta is attributed to the window that was open when it
    /// occurred (event-time mode feeds events strictly after advancing,
    /// so attribution is exact; wall-sampled mode smears by at most one
    /// sampler tick).
    pub fn advance(&mut self, now_us: u64, reg: &Registry) {
        if !self.started {
            self.started = true;
            self.open_start_us = now_us - now_us % self.interval_us;
            return;
        }
        if now_us < self.open_start_us + self.interval_us {
            return;
        }
        let frame = self.diff_frame(reg, self.open_start_us + self.interval_us);
        if !frame.is_empty() {
            self.frames.push_back(frame);
            self.seq += 1;
            while self.frames.len() > self.capacity {
                self.frames.pop_front();
            }
        }
        self.prev = reg.clone();
        self.open_start_us = now_us - now_us % self.interval_us;
    }

    /// Wall-sampled mode: advance to `now_us` and refresh the baseline.
    /// Call on a fixed tick from a sampler thread.
    pub fn sample(&mut self, now_us: u64, reg: &Registry) {
        self.advance(now_us, reg);
    }

    /// Close the open window unconditionally (end of run) so trailing
    /// activity is not lost.
    pub fn finish(&mut self, reg: &Registry) {
        if !self.started {
            return;
        }
        let frame = self.diff_frame(reg, self.open_start_us + self.interval_us);
        if !frame.is_empty() {
            self.frames.push_back(frame);
            self.seq += 1;
            while self.frames.len() > self.capacity {
                self.frames.pop_front();
            }
        }
        self.prev = reg.clone();
        self.open_start_us += self.interval_us;
    }

    /// Read-only provisional frame for the currently-open window.
    /// **Never mutates state** — live viewers may call this at any
    /// rate without affecting the closed-frame stream.
    pub fn poll(&self, reg: &Registry) -> Frame {
        self.diff_frame(reg, self.open_start_us + self.interval_us)
    }

    fn diff_frame(&self, cur: &Registry, t_end_us: u64) -> Frame {
        let mut counters = Vec::new();
        for (name, v) in cur.counters() {
            let d = v.saturating_sub(self.prev.counter(name));
            if d > 0 {
                counters.push((name.to_string(), d));
            }
        }
        let mut gauges = Vec::new();
        for (name, v) in cur.gauges() {
            if self.prev.gauge(name) != Some(v) {
                gauges.push((name.to_string(), v));
            }
        }
        let mut hists = Vec::new();
        for (name, h) in cur.histograms() {
            let w = hist_window(h, self.prev.histogram(name));
            if w.count > 0 {
                hists.push((name.to_string(), w));
            }
        }
        Frame {
            seq: self.seq,
            t_start_us: self.open_start_us,
            t_end_us,
            counters,
            gauges,
            hists,
        }
    }

    /// Windowed rate of counter `name` in events/sec over the trailing
    /// `window_us` of closed frames. Returns 0 with no frames.
    pub fn rate(&self, name: &str, window_us: u64) -> f64 {
        let Some(last) = self.frames.back() else {
            return 0.0;
        };
        let cutoff = last.t_end_us.saturating_sub(window_us);
        let mut total = 0u64;
        let mut span_start = last.t_end_us;
        for f in self.frames.iter().rev() {
            if f.t_end_us <= cutoff {
                break;
            }
            total += f.counter(name);
            span_start = f.t_start_us.max(cutoff);
        }
        let span = last.t_end_us.saturating_sub(span_start);
        if span == 0 {
            0.0
        } else {
            total as f64 / (span as f64 / 1e6)
        }
    }

    /// Snapshot into a serializable [`SeriesDoc`].
    pub fn to_doc(&self) -> SeriesDoc {
        SeriesDoc {
            version: TSDB_SCHEMA_VERSION,
            interval_us: self.interval_us,
            frames: self.frames.iter().cloned().collect(),
        }
    }
}

/// Delta two histogram snapshots into a [`HistWindow`]. `prev` absent
/// means the histogram first appeared this window.
fn hist_window(cur: &Histogram, prev: Option<&Histogram>) -> HistWindow {
    let bounds = cur.bounds();
    let mut deltas = Vec::with_capacity(cur.counts().len());
    for (i, &c) in cur.counts().iter().enumerate() {
        let p = prev
            .map(|p| p.counts().get(i).copied().unwrap_or(0))
            .unwrap_or(0);
        deltas.push(c.saturating_sub(p));
    }
    let count: u64 = deltas.iter().sum();
    let sum = cur.sum().saturating_sub(prev.map(|p| p.sum()).unwrap_or(0));
    let q = |qv: f64| -> u64 {
        if count == 0 {
            return 0;
        }
        let target = ((qv * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in deltas.iter().enumerate() {
            cum += c;
            if cum >= target {
                return match bounds.get(i) {
                    Some(&b) => b.min(cur.max()),
                    None => cur.max(),
                };
            }
        }
        cur.max()
    };
    HistWindow {
        count,
        sum,
        p50: q(0.50),
        p95: q(0.95),
        p99: q(0.99),
        max: cur.max(),
    }
}

/// An [`ObsSink`] folding the event stream into a [`MetricsSink`] while
/// closing [`Tsdb`] windows on **event-time** boundaries. Deterministic:
/// the closed-frame stream depends only on the event stream.
#[derive(Debug, Clone)]
pub struct TsdbSink {
    metrics: MetricsSink,
    tsdb: Tsdb,
}

impl TsdbSink {
    /// A sink with `interval_us` windows and `capacity` retained frames.
    pub fn new(interval_us: u64, capacity: usize) -> TsdbSink {
        TsdbSink {
            metrics: MetricsSink::new(),
            tsdb: Tsdb::new(interval_us, capacity),
        }
    }

    /// The underlying store (closed frames).
    pub fn tsdb(&self) -> &Tsdb {
        &self.tsdb
    }

    /// The folded metrics aggregator.
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Provisional view of the open window (read-only; see
    /// [`Tsdb::poll`]).
    pub fn poll(&self) -> Frame {
        self.tsdb.poll(self.metrics.registry())
    }

    /// Close the open window (end of run) and return the store.
    pub fn finish(mut self) -> Tsdb {
        self.tsdb.finish(self.metrics.registry());
        self.tsdb
    }
}

impl ObsSink for TsdbSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: &ObsEvent) {
        if let Some(t) = ev.t_us() {
            self.tsdb.advance(t, self.metrics.registry());
        }
        self.metrics.record(ev);
    }

    fn flush(&mut self) {}
}

/// One per-shard liveness frame from a streamed run: how far the shard
/// has drained, how much work is queued, and its recent throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Shard index.
    pub shard: u32,
    /// Per-shard beat number (increments per emitted beat).
    pub seq: u64,
    /// Wall milliseconds since the writer was created.
    pub wall_ms: u64,
    /// Transmissions fully retired by this shard so far.
    pub txs: u64,
    /// Events emitted by this shard so far.
    pub events: u64,
    /// Events/sec since this shard's previous beat.
    pub events_per_sec: f64,
    /// Shard-local safe frontier, microseconds of simulation time.
    pub frontier_us: u64,
    /// Scheduled events currently queued in the shard.
    pub queue_depth: u64,
    /// Transmissions currently live (slots in use).
    pub live_slots: u64,
}

struct HbShard {
    seq: u64,
    last_emit: Option<Instant>,
    last_events: u64,
    last_at: Instant,
}

struct HbInner {
    out: std::io::BufWriter<std::fs::File>,
    shards: BTreeMap<u32, HbShard>,
    lines: u64,
}

/// Rate-limited JSONL writer for [`Heartbeat`] frames. Shared across
/// shard threads (`&self` methods, internal mutex); each shard is
/// limited to one line per `interval` of wall time (interval zero
/// emits every beat — used by tests). I/O errors are swallowed after
/// the first: heartbeats are best-effort and must never abort a run.
pub struct HeartbeatWriter {
    inner: Mutex<Option<HbInner>>,
    interval: Duration,
    started: Instant,
}

impl HeartbeatWriter {
    /// Create (append) the JSONL file at `path` with per-shard emit
    /// interval `interval_ms`.
    pub fn create(path: &Path, interval_ms: u64) -> std::io::Result<HeartbeatWriter> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(HeartbeatWriter {
            inner: Mutex::new(Some(HbInner {
                out: std::io::BufWriter::new(file),
                shards: BTreeMap::new(),
                lines: 0,
            })),
            interval: Duration::from_millis(interval_ms),
            started: Instant::now(),
        })
    }

    /// Record one beat for `shard`. Emits a JSONL line if the shard's
    /// rate limit allows; suppressed beats are dropped entirely so
    /// `events_per_sec` always spans the gap between emitted lines.
    #[allow(clippy::too_many_arguments)]
    pub fn beat(
        &self,
        shard: u32,
        txs: u64,
        events: u64,
        frontier_us: u64,
        queue_depth: u64,
        live_slots: u64,
    ) {
        let now = Instant::now();
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let Some(inner) = guard.as_mut() else {
            return;
        };
        let started = self.started;
        let st = inner.shards.entry(shard).or_insert_with(|| HbShard {
            seq: 0,
            last_emit: None,
            last_events: 0,
            last_at: started,
        });
        if let Some(last) = st.last_emit {
            if now.duration_since(last) < self.interval {
                return;
            }
        }
        let dt = now.duration_since(st.last_at).as_secs_f64();
        let rate = if dt > 0.0 {
            (events.saturating_sub(st.last_events)) as f64 / dt
        } else {
            0.0
        };
        let hb = Heartbeat {
            shard,
            seq: st.seq,
            wall_ms: now.duration_since(self.started).as_millis() as u64,
            txs,
            events,
            events_per_sec: rate,
            frontier_us,
            queue_depth,
            live_slots,
        };
        st.seq += 1;
        st.last_emit = Some(now);
        st.last_events = events;
        st.last_at = now;
        let ok = serde_json::to_string(&hb)
            .ok()
            .and_then(|line| writeln!(inner.out, "{line}").ok())
            .is_some();
        if ok {
            inner.lines += 1;
        } else {
            *guard = None; // first I/O error disables the writer
        }
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) {
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if let Some(inner) = guard.as_mut() {
            let _ = inner.out.flush();
        }
    }

    /// Lines emitted so far (0 after an I/O error disabled the writer).
    pub fn lines(&self) -> u64 {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.as_ref().map(|i| i.lines).unwrap_or(0)
    }
}

impl Drop for HeartbeatWriter {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(t: u64, delivered: bool) -> ObsEvent {
        ObsEvent::PacketOutcome {
            t_us: t,
            trace: 0,
            tx: t,
            delivered,
            cause: None,
        }
    }

    #[test]
    fn windows_close_on_event_time_only() {
        let mut s = TsdbSink::new(1_000, 16);
        s.record(&outcome(100, true));
        s.record(&outcome(200, true));
        assert_eq!(s.tsdb().len(), 0, "window still open");
        s.record(&outcome(1_500, true)); // crosses the 1 000 µs boundary
        assert_eq!(s.tsdb().len(), 1);
        let f = s.tsdb().frames().next().unwrap().clone();
        assert_eq!(f.t_start_us, 0);
        assert_eq!(f.t_end_us, 1_000);
        assert_eq!(f.counter("delivered"), 2);
        let db = s.finish();
        assert_eq!(db.len(), 2, "finish closes the trailing window");
        let last = db.frames().last().unwrap();
        assert_eq!(last.counter("delivered"), 1);
    }

    #[test]
    fn poll_is_read_only() {
        let mut s = TsdbSink::new(1_000, 16);
        s.record(&outcome(100, true));
        let before = s.tsdb().clone();
        let prov = s.poll();
        assert_eq!(prov.counter("packet_outcome"), 1);
        assert_eq!(s.tsdb().len(), before.len());
        // Frames after more polling are identical to never polling.
        for _ in 0..10 {
            let _ = s.poll();
        }
        s.record(&outcome(2_500, false));
        assert_eq!(s.tsdb().len(), 1);
    }

    #[test]
    fn empty_windows_emit_no_frames() {
        let mut s = TsdbSink::new(1_000, 16);
        s.record(&outcome(100, true));
        s.record(&outcome(9_900, true)); // jumps 8 empty windows
        assert_eq!(s.tsdb().len(), 1, "only the active window emitted");
        let f = s.tsdb().frames().next().unwrap();
        assert_eq!((f.t_start_us, f.t_end_us), (0, 1_000));
    }

    #[test]
    fn ring_is_bounded() {
        let mut s = TsdbSink::new(100, 4);
        for i in 0..50u64 {
            s.record(&outcome(i * 100 + 50, true));
        }
        assert_eq!(s.tsdb().len(), 4);
    }

    #[test]
    fn windowed_rate() {
        let mut db = Tsdb::new(1_000_000, 64);
        let mut reg = Registry::new();
        db.advance(0, &reg);
        for sec in 1..=5u64 {
            reg.inc("pkts", 1_000);
            db.advance(sec * 1_000_000, &reg);
        }
        // 1 000 pkts per 1 s window → 1 000/sec over any trailing span.
        let r = db.rate("pkts", 3_000_000);
        assert!((r - 1_000.0).abs() < 1e-9, "rate {r}");
        assert_eq!(db.rate("missing", 3_000_000), 0.0);
    }

    #[test]
    fn histogram_windows_are_deltas() {
        let mut db = Tsdb::new(1_000, 16);
        let mut reg = Registry::new();
        db.advance(0, &reg);
        reg.observe("lat", &[10, 100], 5);
        reg.observe("lat", &[10, 100], 50);
        db.advance(1_000, &reg);
        reg.observe("lat", &[10, 100], 99);
        db.advance(2_000, &reg);
        let frames: Vec<&Frame> = db.frames().collect();
        assert_eq!(frames.len(), 2);
        let w0 = &frames[0].hists[0].1;
        assert_eq!(w0.count, 2);
        assert_eq!(w0.sum, 55);
        let w1 = &frames[1].hists[0].1;
        assert_eq!(w1.count, 1);
        assert_eq!(w1.sum, 99);
        assert_eq!(w1.p99, 99, "delta quantile capped by run max");
    }

    #[test]
    fn series_doc_round_trips() {
        let mut s = TsdbSink::new(1_000, 16);
        s.record(&outcome(100, true));
        let db = s.finish();
        let doc = db.to_doc();
        let json = serde_json::to_string(&doc).unwrap();
        let back: SeriesDoc = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.version, TSDB_SCHEMA_VERSION);
    }

    #[test]
    fn heartbeat_writer_emits_jsonl() {
        let dir = std::env::temp_dir().join(format!("hb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let w = HeartbeatWriter::create(&path, 0).unwrap();
            w.beat(0, 10, 100, 5_000, 3, 2);
            w.beat(1, 20, 200, 6_000, 0, 1);
            w.beat(0, 11, 110, 5_500, 2, 1);
            w.flush();
            assert_eq!(w.lines(), 3);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let beats: Vec<Heartbeat> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(beats.len(), 3);
        assert_eq!(beats[0].shard, 0);
        assert_eq!(beats[0].seq, 0);
        assert_eq!(beats[2].shard, 0);
        assert_eq!(beats[2].seq, 1, "per-shard seq");
        assert_eq!(beats[1].queue_depth, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_rate_limit_suppresses_lines() {
        let dir = std::env::temp_dir().join(format!("hb-rl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl");
        let _ = std::fs::remove_file(&path);
        let w = HeartbeatWriter::create(&path, 60_000).unwrap();
        for i in 0..100u64 {
            w.beat(0, i, i * 10, i, 0, 0);
        }
        assert_eq!(w.lines(), 1, "only the first beat within the interval");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
