//! Determinism property for the embedded time-series store.
//!
//! `Tsdb::poll` is the live read path (`/series` can be scraped at any
//! wall-clock moment), so it must be pure: for the same event stream,
//! any interleaving of polls — including none — must leave the closed
//! frames byte-identical once serialized. The property feeds one
//! random event stream through two [`obs::TsdbSink`]s, polling one of
//! them at random points, and compares the serialized frame documents.

use obs::{ObsEvent, ObsSink, TsdbSink};
use proptest::prelude::*;

const INTERVAL_US: u64 = 100_000;

/// A compact random event: time step plus enough payload variety to
/// exercise counters, gauges and histograms in the metrics fold.
#[derive(Debug, Clone)]
struct Step {
    dt_us: u64,
    gw: u32,
    in_use: u32,
    poll_before: bool,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0u64..250_000, 0u32..4, 0u32..8, any::<bool>()).prop_map(
            |(dt_us, gw, in_use, poll_before)| Step {
                dt_us,
                gw,
                in_use,
                poll_before,
            },
        ),
        0..120,
    )
}

fn event(t_us: u64, step: &Step) -> ObsEvent {
    ObsEvent::DecoderAcquired {
        t_us,
        trace: 0,
        gw: step.gw,
        tx: t_us,
        in_use: step.in_use,
        capacity: 8,
    }
}

fn frames_json(db: &obs::Tsdb) -> String {
    serde_json::to_string(&db.to_doc()).expect("series doc serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn polling_never_changes_closed_frames(steps in steps()) {
        let mut plain = TsdbSink::new(INTERVAL_US, 1_000);
        let mut polled = TsdbSink::new(INTERVAL_US, 1_000);
        let mut t_us = 0u64;
        for step in &steps {
            t_us += step.dt_us;
            if step.poll_before {
                // The provisional frame may differ call to call; the
                // property is that taking it has no side effects.
                let _ = polled.poll();
            }
            let ev = event(t_us, step);
            plain.record(&ev);
            polled.record(&ev);
        }
        let _ = polled.poll();
        let plain_db = plain.finish();
        let polled_db = polled.finish();
        prop_assert_eq!(frames_json(&plain_db), frames_json(&polled_db));
    }

    fn replay_is_deterministic(steps in steps()) {
        let run = |steps: &[Step]| {
            let mut sink = TsdbSink::new(INTERVAL_US, 1_000);
            let mut t_us = 0u64;
            for step in steps {
                t_us += step.dt_us;
                sink.record(&event(t_us, step));
            }
            frames_json(&sink.finish())
        };
        prop_assert_eq!(run(&steps), run(&steps));
    }
}
