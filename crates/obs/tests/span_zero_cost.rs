//! Zero-cost audit for the detached span profiler.
//!
//! `obs::span::enter` sits on the simulation hot path, the CP-solver
//! inner loops and the svc shard workers; its contract is that with no
//! profiler attached a span is one relaxed atomic load and an inert
//! guard — no heap allocation, no site-table writes, no TLS traffic.
//! A counting global allocator wraps the system allocator and a tight
//! enter/drop loop over every site must leave the counter untouched.
//! This is the binary's only test so no concurrent test can perturb
//! the counter (and no other test can attach the process-global
//! profiler mid-loop).

use obs::span::{self, SpanId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SITES: [SpanId; 12] = [
    SpanId::SimPlanBuild,
    SpanId::SimSortSchedule,
    SpanId::SimEventLoop,
    SpanId::SimLockOn,
    SpanId::SimVerdicts,
    SpanId::ShardIngest,
    SpanId::ShardDrain,
    SpanId::ShardMerge,
    SpanId::SolverEval,
    SpanId::SolverMutate,
    SpanId::SolverRepair,
    SpanId::SvcBatch,
];

#[test]
fn detached_spans_never_allocate_or_record() {
    assert!(!span::is_attached(), "profiler must start detached");
    let calls_before: Vec<u64> = {
        let report = span::report();
        SITES
            .iter()
            .map(|s| {
                report
                    .sites
                    .iter()
                    .find(|r| r.site == s.name())
                    .map(|r| r.calls)
                    .unwrap_or(0)
            })
            .collect()
    };

    // The harness's own threads may allocate transiently (channel
    // wake-ups, panic-hook setup), so measure in rounds: the span path
    // itself allocates nothing, so a clean round must show up almost
    // immediately; a real allocation in enter/drop would taint every
    // round.
    let mut clean = false;
    let mut last_delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..100_000 {
            for &site in &SITES {
                drop(span::enter(site));
            }
        }
        last_delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
        if last_delta == 0 {
            clean = true;
            break;
        }
    }
    assert!(
        clean,
        "detached span enter/drop allocated in every round (last delta: {last_delta})"
    );

    // Bit-exact off mode: the loop above must also have left the site
    // tables untouched — detached spans are uncounted, not sampled.
    let report = span::report();
    for (s, &calls) in SITES.iter().zip(&calls_before) {
        let now = report
            .sites
            .iter()
            .find(|r| r.site == s.name())
            .map(|r| r.calls)
            .unwrap_or(0);
        assert_eq!(now, calls, "site {} counted while detached", s.name());
    }
}
