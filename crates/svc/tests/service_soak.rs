//! Loopback soak: drive `netserverd` unpaced from the load generator
//! and hold the service-plane contract under volume — every packet
//! ingested, the shard-merged dedup decision stream byte-identical to
//! an in-process replay, daemon memory bounded.
//!
//! Debug builds run a small fleet and check the invariants only; the
//! throughput floor is asserted in release builds, where the soak sends
//! on the order of a million packets and requires a sustained daemon
//! ingest rate of `ALPHAWAN_SOAK_MIN_PPS` (default 500 000) pkts/sec.

use svc::{
    render_decisions, replay_decisions, replay_divergence, LoadgenConfig, NetServerConfig,
    NetServerDaemon, ServiceBench,
};

#[cfg(debug_assertions)]
const TARGET_PKTS: u64 = 20_000;
#[cfg(not(debug_assertions))]
const TARGET_PKTS: u64 = 1_500_000;

fn soak_min_pps() -> f64 {
    std::env::var("ALPHAWAN_SOAK_MIN_PPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500_000.0)
}

#[test]
fn loopback_soak_holds_rate_and_equivalence() {
    let cfg = NetServerConfig {
        shards: 2,
        channel_capacity: 512,
        decision_log_cap: (TARGET_PKTS as usize) + 1024,
        ..NetServerConfig::default()
    };
    let daemon = NetServerDaemon::start(cfg, None).unwrap();

    let mut load = LoadgenConfig {
        server: daemon.addr(),
        devices: 64,
        gateways: 4,
        replicas: 8,
        batch: 64,
        target_pps: None, // unpaced: as fast as the loopback takes them
        ..LoadgenConfig::default()
    };
    let fleet = svc::loadgen::build_fleet(&load, daemon.window_us()).unwrap();
    let per_epoch = fleet.pkts_per_epoch();
    assert!(per_epoch > 0);
    load.epochs = (TARGET_PKTS.div_ceil(per_epoch) as usize).min(fleet.max_epochs());
    let report = svc::loadgen::run_stream(&load, fleet).unwrap();
    assert!(
        report.sent_pkts >= TARGET_PKTS.min(per_epoch * report.epochs_run as u64),
        "{report:?}"
    );

    // Loopback with blocking backpressure: nothing may be lost. The
    // last batches can still be in flight through the shard queues
    // when the generator returns, so poll the ingest counter.
    let mut ingested = daemon.counter("svc_pkts_total");
    for _ in 0..2_000 {
        if ingested == report.sent_pkts {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
        ingested = daemon.counter("svc_pkts_total");
    }
    assert_eq!(ingested, report.sent_pkts, "daemon dropped packets");
    assert_eq!(
        daemon.decisions_dropped(),
        0,
        "decision log capacity undersized for the soak"
    );

    // Bounded memory: the dedup map tracks at most one window's worth
    // of live frames, far below the total offered.
    let tracked = daemon.tracked();
    assert!(
        tracked <= load.devices as u64 * load.replicas as u64 * 4,
        "dedup map grew unboundedly: {tracked} records"
    );

    // Shard-merged decisions replay byte-identically in-process.
    let logs = daemon.decisions();
    let decided: u64 = logs.iter().map(|l| l.len() as u64).sum();
    assert_eq!(decided, report.sent_pkts);
    assert_eq!(replay_divergence(&logs, daemon.window_us()), 0);
    assert_eq!(
        render_decisions(&replay_decisions(&logs, daemon.window_us())),
        render_decisions(&logs),
        "replayed decision stream must be byte-identical"
    );

    let elapsed = report.elapsed.as_secs_f64().max(1e-9);
    let pps = ingested as f64 / elapsed;
    let stats = daemon.dedup_stats();
    eprintln!(
        "soak: {ingested} pkts in {elapsed:.3}s = {pps:.0} pkts/sec \
         (new {}, dup {}, late {}, tracked {tracked})",
        stats.new, stats.duplicate, stats.late
    );

    let quantiles = svc::LatencyQuantiles::of(&daemon.ingest_latency());
    let bench = ServiceBench {
        mode: if cfg!(debug_assertions) {
            "soak-debug".into()
        } else {
            "soak".into()
        },
        sustained_pps: pps,
        sent_pkts: report.sent_pkts,
        ingested_pkts: ingested,
        sent_datagrams: report.sent_datagrams,
        acked_datagrams: report.acks,
        ingest_latency_us: quantiles,
        ack_rtt_us: svc::LatencyQuantiles::of(&report.ack_rtt),
        plan_serve_latency_us: svc::LatencyQuantiles::default(),
        plan_fetches: 0,
        plan_cached: 0,
        dedup_new: stats.new,
        dedup_duplicate: stats.duplicate,
        dedup_late: stats.late,
        decision_divergence: 0,
    };
    if let Some(path) = bench.write() {
        eprintln!("soak: wrote {}", path.display());
    }

    // The throughput floor only means something with optimizations on.
    #[cfg(not(debug_assertions))]
    assert!(
        pps >= soak_min_pps(),
        "sustained ingest {pps:.0} pkts/sec below the {:.0} floor",
        soak_min_pps()
    );
    #[cfg(debug_assertions)]
    let _ = soak_min_pps;

    daemon.shutdown();
}
