//! Backhaul loss between the gateway fleet and `netserverd`: splice a
//! [`chaos::ChaosUdpProxy`] with datagram loss in front of the daemon
//! and check that the service plane degrades by *losing* packets —
//! never by corrupting the dedup decision stream.

use chaos::{ChaosUdpProxy, FaultPlan, FaultSchedule, FaultSpec};
use svc::{
    render_decisions, replay_decisions, replay_divergence, LoadgenConfig, NetServerConfig,
    NetServerDaemon,
};

#[test]
fn lossy_backhaul_degrades_without_divergence() {
    let daemon = NetServerDaemon::start(NetServerConfig::default(), None).unwrap();
    let plan = FaultPlan {
        seed: 11,
        faults: vec![FaultSpec::BackhaulLoss {
            probability: 0.25,
            start_us: 0,
            end_us: u64::MAX,
        }],
    };
    let proxy =
        ChaosUdpProxy::start(daemon.addr(), FaultSchedule::compile(&plan).unwrap()).unwrap();

    let load = LoadgenConfig {
        server: proxy.addr(),
        devices: 32,
        gateways: 3,
        replicas: 2,
        batch: 16,
        epochs: 3,
        ..LoadgenConfig::default()
    };
    let report = svc::loadgen::run(&load, daemon.window_us()).unwrap();
    assert!(report.sent_datagrams > 50, "{report:?}");

    // The proxy really dropped traffic, and the daemon saw the rest.
    assert!(
        proxy.uplink_dropped() > 0,
        "0.25 loss over {} datagrams must drop some",
        proxy.uplink_seen()
    );
    assert_eq!(
        proxy.uplink_seen(),
        report.sent_datagrams,
        "every sent datagram passed through the proxy"
    );
    // Ingest settles once the shard queues drain.
    let mut ingested_dg = daemon.counter("svc_datagrams_total");
    for _ in 0..200 {
        std::thread::sleep(std::time::Duration::from_millis(5));
        let now = daemon.counter("svc_datagrams_total");
        if now == ingested_dg {
            break;
        }
        ingested_dg = now;
    }
    let delivered = proxy.uplink_seen() - proxy.uplink_dropped();
    assert_eq!(
        ingested_dg, delivered,
        "daemon must ingest exactly what survived the proxy"
    );
    assert!(ingested_dg < report.sent_datagrams);
    // Fewer acks than datagrams: dropped uplinks are never acked.
    assert!(report.acks <= delivered);

    // Whatever subset arrived, the decision stream still replays
    // byte-identically — loss thins the stream, never corrupts it.
    let logs = daemon.decisions();
    assert!(logs.iter().map(|l| l.len()).sum::<usize>() > 0);
    assert_eq!(replay_divergence(&logs, daemon.window_us()), 0);
    assert_eq!(
        render_decisions(&replay_decisions(&logs, daemon.window_us())),
        render_decisions(&logs)
    );

    proxy.shutdown();
    daemon.shutdown();
}
