//! End-to-end service-plane round trip over real sockets: load
//! generator → `netserverd` UDP ingest, operator → `masterd` TCP plans,
//! downlink → a live `PacketForwarder`, metrics → HTTP scrape.

use gateway::forwarder::codec::{GatewayEui, TxPacket};
use gateway::forwarder::PacketForwarder;
use obs::{ObsEvent, ObsSink};
use parking_lot::Mutex;
use std::sync::Arc;
use svc::runtime::parse_decisions;
use svc::{
    http_get, render_decisions, replay_decisions, replay_divergence, LoadgenConfig, MasterConfig,
    MasterDaemon, NetServerConfig, NetServerDaemon,
};

/// An `ObsSink` whose event buffer stays readable from the test thread
/// while clones of it live inside both daemons.
#[derive(Clone, Default)]
struct CaptureSink {
    events: Arc<Mutex<Vec<ObsEvent>>>,
}

impl ObsSink for CaptureSink {
    fn record(&mut self, ev: &ObsEvent) {
        self.events.lock().push(*ev);
    }
}

fn small_load(server: std::net::SocketAddr, master: Option<std::net::SocketAddr>) -> LoadgenConfig {
    LoadgenConfig {
        server,
        master,
        devices: 16,
        gateways: 2,
        replicas: 2,
        batch: 16,
        epochs: 3,
        ..LoadgenConfig::default()
    }
}

#[test]
fn loadgen_to_netserverd_with_master_plans() {
    let capture = CaptureSink::default();
    let sink: svc::runtime::SharedObs = Arc::new(Mutex::new(capture.clone()));
    let daemon = NetServerDaemon::start(NetServerConfig::default(), Some(sink.clone())).unwrap();
    let master = MasterDaemon::start(MasterConfig::default(), Some(sink)).unwrap();

    let report = svc::loadgen::run(
        &small_load(daemon.addr(), Some(master.addr())),
        daemon.window_us(),
    )
    .unwrap();
    assert!(report.sent_pkts > 0, "{report:?}");
    assert!(report.sent_datagrams > 0);
    assert!(report.acks > 0, "PUSH_ACKs must flow back: {report:?}");
    assert!(report.plan_fetches > 0, "Master plans served under load");
    assert_eq!(report.plan_cached, 0, "healthy Master serves fresh plans");

    // The daemon ingested everything the generator sent (loopback,
    // no chaos, blocking backpressure — nothing may be lost).
    wait_for(|| daemon.counter("svc_pkts_total") == report.sent_pkts);
    assert_eq!(daemon.counter("svc_datagrams_total"), report.sent_datagrams);
    assert_eq!(daemon.counter("svc_malformed_total"), 0);

    // Dedup decisions: every packet decided, the shard-merged stream
    // byte-identical to an in-process replay.
    let logs = daemon.decisions();
    let decided: usize = logs.iter().map(|l| l.len()).sum();
    assert_eq!(decided as u64, report.sent_pkts);
    assert_eq!(replay_divergence(&logs, daemon.window_us()), 0);
    let stats = daemon.dedup_stats();
    assert!(stats.new > 0);
    assert!(
        stats.duplicate > 0,
        "multi-gateway reception must produce duplicates: {stats:?}"
    );

    // Metrics endpoints speak Prometheus text over plain HTTP.
    let metrics = http_get(daemon.metrics_addr(), "/metrics").unwrap();
    for needle in [
        "# TYPE svc_datagrams_total counter",
        "svc_pkts_total",
        "ingest_latency_us_bucket",
        "dedup_new_total",
        "dedup_tracked_records",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }
    assert_eq!(http_get(daemon.metrics_addr(), "/healthz").unwrap(), "ok\n");
    let master_metrics = http_get(master.metrics_addr(), "/metrics").unwrap();
    for needle in [
        "master_conns_total",
        "master_req_request_channels_total",
        "plan_serve_latency_us_bucket",
    ] {
        assert!(
            master_metrics.contains(needle),
            "missing {needle} in:\n{master_metrics}"
        );
    }

    // The /decisions scrape round-trips into the same byte stream.
    let scraped = http_get(daemon.metrics_addr(), "/decisions").unwrap();
    let parsed = parse_decisions(&scraped).expect("parseable decision stream");
    assert_eq!(render_decisions(&parsed), scraped.as_bytes());
    assert_eq!(
        render_decisions(&replay_decisions(&parsed, daemon.window_us())),
        scraped.as_bytes(),
        "scraped decisions byte-identical to in-process replay"
    );

    // Obs events flowed from both daemons (SvcIngest per datagram,
    // SvcAccept per Master connection).
    let (ingests, accepts) = {
        let evs = capture.events.lock();
        (
            evs.iter()
                .filter(|e| matches!(e, ObsEvent::SvcIngest { .. }))
                .count() as u64,
            evs.iter()
                .filter(|e| matches!(e, ObsEvent::SvcAccept { .. }))
                .count() as u64,
        )
    };
    assert_eq!(ingests, report.sent_datagrams);
    assert!(accepts > 0, "masterd accepts must surface as SvcAccept");

    master.shutdown();
    daemon.shutdown();
}

#[test]
fn forwarder_client_roundtrip_and_downlink() {
    let daemon = NetServerDaemon::start(NetServerConfig::default(), None).unwrap();
    let mut fwd = PacketForwarder::new(daemon.addr(), GatewayEui(0xBEEF_0001)).unwrap();

    // Uplink with ACK through the real client.
    fwd.push(vec![]).unwrap();
    // Open the downlink route.
    fwd.pull().unwrap();
    wait_for(|| daemon.counter("svc_pull_data_total") >= 1);
    assert_eq!(daemon.counter("svc_gateways_seen"), 1);

    // Server-initiated downlink reaches the gateway.
    let txpk = TxPacket {
        tmst: 1_000_000,
        freq: 923.2,
        datr: "SF9BW125".into(),
        powe: 14,
        size: 3,
        data: "AQID".into(),
    };
    assert!(daemon.send_downlink(0xBEEF_0001, 7, txpk.clone()).unwrap());
    let got = fwd.recv_downlink().expect("downlink delivered");
    assert_eq!(got.data, txpk.data);
    // Unknown gateway has no route.
    assert!(!daemon.send_downlink(0xDEAD, 8, txpk).unwrap());

    daemon.shutdown();
}

#[test]
fn malformed_datagrams_are_counted_not_fatal() {
    let daemon = NetServerDaemon::start(NetServerConfig::default(), None).unwrap();
    let sock = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    sock.send_to(b"garbage", daemon.addr()).unwrap();
    sock.send_to(&[2, 0, 0, 0x00, 1, 2, 3], daemon.addr())
        .unwrap(); // truncated PUSH_DATA
    wait_for(|| daemon.counter("svc_malformed_total") >= 2);
    // The daemon still serves after garbage.
    assert_eq!(http_get(daemon.metrics_addr(), "/healthz").unwrap(), "ok\n");
    daemon.shutdown();
}

fn wait_for(mut cond: impl FnMut() -> bool) {
    for _ in 0..400 {
        if cond() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    panic!("condition never held");
}
