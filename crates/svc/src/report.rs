//! The versioned `BENCH_service.json` artifact.
//!
//! Schema (version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "mode": "soak",
//!   "sustained_pps": 612345.6,
//!   "sent_pkts": 1500000, "ingested_pkts": 1498000,
//!   "sent_datagrams": 23438, "acked_datagrams": 23410,
//!   "ingest_latency_us": {"p50": 100, "p95": 500, "p99": 2500},
//!   "ack_rtt_us": {"p50": 250, "p95": 1000, "p99": 2500},
//!   "plan_serve_latency_us": {"p50": 100, "p95": 250, "p99": 500},
//!   "plan_fetches": 12, "plan_cached": 0,
//!   "dedup": {"new": 500000, "duplicate": 990000, "late": 8000},
//!   "decision_divergence": 0
//! }
//! ```
//!
//! Consumers (the CI `service-smoke` job, plotting scripts) must accept
//! unknown additional keys but can rely on every key above existing for
//! `schema_version == 1`.

use obs::Histogram;

/// Bump when a key above changes meaning or disappears.
pub const BENCH_SERVICE_SCHEMA_VERSION: u32 = 1;

/// p50/p95/p99 snapshot of a histogram (µs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyQuantiles {
    /// Median, µs.
    pub p50: u64,
    /// 95th percentile, µs.
    pub p95: u64,
    /// 99th percentile, µs.
    pub p99: u64,
}

impl LatencyQuantiles {
    /// Snapshot a histogram's quantiles; all-zero with no samples.
    pub fn of(h: &Histogram) -> LatencyQuantiles {
        LatencyQuantiles {
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            self.p50, self.p95, self.p99
        )
    }
}

/// Everything the service bench artifact records.
#[derive(Debug, Clone, Default)]
pub struct ServiceBench {
    /// `"soak"`, `"smoke"`, `"chaos"` — which harness produced this.
    pub mode: String,
    /// Packets the daemon ingested per wall-clock second, measured
    /// over the window from first to last ingest.
    pub sustained_pps: f64,
    /// Rxpk packets the load generator offered.
    pub sent_pkts: u64,
    /// Packets the daemon's dedup pipeline actually processed.
    pub ingested_pkts: u64,
    /// PUSH_DATA datagrams the load generator sent.
    pub sent_datagrams: u64,
    /// PUSH_ACK responses the load generator got back.
    pub acked_datagrams: u64,
    /// Socket-receive to dedup-decision latency quantiles.
    pub ingest_latency_us: LatencyQuantiles,
    /// Client-observed PUSH_DATA→ACK round-trip quantiles.
    pub ack_rtt_us: LatencyQuantiles,
    /// Master plan-serve latency quantiles.
    pub plan_serve_latency_us: LatencyQuantiles,
    /// Plan requests served by the Master daemon.
    pub plan_fetches: u64,
    /// Plan requests answered from the client-side cache.
    pub plan_cached: u64,
    /// Dedup decisions: first copy of a frame.
    pub dedup_new: u64,
    /// Dedup decisions: extra copy inside the merge window.
    pub dedup_duplicate: u64,
    /// Dedup decisions: copy arriving after the window closed.
    pub dedup_late: u64,
    /// Logged decisions whose outcome differed from the in-process
    /// replay — must be 0.
    pub decision_divergence: u64,
}

impl ServiceBench {
    /// Render the versioned JSON document.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"schema_version\": {},\n",
                "  \"mode\": \"{}\",\n",
                "  \"sustained_pps\": {:.1},\n",
                "  \"sent_pkts\": {},\n",
                "  \"ingested_pkts\": {},\n",
                "  \"sent_datagrams\": {},\n",
                "  \"acked_datagrams\": {},\n",
                "  \"ingest_latency_us\": {},\n",
                "  \"ack_rtt_us\": {},\n",
                "  \"plan_serve_latency_us\": {},\n",
                "  \"plan_fetches\": {},\n",
                "  \"plan_cached\": {},\n",
                "  \"dedup\": {{\"new\": {}, \"duplicate\": {}, \"late\": {}}},\n",
                "  \"decision_divergence\": {}\n",
                "}}\n"
            ),
            BENCH_SERVICE_SCHEMA_VERSION,
            self.mode,
            self.sustained_pps,
            self.sent_pkts,
            self.ingested_pkts,
            self.sent_datagrams,
            self.acked_datagrams,
            self.ingest_latency_us.json(),
            self.ack_rtt_us.json(),
            self.plan_serve_latency_us.json(),
            self.plan_fetches,
            self.plan_cached,
            self.dedup_new,
            self.dedup_duplicate,
            self.dedup_late,
            self.decision_divergence,
        )
    }

    /// Write `BENCH_service.json` through the bench harness's artifact
    /// sink (lands under `results/out/` outside an obs session).
    pub fn write(&self) -> Option<std::path::PathBuf> {
        bench::obs_session::write_bench_artifact("BENCH_service.json", &self.to_json())
    }
}

/// Render one histogram in the Prometheus text exposition format —
/// the same shape [`obs::Registry::render_prometheus`] emits, for
/// histograms kept outside a registry (e.g. the load generator's
/// client-side ACK RTT).
pub fn render_histogram_prom(name: &str, h: &Histogram, out: &mut String) {
    use std::fmt::Write;
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, &c) in h.counts().iter().enumerate() {
        cum += c;
        match h.bounds().get(i) {
            Some(b) => {
                let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cum}");
            }
            None => {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            }
        }
    }
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.total());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_every_versioned_key() {
        let bench = ServiceBench {
            mode: "smoke".into(),
            sustained_pps: 1234.5,
            sent_pkts: 10,
            ..ServiceBench::default()
        };
        let json = bench.to_json();
        for key in [
            "schema_version",
            "mode",
            "sustained_pps",
            "sent_pkts",
            "ingested_pkts",
            "sent_datagrams",
            "acked_datagrams",
            "ingest_latency_us",
            "ack_rtt_us",
            "plan_serve_latency_us",
            "plan_fetches",
            "plan_cached",
            "dedup",
            "decision_divergence",
        ] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing {key}: {json}"
            );
        }
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"sustained_pps\": 1234.5"));
    }

    #[test]
    fn json_parses_back() {
        let json = ServiceBench::default().to_json();
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let obj = v.as_object().expect("top-level object");
        assert!(matches!(
            serde::field(obj, "schema_version"),
            serde::Value::U64(v) if *v == BENCH_SERVICE_SCHEMA_VERSION as u64
        ));
        let dedup = serde::field(obj, "dedup")
            .as_object()
            .expect("dedup object");
        assert!(!serde::field(dedup, "new").is_null());
    }

    #[test]
    fn quantiles_snapshot() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [1u64, 2, 3, 50] {
            h.observe(v);
        }
        let q = LatencyQuantiles::of(&h);
        assert_eq!(q.p50, 10);
        assert_eq!(q.p99, 50);
    }

    #[test]
    fn prom_rendering_matches_registry_shape() {
        let mut h = Histogram::new(&[10]);
        h.observe(5);
        h.observe(50);
        let mut out = String::new();
        render_histogram_prom("x_us", &h, &mut out);
        let mut reg = obs::Registry::new();
        reg.observe("x_us", &[10], 5);
        reg.observe("x_us", &[10], 50);
        assert_eq!(out, reg.render_prometheus());
    }
}
