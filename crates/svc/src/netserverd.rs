//! `netserverd`: the network-server ingest daemon.
//!
//! Speaks the Semtech UDP forwarder protocol on a real socket:
//! `PUSH_DATA` is acknowledged, fast-parsed
//! ([`gateway::forwarder::fast`]) and fanned out to the dedup shard
//! pool; `PULL_DATA` is acknowledged and records the gateway's
//! downlink route so [`NetServerDaemon::send_downlink`] can push a
//! `PULL_RESP` back; `TX_ACK` is counted. Receiver threads share one
//! bound socket via `try_clone` (std has no `SO_REUSEPORT`), so the
//! kernel's socket buffer is the single shared ingress queue.

use crate::endpoint::{HttpEndpoint, HttpHandler};
use crate::report::LatencyQuantiles;
use crate::runtime::{render_decisions, Batch, PacketIn, ShardPool, ShardRouter, SharedObs};
use crate::telemetry::{self, FlightTee, Sampler, SharedFlight};
use gateway::forwarder::codec::{Datagram, TxPacket};
use gateway::forwarder::fast::{parse_push_data, FastRx};
use netserver::dedup::DedupStats;
use obs::{FlightRecorder, ObsEvent, ObsSink, Registry, SloRule, SvcConn};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything configurable about the daemon. `Default` binds ephemeral
/// loopback ports, sized for tests; the `netserverd` binary overrides
/// from flags.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// UDP ingest socket.
    pub bind: SocketAddr,
    /// TCP metrics endpoint.
    pub metrics_bind: SocketAddr,
    /// Dedup worker shards.
    pub shards: usize,
    /// Receiver threads sharing the ingest socket.
    pub receivers: usize,
    /// Bounded batches queued per shard before the router blocks.
    pub channel_capacity: usize,
    /// Dedup window, µs.
    pub dedup_window_us: u64,
    /// Per-shard decision-log cap (the prefix stays replay-exact).
    pub decision_log_cap: usize,
    /// Sampler tick for the embedded time-series store backing
    /// `/series` (milliseconds; one frame per tick).
    pub series_interval_ms: u64,
    /// When set, a flight recorder rings the last `flight_capacity`
    /// events and SLO breaches snapshot it into this directory.
    pub flight_dir: Option<PathBuf>,
    /// Flight-recorder ring capacity (events).
    pub flight_capacity: usize,
    /// SLO burn-rate rules evaluated each sampler tick; `None` uses
    /// [`telemetry::netserver_slo_rules`].
    pub slo_rules: Option<Vec<SloRule>>,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            bind: (Ipv4Addr::LOCALHOST, 0).into(),
            metrics_bind: (Ipv4Addr::LOCALHOST, 0).into(),
            shards: 2,
            receivers: 1,
            channel_capacity: 256,
            dedup_window_us: 2_000_000,
            decision_log_cap: 4_000_000,
            series_interval_ms: 1_000,
            flight_dir: None,
            flight_capacity: 4_096,
            slo_rules: None,
        }
    }
}

struct ReceiverShared {
    registry: Arc<Mutex<Registry>>,
    /// Gateway EUI → dense id handed to the dedup layer.
    gw_ids: Mutex<HashMap<u64, u16>>,
    /// Gateway EUI → last PULL_DATA origin (the downlink route).
    pull_routes: Mutex<HashMap<u64, SocketAddr>>,
    sink: Option<SharedObs>,
    started: Instant,
}

impl ReceiverShared {
    fn gw_id(&self, eui: u64) -> u16 {
        let mut ids = self.gw_ids.lock();
        let next = ids.len() as u16;
        *ids.entry(eui).or_insert(next)
    }

    fn emit(&self, ev: ObsEvent) {
        if let Some(s) = &self.sink {
            let mut s = s.lock();
            if s.enabled() {
                s.record(&ev);
            }
        }
    }

    fn wall_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

/// A running ingest daemon.
pub struct NetServerDaemon {
    addr: SocketAddr,
    endpoint: HttpEndpoint,
    pool: Option<ShardPool>,
    registry: Arc<Mutex<Registry>>,
    shared: Arc<ReceiverShared>,
    socket: UdpSocket,
    window_us: u64,
    shutdown: Arc<AtomicBool>,
    receivers: Vec<JoinHandle<()>>,
    sampler: Sampler,
    flight: Option<SharedFlight>,
}

impl NetServerDaemon {
    /// Bind the sockets and start the receiver + shard threads.
    pub fn start(cfg: NetServerConfig, sink: Option<SharedObs>) -> io::Result<NetServerDaemon> {
        let socket = UdpSocket::bind(cfg.bind)?;
        let addr = socket.local_addr()?;
        let registry = Arc::new(Mutex::new(Registry::new()));
        // With a flight dir configured, every daemon event is teed into
        // the recorder ring so an SLO breach can dump the last moments.
        let flight: Option<SharedFlight> = match &cfg.flight_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let mut fr = FlightRecorder::new(dir, cfg.flight_capacity).with_prefix("netserver");
                if let Some(s) = &sink {
                    // A snapshot marks an incident: force the caller's
                    // main event stream to disk alongside it.
                    let s = Arc::clone(s);
                    fr = fr.with_snapshot_hook(Box::new(move |_| s.lock().flush()));
                }
                Some(Arc::new(Mutex::new(fr)))
            }
            None => None,
        };
        let sink: Option<SharedObs> = match &flight {
            Some(fr) => Some(Arc::new(Mutex::new(FlightTee::new(sink, Arc::clone(fr))))),
            None => sink,
        };
        let sampler = Sampler::start(
            Arc::clone(&registry),
            cfg.series_interval_ms,
            cfg.slo_rules
                .clone()
                .unwrap_or_else(telemetry::netserver_slo_rules),
            flight.clone(),
        );
        let pool = ShardPool::new(
            cfg.shards,
            cfg.channel_capacity,
            cfg.dedup_window_us,
            cfg.decision_log_cap,
            Arc::clone(&registry),
            sink.clone(),
        );
        let shared = Arc::new(ReceiverShared {
            registry: Arc::clone(&registry),
            gw_ids: Mutex::new(HashMap::new()),
            pull_routes: Mutex::new(HashMap::new()),
            sink,
            started: Instant::now(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut receivers = Vec::new();
        for idx in 0..cfg.receivers.max(1) {
            let rx_socket = socket.try_clone()?;
            rx_socket.set_read_timeout(Some(Duration::from_millis(50)))?;
            let rx_shared = Arc::clone(&shared);
            let rx_shutdown = Arc::clone(&shutdown);
            let router = pool.router();
            receivers.push(
                std::thread::Builder::new()
                    .name(format!("svc-ingest-{idx}"))
                    .spawn(move || receiver_loop(rx_socket, router, rx_shared, rx_shutdown))?,
            );
        }
        let endpoint = HttpEndpoint::start(
            cfg.metrics_bind,
            Self::http_handler(Arc::clone(&registry), &pool, sampler.tsdb()),
        )?;
        Ok(NetServerDaemon {
            addr,
            endpoint,
            pool: Some(pool),
            registry,
            shared,
            socket,
            window_us: cfg.dedup_window_us,
            shutdown,
            receivers,
            sampler,
            flight,
        })
    }

    fn http_handler(
        registry: Arc<Mutex<Registry>>,
        pool: &ShardPool,
        tsdb: Arc<Mutex<obs::Tsdb>>,
    ) -> HttpHandler {
        let decisions = pool.decision_handles();
        let tracked = pool.tracked_handles();
        Arc::new(move |path| match path {
            "/metrics" => {
                let mut text = registry.lock().render_prometheus();
                let resident: u64 = tracked.iter().map(|t| t.load(Ordering::Relaxed)).sum();
                text.push_str(&format!(
                    "# TYPE dedup_tracked_records gauge\ndedup_tracked_records {resident}\n"
                ));
                Some(("text/plain; version=0.0.4", text.into_bytes()))
            }
            "/healthz" => Some(("text/plain", b"ok\n".to_vec())),
            "/bench" => {
                let reg = registry.lock();
                let q = reg
                    .histogram("ingest_latency_us")
                    .map(LatencyQuantiles::of)
                    .unwrap_or_default();
                let body = format!(
                    "{{\"ingest_latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}, \"pkts\": {}}}\n",
                    q.p50,
                    q.p95,
                    q.p99,
                    reg.counter("svc_pkts_total")
                );
                Some(("application/json", body.into_bytes()))
            }
            "/decisions" => {
                let logs: Vec<Vec<crate::runtime::Decision>> =
                    decisions.iter().map(|l| l.lock().clone()).collect();
                Some(("text/plain", render_decisions(&logs)))
            }
            "/series" => Some(("application/json", telemetry::series_body_of(&tsdb))),
            "/spans" => Some(("application/json", telemetry::spans_body())),
            _ => None,
        })
    }

    /// The UDP ingest address gateways should send to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics endpoint address.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.endpoint.addr()
    }

    /// Snapshot of every shard's decision log.
    pub fn decisions(&self) -> Vec<Vec<crate::runtime::Decision>> {
        self.pool.as_ref().expect("running").decisions()
    }

    /// Dedup counters summed across shards.
    pub fn dedup_stats(&self) -> DedupStats {
        self.pool.as_ref().expect("running").dedup_stats()
    }

    /// (DevAddr, FCnt) records currently resident across shards.
    pub fn tracked(&self) -> u64 {
        self.pool.as_ref().expect("running").tracked()
    }

    /// Decisions lost to the log cap.
    pub fn decisions_dropped(&self) -> u64 {
        self.pool.as_ref().expect("running").decisions_dropped()
    }

    /// The dedup window the shards run.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Read one counter from the daemon registry.
    pub fn counter(&self, name: &str) -> u64 {
        self.registry.lock().counter(name)
    }

    /// Snapshot of the embedded time-series store (what `/series`
    /// serves).
    pub fn series(&self) -> obs::SeriesDoc {
        self.sampler.series_doc()
    }

    /// SLO breaches fired since start (post-suppression).
    pub fn slo_breaches(&self) -> u64 {
        self.sampler.breaches()
    }

    /// Flight snapshots written so far (empty without a `flight_dir`).
    pub fn flight_snapshots(&self) -> Vec<PathBuf> {
        self.flight
            .as_ref()
            .map(|fr| fr.lock().snapshots().to_vec())
            .unwrap_or_default()
    }

    /// Clone of the ingest-latency histogram (empty if nothing was
    /// ingested yet).
    pub fn ingest_latency(&self) -> obs::Histogram {
        self.registry
            .lock()
            .histogram("ingest_latency_us")
            .cloned()
            .unwrap_or_else(|| obs::Histogram::new(&crate::runtime::INGEST_LATENCY_BOUNDS_US))
    }

    /// Push a `PULL_RESP` downlink to a gateway that has sent
    /// `PULL_DATA`. Returns `false` when the gateway never opened a
    /// downlink route.
    pub fn send_downlink(&self, eui: u64, token: u16, txpk: TxPacket) -> io::Result<bool> {
        let route = self.shared.pull_routes.lock().get(&eui).copied();
        match route {
            Some(peer) => {
                let wire = Datagram::PullResp { token, txpk }.encode();
                self.socket.send_to(&wire, peer)?;
                self.registry.lock().inc("svc_pull_resp_total", 1);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Stop the receivers, drain the shards and join everything.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.receivers.drain(..) {
            let _ = t.join();
        }
        // Receivers (and their routers) are gone; close the shard
        // queues and join the workers.
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        self.sampler.shutdown();
        if let Some(fr) = &self.flight {
            fr.lock().flush();
        }
    }
}

fn receiver_loop(
    socket: UdpSocket,
    router: ShardRouter,
    shared: Arc<ReceiverShared>,
    shutdown: Arc<AtomicBool>,
) {
    let mut buf = [0u8; 65_536];
    let mut rxs: Vec<FastRx> = Vec::with_capacity(128);
    let mut scratch: Vec<u8> = Vec::with_capacity(256);
    // Per-shard staging buffers, reused across datagrams.
    let mut staged: Vec<Vec<PacketIn>> = (0..router.shard_count()).map(|_| Vec::new()).collect();
    while !shutdown.load(Ordering::SeqCst) {
        let (len, peer) = match socket.recv_from(&mut buf) {
            Ok(x) => x,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        let recv = Instant::now();
        let datagram = &buf[..len];
        match datagram.get(3) {
            // PUSH_DATA: ack, parse, route.
            Some(0x00) => {
                rxs.clear();
                match parse_push_data(datagram, &mut rxs, &mut scratch) {
                    Ok(head) => {
                        let ack = [datagram[0], datagram[1], datagram[2], 0x01];
                        let _ = socket.send_to(&ack, peer);
                        let gw = shared.gw_id(head.eui);
                        let mut keyed = 0u64;
                        let mut unkeyed = 0u64;
                        let mut trace0 = 0u64;
                        for rx in &rxs {
                            match (rx.dev_addr, rx.fcnt) {
                                (Some(dev), Some(fcnt)) => {
                                    keyed += 1;
                                    if trace0 == 0 {
                                        trace0 = rx.trce;
                                    }
                                    staged[router.shard_of(dev)].push(PacketIn {
                                        dev,
                                        fcnt,
                                        gw,
                                        t_us: rx.tmst,
                                        snr_db: rx.lsnr as f32,
                                        trace: rx.trce,
                                    });
                                }
                                _ => unkeyed += 1,
                            }
                        }
                        for (shard, pkts) in staged.iter_mut().enumerate() {
                            if !pkts.is_empty() {
                                router.send(
                                    shard,
                                    Batch {
                                        pkts: std::mem::take(pkts),
                                        recv,
                                    },
                                );
                            }
                        }
                        {
                            let mut reg = shared.registry.lock();
                            reg.inc("svc_datagrams_total", 1);
                            reg.inc("svc_pkts_total", keyed);
                            if unkeyed > 0 {
                                reg.inc("svc_pkts_unkeyed_total", unkeyed);
                            }
                            reg.inc("svc_push_ack_total", 1);
                        }
                        shared.emit(ObsEvent::SvcIngest {
                            wall_us: shared.wall_us(),
                            trace: trace0,
                            gw: head.eui,
                            pkts: rxs.len() as u32,
                        });
                    }
                    Err(_) => {
                        shared.registry.lock().inc("svc_malformed_total", 1);
                    }
                }
            }
            // PULL_DATA: ack and record the downlink route.
            Some(0x02) if len >= 12 => {
                let eui = u64::from_be_bytes(buf[4..12].try_into().expect("len checked"));
                let first = shared.pull_routes.lock().insert(eui, peer).is_none();
                let ack = [datagram[0], datagram[1], datagram[2], 0x04];
                let _ = socket.send_to(&ack, peer);
                let mut reg = shared.registry.lock();
                reg.inc("svc_pull_data_total", 1);
                drop(reg);
                if first {
                    shared.registry.lock().inc("svc_gateways_seen", 1);
                    shared.emit(ObsEvent::SvcAccept {
                        wall_us: shared.wall_us(),
                        conn: SvcConn::Udp,
                        peer: eui,
                    });
                }
            }
            // TX_ACK: downlink confirmed by the gateway.
            Some(0x05) => {
                shared.registry.lock().inc("svc_tx_ack_total", 1);
            }
            _ => {
                shared.registry.lock().inc("svc_malformed_total", 1);
            }
        }
    }
}
