//! The sharded service runtime behind `netserverd`.
//!
//! Receiver threads parse datagrams and route each keyed uplink copy to
//! one of N worker shards by `hash(DevAddr)`
//! ([`netserver::dedup::shard_of`]) over **bounded** channels. A worker
//! owns its shard's [`Deduplicator`] outright — no locks on the dedup
//! hot path — and appends every decision to a shard-local log.
//!
//! Backpressure: the router's `send` blocks when a shard's queue is
//! full, which stalls the receiver; further datagrams then queue in the
//! kernel socket buffer and are shed there once it overflows. The
//! daemon's own memory stays bounded by `shards × capacity` in-flight
//! batches plus the capped decision log — load shedding happens at the
//! kernel boundary, never by unbounded buffering.
//!
//! Correctness contract: because a shard processes its offers in a
//! single thread, replaying any shard's decision log through a fresh
//! [`Deduplicator`] must reproduce the logged outcomes exactly (the
//! `per_shard_replay_is_exact` property in `netserver::dedup`).
//! [`replay_divergence`] performs that replay and
//! [`render_decisions`] serializes both streams so tests can assert
//! byte-identity.

use lora_mac::device::DevAddr;
use netserver::dedup::{shard_of, DedupOutcome, DedupStats, Deduplicator, UplinkCopy};
use obs::Registry;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Ingest-latency histogram bounds (µs): socket receive → dedup
/// decision recorded. Loopback ingest sits in the tens of µs; the tail
/// buckets catch scheduling stalls under overload.
pub const INGEST_LATENCY_BOUNDS_US: [u64; 10] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000,
];

/// Plan-serve latency histogram bounds (µs) for `masterd`.
pub const SERVE_LATENCY_BOUNDS_US: [u64; 8] = [50, 100, 250, 500, 1_000, 5_000, 25_000, 100_000];

/// One keyed uplink copy extracted from a PUSH_DATA rxpk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketIn {
    /// Device address the frame came from.
    pub dev: u32,
    /// LoRaWAN frame counter.
    pub fcnt: u16,
    /// Gateway id that heard this copy.
    pub gw: u16,
    /// Reception timestamp (the rxpk `tmst`), µs.
    pub t_us: u64,
    /// Reported SNR of this copy, dB.
    pub snr_db: f32,
    /// Distributed trace id threaded through obs events.
    pub trace: u64,
}

/// A batch of copies routed to one shard (all copies of one datagram
/// that hashed to that shard), stamped with the socket receive instant
/// so the worker can measure ingest latency.
#[derive(Debug)]
pub struct Batch {
    /// The copies routed to this shard.
    pub pkts: Vec<PacketIn>,
    /// Socket receive instant of the carrying datagram.
    pub recv: Instant,
}

/// One dedup decision, in the exact order the owning shard made it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Device address of the judged frame.
    pub dev: u32,
    /// LoRaWAN frame counter of the judged frame.
    pub fcnt: u16,
    /// Gateway whose copy triggered this decision.
    pub gw: u16,
    /// Reception timestamp of that copy, µs.
    pub t_us: u64,
    /// What the dedup state machine decided.
    pub outcome: DedupOutcome,
}

fn outcome_code(o: DedupOutcome) -> u8 {
    match o {
        DedupOutcome::New => 0,
        DedupOutcome::Duplicate => 1,
        DedupOutcome::Late => 2,
    }
}

/// A thread-safe observability fan-in the daemons can emit into.
pub type SharedObs = Arc<Mutex<dyn obs::ObsSink + Send>>;

struct Shard {
    sender: crossbeam::channel::SyncSender<Batch>,
    log: Arc<Mutex<Vec<Decision>>>,
    tracked: Arc<AtomicU64>,
    handle: JoinHandle<()>,
}

/// The pool of dedup worker shards.
pub struct ShardPool {
    shards: Vec<Shard>,
    registry: Arc<Mutex<Registry>>,
    log_cap: usize,
    dropped_log: Arc<AtomicU64>,
}

/// Cloneable routing handle handed to receiver threads.
#[derive(Clone)]
pub struct ShardRouter {
    senders: Vec<crossbeam::channel::SyncSender<Batch>>,
}

impl ShardRouter {
    /// Number of shards behind this router.
    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// The shard a device address routes to.
    pub fn shard_of(&self, dev: u32) -> usize {
        shard_of(DevAddr(dev), self.senders.len())
    }

    /// Route one batch to a shard, blocking when its queue is full
    /// (this is the backpressure point).
    pub fn send(&self, shard: usize, batch: Batch) {
        // A closed channel only happens during shutdown; drop silently.
        let _ = self.senders[shard].send(batch);
    }
}

impl ShardPool {
    /// Spawn `shards` workers with `capacity`-bounded queues and a
    /// `window_us` dedup window. Decision logs stop growing at
    /// `log_cap` entries per shard (the prefix property keeps replay
    /// exact on a truncated log).
    pub fn new(
        shards: usize,
        capacity: usize,
        window_us: u64,
        log_cap: usize,
        registry: Arc<Mutex<Registry>>,
        sink: Option<SharedObs>,
    ) -> ShardPool {
        assert!(shards > 0, "a shard pool needs at least one worker");
        let dropped_log = Arc::new(AtomicU64::new(0));
        let pool: Vec<Shard> = (0..shards)
            .map(|idx| {
                let (sender, receiver) = crossbeam::channel::bounded::<Batch>(capacity);
                let log = Arc::new(Mutex::new(Vec::new()));
                let tracked = Arc::new(AtomicU64::new(0));
                let worker_log = Arc::clone(&log);
                let worker_tracked = Arc::clone(&tracked);
                let worker_registry = Arc::clone(&registry);
                let worker_dropped = Arc::clone(&dropped_log);
                let worker_sink = sink.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("svc-shard-{idx}"))
                    .spawn(move || {
                        shard_worker(
                            receiver,
                            window_us,
                            log_cap,
                            worker_log,
                            worker_tracked,
                            worker_registry,
                            worker_dropped,
                            worker_sink,
                        )
                    })
                    .expect("spawn shard worker");
                Shard {
                    sender,
                    log,
                    tracked,
                    handle,
                }
            })
            .collect();
        ShardPool {
            shards: pool,
            registry,
            log_cap,
            dropped_log,
        }
    }

    /// Shared handles to the per-shard decision logs (for scrape
    /// endpoints that outlive the pool borrow).
    pub fn decision_handles(&self) -> Vec<Arc<Mutex<Vec<Decision>>>> {
        self.shards.iter().map(|s| Arc::clone(&s.log)).collect()
    }

    /// Shared handles to the per-shard resident-record gauges.
    pub fn tracked_handles(&self) -> Vec<Arc<AtomicU64>> {
        self.shards.iter().map(|s| Arc::clone(&s.tracked)).collect()
    }

    /// A routing handle for receiver threads.
    pub fn router(&self) -> ShardRouter {
        ShardRouter {
            senders: self.shards.iter().map(|s| s.sender.clone()).collect(),
        }
    }

    /// Snapshot of every shard's decision log, in shard order.
    pub fn decisions(&self) -> Vec<Vec<Decision>> {
        self.shards.iter().map(|s| s.log.lock().clone()).collect()
    }

    /// Dedup counters summed across shards (read from the registry the
    /// workers increment).
    pub fn dedup_stats(&self) -> DedupStats {
        let r = self.registry.lock();
        let new = r.counter("dedup_new_total");
        let duplicate = r.counter("dedup_duplicate_total");
        let late = r.counter("dedup_late_total");
        DedupStats {
            offered: new + duplicate + late,
            new,
            duplicate,
            late,
        }
    }

    /// Total (DevAddr, FCnt) records currently resident across shards —
    /// the bounded-memory invariant tests assert on.
    pub fn tracked(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.tracked.load(Ordering::Relaxed))
            .sum()
    }

    /// Decisions that were made but not logged because a shard's log
    /// hit its cap.
    pub fn decisions_dropped(&self) -> u64 {
        self.dropped_log.load(Ordering::Relaxed)
    }

    /// The per-shard decision-log cap.
    pub fn log_cap(&self) -> usize {
        self.log_cap
    }

    /// Close the queues and join every worker. Every [`ShardRouter`]
    /// must be dropped first: a live router keeps the channels open and
    /// the workers running.
    pub fn shutdown(self) {
        for s in self.shards {
            drop(s.sender);
            let _ = s.handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn shard_worker(
    receiver: crossbeam::channel::Receiver<Batch>,
    window_us: u64,
    log_cap: usize,
    log: Arc<Mutex<Vec<Decision>>>,
    tracked: Arc<AtomicU64>,
    registry: Arc<Mutex<Registry>>,
    dropped_log: Arc<AtomicU64>,
    sink: Option<SharedObs>,
) {
    let mut dedup = Deduplicator::new(window_us);
    let mut local: Vec<Decision> = Vec::with_capacity(128);
    while let Ok(batch) = receiver.recv() {
        let _sp = obs::span::enter(obs::span::SpanId::SvcBatch);
        let (mut new, mut dup, mut late) = (0u64, 0u64, 0u64);
        for p in &batch.pkts {
            let copy = UplinkCopy {
                dev_addr: DevAddr(p.dev),
                fcnt: p.fcnt,
                gw_id: p.gw as usize,
                snr_db: p.snr_db as f64,
                received_us: p.t_us,
                trace: p.trace,
            };
            let outcome = match &sink {
                Some(s) if s.lock().enabled() => dedup.offer_obs(copy, &mut *s.lock()),
                _ => dedup.offer(copy),
            };
            match outcome {
                DedupOutcome::New => new += 1,
                DedupOutcome::Duplicate => dup += 1,
                DedupOutcome::Late => late += 1,
            }
            local.push(Decision {
                dev: p.dev,
                fcnt: p.fcnt,
                gw: p.gw,
                t_us: p.t_us,
                outcome,
            });
        }
        let latency_us = batch.recv.elapsed().as_micros() as u64;
        {
            let mut l = log.lock();
            let room = log_cap.saturating_sub(l.len());
            if room >= local.len() {
                l.extend_from_slice(&local);
            } else {
                l.extend_from_slice(&local[..room]);
                dropped_log.fetch_add((local.len() - room) as u64, Ordering::Relaxed);
            }
        }
        local.clear();
        tracked.store(dedup.tracked() as u64, Ordering::Relaxed);
        let mut r = registry.lock();
        r.inc("dedup_new_total", new);
        r.inc("dedup_duplicate_total", dup);
        r.inc("dedup_late_total", late);
        r.observe("ingest_latency_us", &INGEST_LATENCY_BOUNDS_US, latency_us);
    }
}

/// Serialize per-shard decision logs to a canonical byte stream — the
/// "dedup decision stream" the acceptance test compares byte-for-byte
/// against an in-process replay.
pub fn render_decisions(logs: &[Vec<Decision>]) -> Vec<u8> {
    use std::io::Write;
    let mut out = Vec::new();
    for (shard, log) in logs.iter().enumerate() {
        for d in log {
            let _ = writeln!(
                out,
                "{shard},{:08x},{},{},{},{}",
                d.dev,
                d.fcnt,
                d.gw,
                d.t_us,
                outcome_code(d.outcome)
            );
        }
    }
    out
}

/// Parse [`render_decisions`] output back into per-shard logs (the
/// `loadgen` binary scrapes `/decisions` and verifies divergence
/// out-of-process). Returns `None` on any malformed line.
pub fn parse_decisions(text: &str) -> Option<Vec<Vec<Decision>>> {
    let mut logs: Vec<Vec<Decision>> = Vec::new();
    for line in text.lines() {
        let mut f = line.split(',');
        let shard: usize = f.next()?.parse().ok()?;
        let dev = u32::from_str_radix(f.next()?, 16).ok()?;
        let fcnt: u16 = f.next()?.parse().ok()?;
        let gw: u16 = f.next()?.parse().ok()?;
        let t_us: u64 = f.next()?.parse().ok()?;
        let outcome = match f.next()? {
            "0" => DedupOutcome::New,
            "1" => DedupOutcome::Duplicate,
            "2" => DedupOutcome::Late,
            _ => return None,
        };
        if f.next().is_some() {
            return None;
        }
        if logs.len() <= shard {
            logs.resize_with(shard + 1, Vec::new);
        }
        logs[shard].push(Decision {
            dev,
            fcnt,
            gw,
            t_us,
            outcome,
        });
    }
    Some(logs)
}

/// Replay each shard's offer stream through a fresh [`Deduplicator`]
/// and rebuild the decision logs the shards *should* have produced.
/// SNR is irrelevant to outcomes (it only picks the best copy), so the
/// replay runs with SNR 0 and is still exact.
pub fn replay_decisions(logs: &[Vec<Decision>], window_us: u64) -> Vec<Vec<Decision>> {
    logs.iter()
        .map(|log| {
            let mut dedup = Deduplicator::new(window_us);
            log.iter()
                .map(|d| {
                    let outcome = dedup.offer(UplinkCopy {
                        dev_addr: DevAddr(d.dev),
                        fcnt: d.fcnt,
                        gw_id: d.gw as usize,
                        snr_db: 0.0,
                        received_us: d.t_us,
                        trace: 0,
                    });
                    Decision { outcome, ..*d }
                })
                .collect()
        })
        .collect()
}

/// Count decisions whose logged outcome differs from the in-process
/// replay. Zero is the shard-equivalence acceptance criterion.
pub fn replay_divergence(logs: &[Vec<Decision>], window_us: u64) -> u64 {
    let replayed = replay_decisions(logs, window_us);
    logs.iter()
        .zip(&replayed)
        .map(|(a, b)| a.iter().zip(b).filter(|(x, y)| x != y).count() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(shards: usize) -> (ShardPool, ShardRouter) {
        let registry = Arc::new(Mutex::new(Registry::new()));
        let p = ShardPool::new(shards, 8, 1_000_000, 10_000, registry, None);
        let r = p.router();
        (p, r)
    }

    fn pkt(dev: u32, fcnt: u16, gw: u16, t_us: u64) -> PacketIn {
        PacketIn {
            dev,
            fcnt,
            gw,
            t_us,
            snr_db: 0.0,
            trace: 0,
        }
    }

    fn drain(p: &ShardPool, want: u64) {
        for _ in 0..200 {
            if p.dedup_stats().offered >= want {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("workers never processed {want} offers");
    }

    #[test]
    fn decisions_route_by_hash_and_replay_exactly() {
        let (p, r) = pool(4);
        for i in 0..64u32 {
            let dev = i % 8;
            let shard = r.shard_of(dev);
            r.send(
                shard,
                Batch {
                    pkts: vec![pkt(dev, (i / 8) as u16, (i % 3) as u16, i as u64 * 1_000)],
                    recv: Instant::now(),
                },
            );
        }
        drain(&p, 64);
        let logs = p.decisions();
        assert_eq!(logs.iter().map(|l| l.len()).sum::<usize>(), 64);
        // Every decision sits in the shard its DevAddr hashes to.
        for (shard, log) in logs.iter().enumerate() {
            for d in log {
                assert_eq!(shard_of(DevAddr(d.dev), 4), shard);
            }
        }
        assert_eq!(replay_divergence(&logs, 1_000_000), 0);
        assert_eq!(
            render_decisions(&logs),
            render_decisions(&replay_decisions(&logs, 1_000_000)),
            "decision stream must be byte-identical to the replay"
        );
        drop(r);
        p.shutdown();
    }

    #[test]
    fn duplicate_and_late_outcomes_are_logged() {
        let (p, r) = pool(1);
        let batch = |pkts| Batch {
            pkts,
            recv: Instant::now(),
        };
        r.send(0, batch(vec![pkt(1, 0, 0, 1_000), pkt(1, 0, 1, 2_000)]));
        // Advance the high-water mark a full window, then offer a stale
        // copy of an expired frame.
        r.send(0, batch(vec![pkt(2, 0, 0, 3_000_000)]));
        r.send(0, batch(vec![pkt(1, 0, 2, 1_500)]));
        drain(&p, 4);
        let logs = p.decisions();
        let outcomes: Vec<DedupOutcome> = logs[0].iter().map(|d| d.outcome).collect();
        assert_eq!(
            outcomes,
            vec![
                DedupOutcome::New,
                DedupOutcome::Duplicate,
                DedupOutcome::New,
                DedupOutcome::Late
            ]
        );
        assert_eq!(replay_divergence(&logs, 1_000_000), 0);
        let stats = p.dedup_stats();
        assert_eq!((stats.new, stats.duplicate, stats.late), (2, 1, 1));
        drop(r);
        p.shutdown();
    }

    #[test]
    fn log_cap_keeps_a_replayable_prefix() {
        let registry = Arc::new(Mutex::new(Registry::new()));
        let p = ShardPool::new(1, 8, 1_000_000, 10, Arc::clone(&registry), None);
        let r = p.router();
        for i in 0..25u16 {
            r.send(
                0,
                Batch {
                    pkts: vec![pkt(7, i, 0, i as u64 * 100)],
                    recv: Instant::now(),
                },
            );
        }
        drain(&p, 25);
        let logs = p.decisions();
        assert_eq!(logs[0].len(), 10, "log stops at the cap");
        assert_eq!(p.decisions_dropped(), 15);
        // The prefix is still exactly replayable.
        assert_eq!(replay_divergence(&logs, 1_000_000), 0);
        drop(r);
        p.shutdown();
    }

    #[test]
    fn registry_sees_latency_histogram() {
        let registry = Arc::new(Mutex::new(Registry::new()));
        let p = ShardPool::new(2, 8, 1_000_000, 1_000, Arc::clone(&registry), None);
        let r = p.router();
        r.send(
            r.shard_of(5),
            Batch {
                pkts: vec![pkt(5, 0, 0, 10)],
                recv: Instant::now(),
            },
        );
        drain(&p, 1);
        drop(r);
        p.shutdown();
        let reg = registry.lock();
        let h = reg.histogram("ingest_latency_us").expect("histogram");
        assert_eq!(h.total(), 1);
        assert_eq!(reg.counter("dedup_new_total"), 1);
    }
}
