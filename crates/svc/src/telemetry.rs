//! Continuous daemon telemetry.
//!
//! Both daemons run one [`Sampler`]: a wall-clock thread that
//! snapshots the daemon registry (plus process RSS) into an embedded
//! [`obs::Tsdb`] every tick, evaluates SLO burn-rate rules against the
//! closed frames, and — on breach — triggers the shared
//! [`obs::FlightRecorder`] so the last-N event ring lands on disk with
//! the breaching rule as the snapshot reason. The stored frames back
//! the `/series` endpoint; [`spans_body`] backs `/spans` from the
//! process-global span profiler.

use crate::runtime::SharedObs;
use obs::{FlightRecorder, ObsEvent, ObsSink, Registry, SeriesDoc, SloRule, SloSet, Tsdb};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A flight recorder shared between the daemon's event path (which
/// feeds its ring) and the sampler (which triggers it on SLO breach).
pub type SharedFlight = Arc<Mutex<FlightRecorder>>;

/// Tee sink: feeds every daemon event into the flight-recorder ring
/// while forwarding to the caller's sink (when one is attached). The
/// recorder ring is bounded, so this stays O(1) per event no matter
/// how long the daemon soaks.
pub struct FlightTee {
    caller: Option<SharedObs>,
    flight: SharedFlight,
}

impl FlightTee {
    /// Wrap `caller` (possibly absent) so `flight` sees every event.
    pub fn new(caller: Option<SharedObs>, flight: SharedFlight) -> FlightTee {
        FlightTee { caller, flight }
    }
}

impl ObsSink for FlightTee {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: &ObsEvent) {
        if let Some(c) = &self.caller {
            let mut c = c.lock();
            if c.enabled() {
                c.record(ev);
            }
        }
        self.flight.lock().record(ev);
    }

    fn flush(&mut self) {
        if let Some(c) = &self.caller {
            c.lock().flush();
        }
        self.flight.lock().flush();
    }
}

/// The sampler thread plus the time-series store it fills.
pub struct Sampler {
    tsdb: Arc<Mutex<Tsdb>>,
    breaches: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Start a sampler ticking every `interval_ms` (clamped to ≥ 10ms):
    /// each tick samples process memory into `registry`, closes tsdb
    /// windows from a registry snapshot, then evaluates `rules`; every
    /// breach triggers `flight` (when present) with the rule name as
    /// the snapshot reason.
    pub fn start(
        registry: Arc<Mutex<Registry>>,
        interval_ms: u64,
        rules: Vec<SloRule>,
        flight: Option<SharedFlight>,
    ) -> Sampler {
        let interval = Duration::from_millis(interval_ms.max(10));
        let tsdb = Arc::new(Mutex::new(Tsdb::new(
            interval.as_micros() as u64,
            obs::tsdb::DEFAULT_FRAME_CAP,
        )));
        let breaches = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let t_tsdb = Arc::clone(&tsdb);
        let t_breaches = Arc::clone(&breaches);
        let t_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("svc-sampler".into())
            .spawn(move || {
                let mut slo = SloSet::new(rules);
                let started = Instant::now();
                let mut next = started + interval;
                while !t_stop.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    if now < next {
                        // Sleep in short steps so shutdown stays prompt
                        // even with multi-second intervals.
                        std::thread::sleep((next - now).min(Duration::from_millis(25)));
                        continue;
                    }
                    next += interval;
                    let snapshot = {
                        let mut reg = registry.lock();
                        reg.sample_process_memory();
                        reg.clone()
                    };
                    let now_us = started.elapsed().as_micros() as u64;
                    let fired = {
                        let mut db = t_tsdb.lock();
                        db.sample(now_us, &snapshot);
                        slo.evaluate(&db)
                    };
                    for breach in fired {
                        t_breaches.fetch_add(1, Ordering::Relaxed);
                        if let Some(fr) = &flight {
                            fr.lock().trigger(&format!("slo-{}", breach.rule));
                        }
                    }
                }
            })
            .expect("spawn svc-sampler");
        Sampler {
            tsdb,
            breaches,
            stop,
            handle: Some(handle),
        }
    }

    /// Snapshot of the stored frames as a serializable document.
    pub fn series_doc(&self) -> SeriesDoc {
        self.tsdb.lock().to_doc()
    }

    /// `/series` response body: the frame document as JSON + newline.
    pub fn series_body(&self) -> Vec<u8> {
        let mut body = serde_json::to_string(&self.series_doc()).unwrap_or_else(|_| "{}".into());
        body.push('\n');
        body.into_bytes()
    }

    /// Handle on the store (the HTTP closure clones this).
    pub fn tsdb(&self) -> Arc<Mutex<Tsdb>> {
        Arc::clone(&self.tsdb)
    }

    /// SLO breaches fired since start (post-suppression).
    pub fn breaches(&self) -> u64 {
        self.breaches.load(Ordering::Relaxed)
    }

    /// Stop the tick loop and join the thread. Idempotent; also runs
    /// on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// `/series` response body straight from a shared store (for closures
/// that hold the `Arc` rather than the [`Sampler`]).
pub fn series_body_of(tsdb: &Arc<Mutex<Tsdb>>) -> Vec<u8> {
    let mut body = serde_json::to_string(&tsdb.lock().to_doc()).unwrap_or_else(|_| "{}".into());
    body.push('\n');
    body.into_bytes()
}

/// `/spans` response body: the process-global span profile as JSON +
/// newline. Sites report exact call counts even when the profiler is
/// detached; durations appear once `obs::span::attach` has run.
pub fn spans_body() -> Vec<u8> {
    let mut body = obs::span::report().to_json();
    body.push('\n');
    body.into_bytes()
}

/// Default burn-rate rules for the ingest daemon, sized for its
/// counter names: late-dedup ratio and malformed-datagram ratio over a
/// 10s trailing window, plus an ingest-stall rule that fires when a
/// previously busy server stops seeing packets entirely.
pub fn netserver_slo_rules() -> Vec<SloRule> {
    vec![
        SloRule {
            name: "dedup-late-burn".into(),
            numer: "dedup_late_total".into(),
            denom: Some("svc_pkts_total".into()),
            window_us: 10_000_000,
            threshold: 0.05,
            breach_below: false,
            min_count: 1_000,
        },
        SloRule {
            name: "malformed-burn".into(),
            numer: "svc_malformed_total".into(),
            denom: Some("svc_datagrams_total".into()),
            window_us: 10_000_000,
            threshold: 0.10,
            breach_below: false,
            min_count: 100,
        },
    ]
}

/// Default burn-rate rules for the Master daemon: plan-serve latency
/// watched via the request-rate collapse rule only (the latency
/// histogram itself is surfaced per-window in `/series`).
pub fn master_slo_rules() -> Vec<SloRule> {
    vec![SloRule {
        name: "master-conn-burn".into(),
        numer: "master_conns_total".into(),
        denom: Some("master_requests_total".into()),
        window_us: 10_000_000,
        threshold: 4.0,
        breach_below: false,
        min_count: 200,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_fills_frames_and_shuts_down() {
        let registry = Arc::new(Mutex::new(Registry::new()));
        let mut sampler = Sampler::start(Arc::clone(&registry), 10, Vec::new(), None);
        for i in 0..20 {
            registry.lock().inc("ticks_total", i);
            std::thread::sleep(Duration::from_millis(5));
        }
        // Wait for at least one closed frame (bounded).
        let deadline = Instant::now() + Duration::from_secs(5);
        while sampler.series_doc().frames.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let doc = sampler.series_doc();
        assert!(!doc.frames.is_empty(), "sampler never closed a frame");
        assert_eq!(doc.version, obs::TSDB_SCHEMA_VERSION);
        let total: u64 = doc.frames.iter().map(|f| f.counter("ticks_total")).sum();
        assert!(total > 0, "counter deltas missing from frames");
        // RSS gauge rides along on every tick (Linux-only source, but
        // the gauge sampling is unconditional on success).
        if obs::proc_mem().is_some() {
            let has_rss = doc
                .frames
                .iter()
                .any(|f| f.gauges.iter().any(|(k, _)| k == "process_rss_bytes"));
            assert!(has_rss, "RSS gauge missing from frames");
        }
        sampler.shutdown();
        sampler.shutdown(); // idempotent
    }

    #[test]
    fn breach_triggers_flight_snapshot() {
        let dir = std::env::temp_dir().join(format!("svc-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let flight: SharedFlight =
            Arc::new(Mutex::new(FlightRecorder::new(&dir, 64).with_prefix("svc")));
        // Feed one event so the snapshot has a body.
        flight.lock().record(&ObsEvent::SvcAccept {
            wall_us: 1,
            conn: obs::SvcConn::Udp,
            peer: 7,
        });
        let registry = Arc::new(Mutex::new(Registry::new()));
        let rules = vec![SloRule {
            name: "late".into(),
            numer: "dedup_late_total".into(),
            denom: Some("svc_pkts_total".into()),
            window_us: 40_000,
            threshold: 0.05,
            breach_below: false,
            min_count: 10,
        }];
        let mut sampler =
            Sampler::start(Arc::clone(&registry), 10, rules, Some(Arc::clone(&flight)));
        {
            let mut reg = registry.lock();
            reg.inc("svc_pkts_total", 1_000);
            reg.inc("dedup_late_total", 500);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while sampler.breaches() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.shutdown();
        assert!(sampler.breaches() >= 1, "SLO rule never fired");
        let snaps = flight.lock().snapshots().to_vec();
        assert!(!snaps.is_empty(), "breach did not trigger a snapshot");
        let name = snaps[0].file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.contains("slo-late"), "reason missing from {name}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_tee_feeds_ring_and_caller() {
        let dir = std::env::temp_dir().join(format!("svc-tee-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let flight: SharedFlight = Arc::new(Mutex::new(FlightRecorder::new(&dir, 8)));
        let caller: SharedObs = Arc::new(Mutex::new(obs::MetricsSink::new()));
        let mut tee = FlightTee::new(Some(Arc::clone(&caller)), Arc::clone(&flight));
        tee.record(&ObsEvent::SvcAccept {
            wall_us: 3,
            conn: obs::SvcConn::Tcp,
            peer: 1,
        });
        tee.flush();
        assert_eq!(flight.lock().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spans_body_is_json() {
        // Detached spans are free (and uncounted); attach so the site
        // registers, since zero-call sites are omitted from the report.
        obs::span::attach_with_stride(0);
        drop(obs::span::enter(obs::span::SpanId::SvcBatch));
        let body = spans_body();
        obs::span::detach();
        let text = String::from_utf8(body).expect("utf8");
        assert!(text.ends_with('\n'));
        assert!(text.contains("\"sites\""), "span report missing sites");
        assert!(text.contains("svc.batch"), "site names missing");
    }
}
