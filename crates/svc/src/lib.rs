//! Socket daemons for the AlphaWAN service plane.
//!
//! The rest of the workspace exercises the paper's network server and
//! Master in-process; this crate runs them as real daemons — the
//! deployment shape of Fig. 1, where gateways backhaul over UDP to a
//! network server and operators fetch channel plans from a cloud
//! Master over TCP:
//!
//! * [`netserverd`] — UDP ingest speaking the Semtech forwarder
//!   protocol, fanning uplinks out to sharded dedup workers
//!   ([`runtime`]).
//! * [`masterd`] — the TCP channel-plan daemon wrapping
//!   [`alphawan::master::MasterServer`].
//! * [`loadgen`] — a line-rate gateway-fleet load generator replaying
//!   [`bench::scenario`] worlds against a live socket.
//!
//! Everything is plain `std` threads and blocking sockets — no async
//! runtime. The workloads here are a handful of long-lived
//! connections plus one UDP firehose; thread-per-socket with bounded
//! queues gives the same throughput as an executor without importing
//! one, and keeps the failure modes (a blocked thread, a full queue)
//! observable with a debugger. Both daemons export Prometheus-format
//! metrics over a plaintext TCP endpoint ([`endpoint`]) and write the
//! versioned `BENCH_service.json` artifact ([`report`]).

#![deny(missing_docs)]

pub mod endpoint;
pub mod loadgen;
pub mod masterd;
pub mod netserverd;
pub mod report;
pub mod runtime;
pub mod telemetry;

pub use endpoint::{http_get, HttpEndpoint, HttpHandler};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use masterd::{MasterConfig, MasterDaemon};
pub use netserverd::{NetServerConfig, NetServerDaemon};
pub use report::{LatencyQuantiles, ServiceBench, BENCH_SERVICE_SCHEMA_VERSION};
pub use runtime::{
    render_decisions, replay_decisions, replay_divergence, Decision, ShardPool, ShardRouter,
};
pub use telemetry::{FlightTee, Sampler, SharedFlight};
