//! A minimal plaintext-HTTP metrics endpoint.
//!
//! Both daemons expose their [`obs::Registry`] over a TCP socket in
//! the Prometheus text exposition format. The server is deliberately
//! tiny — `GET <path>` in, `HTTP/1.0` + `Connection: close` out — so
//! it can be scraped with `curl`, a CI shell script, or a raw
//! `TcpStream` in tests without any HTTP machinery on either side.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Resolves a request path to `(content-type, body)`; `None` → 404.
pub type HttpHandler = Arc<dyn Fn(&str) -> Option<(&'static str, Vec<u8>)> + Send + Sync>;

/// A running metrics endpoint.
pub struct HttpEndpoint {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HttpEndpoint {
    /// Bind `bind` and serve `handler` until shutdown. Connections are
    /// handled serially on one thread: scrapes are rare and tiny, and
    /// a serial accept loop cannot amplify into a thread flood.
    pub fn start(bind: SocketAddr, handler: HttpHandler) -> io::Result<HttpEndpoint> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let loop_shutdown = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("svc-metrics-http".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if loop_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(s) = stream {
                        let _ = serve_one(s, &handler);
                    }
                }
            })?;
        Ok(HttpEndpoint {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (scrape target).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serve thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpEndpoint {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown_inner();
        }
    }
}

fn serve_one(mut stream: TcpStream, handler: &HttpHandler) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read until the request line is complete; ignore headers/body.
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    while !buf.windows(2).any(|w| w == b"\r\n") && buf.len() < 8_192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let line = match buf.split(|&b| b == b'\r').next() {
        Some(l) => String::from_utf8_lossy(l).into_owned(),
        None => return Ok(()),
    };
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method != "GET" {
        http_response(405, "text/plain", b"method not allowed\n")
    } else {
        match handler(path) {
            Some((ctype, body)) => http_response(200, ctype, &body),
            None => http_response(404, "text/plain", b"not found\n"),
        }
    };
    stream.write_all(&response)?;
    Ok(())
}

fn http_response(status: u16, ctype: &str, body: &[u8]) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let mut out = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Fetch `path` from a running endpoint — the scrape helper tests and
/// the load generator use (one GET, read to EOF, return the body).
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.0 200") => Ok(body.to_string()),
        Some((head, _)) => Err(io::Error::other(format!(
            "scrape of {path} failed: {}",
            head.lines().next().unwrap_or("")
        ))),
        None => Err(io::Error::other("malformed HTTP response")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn endpoint() -> HttpEndpoint {
        let handler: HttpHandler = Arc::new(|path| match path {
            "/metrics" => Some(("text/plain; version=0.0.4", b"up 1\n".to_vec())),
            "/healthz" => Some(("text/plain", b"ok\n".to_vec())),
            _ => None,
        });
        HttpEndpoint::start((Ipv4Addr::LOCALHOST, 0).into(), handler).unwrap()
    }

    #[test]
    fn serves_registered_paths() {
        let ep = endpoint();
        assert_eq!(http_get(ep.addr(), "/metrics").unwrap(), "up 1\n");
        assert_eq!(http_get(ep.addr(), "/healthz").unwrap(), "ok\n");
        ep.shutdown();
    }

    #[test]
    fn unknown_path_is_404_and_server_survives() {
        let ep = endpoint();
        let err = http_get(ep.addr(), "/nope").unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");
        // The serial accept loop must keep serving after an error.
        assert_eq!(http_get(ep.addr(), "/healthz").unwrap(), "ok\n");
        ep.shutdown();
    }

    #[test]
    fn non_get_method_rejected() {
        let ep = endpoint();
        let mut s = TcpStream::connect(ep.addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"), "{raw}");
        ep.shutdown();
    }
}
