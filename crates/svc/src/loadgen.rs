//! The line-rate gateway load generator.
//!
//! Replays a simulated gateway fleet against a live `netserverd`
//! socket. The fleet comes from [`bench::scenario`]: a testbed world
//! runs a coordinated schedule and every [`sim::world::PacketRecord`]'s
//! `receiving_gateways` become real `PUSH_DATA` rxpks — one copy per
//! receiving gateway, which is exactly the duplicate pattern the dedup
//! shards exist for.
//!
//! Reaching line rate on one core means the hot loop cannot touch
//! JSON: every datagram is encoded **once** at setup, and each epoch
//! (one replay of the fleet's schedule) re-sends the same bytes after
//! patching, in place, the binary token (bytes 1..3) and every rxpk's
//! `tmst` — kept at a fixed 10-ASCII-digit width by anchoring virtual
//! time at [`TMST_BASE_US`], so the patch never resizes the buffer.
//! FCnt values repeat across epochs; the epoch span exceeds the dedup
//! window, so each repeat is correctly classified `New` (the same
//! thing that happens when a real device's 16-bit FCnt wraps).
//!
//! Pacing is open-loop: a target rate is enforced against the wall
//! clock without waiting for ACKs, so a slow server sheds load in its
//! kernel socket buffer instead of slowing the generator. ACK RTT is
//! measured on a sampled subset of datagrams by a separate receiver
//! thread; the Master plan path is exercised concurrently through
//! [`ResilientMasterClient`].

use crate::runtime::SERVE_LATENCY_BOUNDS_US;
use alphawan::master::{BackoffPolicy, PlanSource, ResilientMasterClient};
use bench::scenario::{
    coordinated_schedule, orthogonal_assignments, NetworkSpec, WorldBuilder, PAYLOAD_LEN,
};
use gateway::forwarder::codec::{Datagram, GatewayEui, RxPacket};
use lora_mac::device::{DevAddr, SessionKeys};
use lora_mac::frame::PhyPayload;
use lora_phy::channel::ChannelGrid;
use obs::Histogram;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Virtual-time anchor for rxpk `tmst` values. Keeping every patched
/// value in `[10^9, 10^10)` pins the ASCII encoding at exactly ten
/// digits, so epoch patching is an in-place byte write.
pub const TMST_BASE_US: u64 = 1_000_000_000;
const TMST_MAX_US: u64 = 9_999_999_999;

/// Gateway EUIs are this base plus the fleet gateway index.
pub const GATEWAY_EUI_BASE: u64 = 0x00AA_0000_0000_0000;

/// ACK round-trip histogram bounds, µs.
pub const ACK_RTT_BOUNDS_US: [u64; 8] = [100, 250, 500, 1_000, 2_500, 5_000, 25_000, 100_000];

/// Load-generator configuration. `Default` is sized for tests; the
/// soak harness and the `loadgen` binary scale it up.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// The `netserverd` ingest socket (or a chaos proxy in front).
    pub server: SocketAddr,
    /// Optional Master plan server to exercise concurrently.
    pub master: Option<SocketAddr>,
    /// Simulated gateways in the fleet.
    pub gateways: usize,
    /// Simulated end devices per replica.
    pub devices: usize,
    /// Device-population replicas: each re-sends the schedule under a
    /// shifted DevAddr range, multiplying packets per epoch without
    /// lengthening the virtual-time span.
    pub replicas: usize,
    /// Topology/schedule seed.
    pub seed: u64,
    /// Max rxpks per PUSH_DATA datagram.
    pub batch: usize,
    /// Times to replay the fleet schedule.
    pub epochs: usize,
    /// Open-loop send rate in packets/sec; `None` sends at line rate.
    pub target_pps: Option<u64>,
    /// Record ACK RTT for every Nth datagram.
    pub rtt_sample_every: u64,
    /// Flow-control window: max PUSH_DATA datagrams in flight without a
    /// PUSH_ACK (`0` = unbounded). UDP has no backpressure of its own —
    /// an unpaced sender overruns the receiver's kernel socket buffer
    /// and the kernel drops silently; bounding in-flight bytes below
    /// that buffer is what makes a lossless loopback soak possible. A
    /// window slot whose ACK never arrives (chaos loss) is leaked back
    /// after a short stall rather than wedging the sender.
    pub max_inflight_datagrams: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            server: (std::net::Ipv4Addr::LOCALHOST, 0).into(),
            master: None,
            gateways: 4,
            devices: 48,
            replicas: 2,
            seed: 7,
            batch: 64,
            epochs: 4,
            target_pps: None,
            rtt_sample_every: 16,
            max_inflight_datagrams: 8,
        }
    }
}

/// What one run sent and observed (client side; daemon-side ingest
/// counts come from the daemon's own metrics).
#[derive(Debug)]
pub struct LoadgenReport {
    /// PUSH_DATA datagrams sent.
    pub sent_datagrams: u64,
    /// Individual rxpk packets carried by those datagrams.
    pub sent_pkts: u64,
    /// Epochs actually replayed (clamped when the virtual-time budget
    /// runs out before the requested count).
    pub epochs_run: usize,
    /// Wall-clock duration of the send loop.
    pub elapsed: Duration,
    /// Client-side send rate, pkts/sec.
    pub offered_pps: f64,
    /// PUSH/PULL ACK datagrams received back.
    pub acks: u64,
    /// Round-trip latency of sampled PUSH_DATA→ACK pairs, µs.
    pub ack_rtt: Histogram,
    /// Plan requests that went to the Master daemon.
    pub plan_fetches: u64,
    /// Plan requests answered from the client-side cache.
    pub plan_cached: u64,
    /// Latency of Master plan fetches, µs.
    pub plan_latency: Histogram,
}

/// One pre-encoded PUSH_DATA with its patch table.
struct EncodedDatagram {
    wire: Vec<u8>,
    /// `(byte offset, epoch-0 value)` of each 10-digit tmst field.
    tmst: Vec<(usize, u64)>,
    pkts: u32,
    first_tmst: u64,
}

/// The pre-encoded fleet stream.
pub struct FleetStream {
    datagrams: Vec<EncodedDatagram>,
    pkts_per_epoch: u64,
    /// Virtual time consumed per epoch; exceeds the dedup window so
    /// FCnt reuse across epochs classifies `New`.
    epoch_span_us: u64,
}

impl FleetStream {
    /// Packets sent by one full epoch.
    pub fn pkts_per_epoch(&self) -> u64 {
        self.pkts_per_epoch
    }

    /// Epochs that fit the fixed-width tmst budget.
    pub fn max_epochs(&self) -> usize {
        ((TMST_MAX_US - TMST_BASE_US) / self.epoch_span_us.max(1)) as usize
    }
}

/// Simulate the fleet and pre-encode its datagram stream.
///
/// `min_window_us` is the serving daemon's dedup window: the epoch
/// span is stretched past it so cross-epoch FCnt reuse stays `New`.
pub fn build_fleet(cfg: &LoadgenConfig, min_window_us: u64) -> io::Result<FleetStream> {
    let channels = ChannelGrid::standard(916_800_000, 1_600_000).channels();
    let spec = NetworkSpec {
        network_id: 1,
        n_nodes: cfg.devices,
        gw_channels: vec![channels.clone(); cfg.gateways.max(1)],
    };
    let builder = WorldBuilder::testbed(cfg.seed).network(spec);
    let node_ids: Vec<usize> = builder.node_range(0).collect();
    let mut world = builder.build();
    let assignments = orthogonal_assignments(&node_ids, &channels);
    let horizon_us = 4_000_000;
    let plans = coordinated_schedule(&assignments, 0.25, horizon_us, PAYLOAD_LEN);
    let records = world.run(&plans);

    // Flatten records into per-gateway reception streams, replicated
    // across shifted DevAddr ranges.
    let network_key = [0x42u8; 16];
    let mut fcnt: HashMap<usize, u16> = HashMap::new();
    let mut max_end = 0u64;
    // Per gateway: (tmst, dev, phy payload index) — payloads are
    // encoded once per (record, replica) and shared by every gateway
    // that heard the copy.
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    struct Rx {
        tmst: u64,
        payload: usize,
        snr_db: f64,
        rssi_dbm: f64,
        channel: lora_phy::channel::Channel,
        sf: lora_phy::types::SpreadingFactor,
        trace: u64,
    }
    let mut per_gw: Vec<Vec<Rx>> = (0..cfg.gateways.max(1)).map(|_| Vec::new()).collect();
    for rec in &records {
        if rec.receiving_gateways.is_empty() {
            continue;
        }
        let node_fcnt = {
            let c = fcnt.entry(rec.node).or_insert(0);
            let v = *c;
            *c = c.wrapping_add(1);
            v
        };
        max_end = max_end.max(rec.end_us);
        for replica in 0..cfg.replicas.max(1) {
            let dev = DevAddr::new(1, (rec.node + replica * cfg.devices) as u32);
            let keys = SessionKeys::derive(&network_key, dev);
            let frm = [0xA5u8; PAYLOAD_LEN - 13];
            let phy = PhyPayload::uplink(dev, node_fcnt, 1, &frm)
                .encode(&keys)
                .map_err(|e| io::Error::other(format!("frame encode: {e:?}")))?;
            debug_assert_eq!(phy.len(), PAYLOAD_LEN);
            let payload = payloads.len();
            payloads.push(phy);
            let n_gw = per_gw.len();
            for &gw in &rec.receiving_gateways {
                per_gw[gw % n_gw].push(Rx {
                    tmst: TMST_BASE_US + rec.end_us,
                    payload,
                    snr_db: -2.0 - ((rec.node * 7 + gw * 13) % 16) as f64,
                    rssi_dbm: -90.0 - ((rec.node * 5 + gw * 3) % 30) as f64,
                    channel: rec.channel,
                    sf: rec.dr.spreading_factor(),
                    trace: (replica as u64) << 32 | (rec.tx_id + 1),
                });
            }
        }
    }
    let total: usize = per_gw.iter().map(|v| v.len()).sum();
    if total == 0 {
        return Err(io::Error::other(
            "fleet produced no receptions — schedule or topology degenerate",
        ));
    }

    // Chunk each gateway's time-sorted stream into PUSH_DATA datagrams.
    let mut datagrams = Vec::new();
    for (gw, mut rxs) in per_gw.into_iter().enumerate() {
        rxs.sort_by_key(|r| r.tmst);
        for chunk in rxs.chunks(cfg.batch.max(1)) {
            let rxpk: Vec<RxPacket> = chunk
                .iter()
                .map(|r| {
                    RxPacket::new(
                        r.tmst,
                        r.channel,
                        r.sf,
                        r.rssi_dbm,
                        r.snr_db,
                        &payloads[r.payload],
                    )
                    .with_trace(r.trace)
                })
                .collect();
            let wire = Datagram::PushData {
                token: 0,
                eui: GatewayEui(GATEWAY_EUI_BASE + gw as u64),
                rxpk,
            }
            .encode();
            let tmst = find_tmst_patches(&wire);
            assert_eq!(tmst.len(), chunk.len(), "one tmst field per rxpk");
            datagrams.push(EncodedDatagram {
                wire,
                tmst,
                pkts: chunk.len() as u32,
                first_tmst: chunk[0].tmst,
            });
        }
    }
    // Interleave gateways chronologically so the served timestamp
    // stream is (nearly) monotone within an epoch.
    datagrams.sort_by_key(|d| d.first_tmst);
    Ok(FleetStream {
        pkts_per_epoch: datagrams.iter().map(|d| d.pkts as u64).sum(),
        datagrams,
        epoch_span_us: (max_end + 1_000_000).max(min_window_us + 1_000_000),
    })
}

/// Locate every `"tmst":<10 digits>` value in an encoded PUSH_DATA.
fn find_tmst_patches(wire: &[u8]) -> Vec<(usize, u64)> {
    const KEY: &[u8] = b"\"tmst\":";
    let mut out = Vec::new();
    let mut i = 0;
    while i + KEY.len() < wire.len() {
        if &wire[i..i + KEY.len()] == KEY {
            let start = i + KEY.len();
            let mut end = start;
            while end < wire.len() && wire[end].is_ascii_digit() {
                end += 1;
            }
            let v: u64 = std::str::from_utf8(&wire[start..end])
                .ok()
                .and_then(|s| s.parse().ok())
                .expect("tmst digits");
            assert_eq!(end - start, 10, "tmst must be 10 digits for patching");
            out.push((start, v));
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

fn patch_tmst(wire: &mut [u8], at: usize, value: u64) {
    debug_assert!((TMST_BASE_US..=TMST_MAX_US).contains(&value));
    let mut v = value;
    for k in (0..10).rev() {
        wire[at + k] = b'0' + (v % 10) as u8;
        v /= 10;
    }
}

/// Run the generator against `cfg.server`.
pub fn run(cfg: &LoadgenConfig, server_window_us: u64) -> io::Result<LoadgenReport> {
    let fleet = build_fleet(cfg, server_window_us)?;
    run_stream(cfg, fleet)
}

/// Run with a pre-built fleet stream (lets a harness reuse the
/// expensive simulation across runs).
pub fn run_stream(cfg: &LoadgenConfig, mut fleet: FleetStream) -> io::Result<LoadgenReport> {
    let epochs = cfg.epochs.min(fleet.max_epochs());
    let socket = UdpSocket::bind(("127.0.0.1", 0))?;
    socket.connect(cfg.server)?;

    // ACK receiver: counts PUSH_ACKs and resolves sampled RTTs.
    let stop = Arc::new(AtomicBool::new(false));
    let acks = Arc::new(AtomicU64::new(0));
    let pending: Arc<Mutex<HashMap<u16, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let rtt: Arc<Mutex<Histogram>> = Arc::new(Mutex::new(Histogram::new(&ACK_RTT_BOUNDS_US)));
    let ack_thread = {
        let socket = socket.try_clone()?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let stop = Arc::clone(&stop);
        let acks = Arc::clone(&acks);
        let pending = Arc::clone(&pending);
        let rtt = Arc::clone(&rtt);
        std::thread::Builder::new()
            .name("loadgen-acks".into())
            .spawn(move || {
                let mut buf = [0u8; 1_024];
                while !stop.load(Ordering::SeqCst) {
                    match socket.recv(&mut buf) {
                        Ok(len) if len >= 4 && buf[3] == 0x01 => {
                            acks.fetch_add(1, Ordering::Relaxed);
                            let token = u16::from_be_bytes([buf[1], buf[2]]);
                            if let Some(t0) = pending.lock().remove(&token) {
                                rtt.lock().observe(t0.elapsed().as_micros() as u64);
                            }
                        }
                        Ok(_) => {}
                        Err(_) => {}
                    }
                }
            })?
    };

    // Master plan fetcher: heartbeats the control plane while the data
    // plane is under load.
    let plan_latency = Arc::new(Mutex::new(Histogram::new(&SERVE_LATENCY_BOUNDS_US)));
    let plan_counts = Arc::new(Mutex::new((0u64, 0u64))); // (fetches, cached)
    let plan_thread = cfg.master.map(|addr| {
        let stop = Arc::clone(&stop);
        let latency = Arc::clone(&plan_latency);
        let counts = Arc::clone(&plan_counts);
        std::thread::Builder::new()
            .name("loadgen-plans".into())
            .spawn(move || {
                let mut client =
                    ResilientMasterClient::new(addr, "loadgen-op", BackoffPolicy::default());
                while !stop.load(Ordering::SeqCst) {
                    let t0 = Instant::now();
                    if let Ok((_, source)) = client.channel_plan() {
                        latency.lock().observe(t0.elapsed().as_micros() as u64);
                        let mut c = counts.lock();
                        c.0 += 1;
                        if source == PlanSource::Cached {
                            c.1 += 1;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                client.shutdown();
            })
            .expect("spawn plan thread")
    });

    // The hot loop: patch + send, ack-windowed, open-loop paced.
    let started = Instant::now();
    let mut sent_pkts = 0u64;
    let mut sent_datagrams = 0u64;
    // ACKs presumed lost: leaked window slots, so chaos-dropped
    // datagrams cost one bounded stall each instead of a deadlock.
    let mut leaked_acks = 0u64;
    let window = cfg.max_inflight_datagrams;
    for epoch in 0..epochs {
        let shift = epoch as u64 * fleet.epoch_span_us;
        for d in fleet.datagrams.iter_mut() {
            if window > 0 {
                let stall = Instant::now();
                while sent_datagrams.saturating_sub(acks.load(Ordering::Relaxed) + leaked_acks)
                    >= window
                {
                    if stall.elapsed() > Duration::from_millis(5) {
                        leaked_acks += 1;
                        break;
                    }
                    std::thread::yield_now();
                }
            }
            let token = (sent_datagrams & 0xFFFF) as u16;
            d.wire[1..3].copy_from_slice(&token.to_be_bytes());
            for &(at, base) in &d.tmst {
                patch_tmst(&mut d.wire, at, base + shift);
            }
            if sent_datagrams.is_multiple_of(cfg.rtt_sample_every.max(1)) {
                pending.lock().insert(token, Instant::now());
            }
            socket.send(&d.wire)?;
            sent_datagrams += 1;
            sent_pkts += d.pkts as u64;
            if let Some(pps) = cfg.target_pps {
                let due_us = sent_pkts.saturating_mul(1_000_000) / pps.max(1);
                loop {
                    let elapsed_us = started.elapsed().as_micros() as u64;
                    if elapsed_us >= due_us {
                        break;
                    }
                    let lag = due_us - elapsed_us;
                    if lag > 2_000 {
                        std::thread::sleep(Duration::from_micros(lag - 1_000));
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
    let elapsed = started.elapsed();

    // Give stragglers a moment, then stop the helpers.
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);
    let _ = ack_thread.join();
    if let Some(t) = plan_thread {
        let _ = t.join();
    }

    let (plan_fetches, plan_cached) = *plan_counts.lock();
    let ack_rtt = rtt.lock().clone();
    let plan_latency_snapshot = plan_latency.lock().clone();
    Ok(LoadgenReport {
        sent_datagrams,
        sent_pkts,
        epochs_run: epochs,
        elapsed,
        offered_pps: sent_pkts as f64 / elapsed.as_secs_f64().max(1e-9),
        acks: acks.load(Ordering::Relaxed),
        ack_rtt,
        plan_fetches,
        plan_cached,
        plan_latency: plan_latency_snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LoadgenConfig {
        LoadgenConfig {
            devices: 16,
            gateways: 2,
            replicas: 1,
            batch: 8,
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn fleet_stream_is_patchable_and_decodable() {
        let fleet = build_fleet(&cfg(), 1_000_000).unwrap();
        assert!(fleet.pkts_per_epoch() > 0);
        assert!(fleet.max_epochs() > 100);
        for d in &fleet.datagrams {
            // Every pre-encoded datagram decodes with the reference
            // codec and owns one patch slot per rxpk.
            match Datagram::decode(&d.wire) {
                Some(Datagram::PushData { rxpk, .. }) => {
                    assert_eq!(rxpk.len() as u32, d.pkts);
                    for rx in &rxpk {
                        assert!(rx.tmst >= TMST_BASE_US);
                        assert!(rx.phy_payload().is_some(), "payload b64 round-trips");
                    }
                }
                other => panic!("not PUSH_DATA: {other:?}"),
            }
        }
    }

    #[test]
    fn tmst_patching_shifts_every_timestamp() {
        let fleet = build_fleet(&cfg(), 1_000_000).unwrap();
        let mut d = fleet
            .datagrams
            .into_iter()
            .next()
            .expect("at least one datagram");
        let shift = 123_456_789;
        for &(at, base) in &d.tmst {
            patch_tmst(&mut d.wire, at, base + shift);
        }
        match Datagram::decode(&d.wire) {
            Some(Datagram::PushData { rxpk, .. }) => {
                for rx in &rxpk {
                    assert!(rx.tmst >= TMST_BASE_US + shift);
                }
            }
            other => panic!("patched datagram no longer decodes: {other:?}"),
        }
    }

    #[test]
    fn replicas_multiply_packets_not_time() {
        let one = build_fleet(&cfg(), 1_000_000).unwrap();
        let two = build_fleet(
            &LoadgenConfig {
                replicas: 2,
                ..cfg()
            },
            1_000_000,
        )
        .unwrap();
        assert_eq!(two.pkts_per_epoch(), 2 * one.pkts_per_epoch());
        assert_eq!(two.epoch_span_us, one.epoch_span_us);
    }

    #[test]
    fn epoch_span_clears_the_dedup_window() {
        let window = 60_000_000;
        let fleet = build_fleet(&cfg(), window).unwrap();
        assert!(fleet.epoch_span_us > window);
    }
}
