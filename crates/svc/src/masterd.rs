//! `masterd`: the Master channel-plan daemon.
//!
//! Wraps [`alphawan::master::server::MasterServer`] — the TCP plan
//! server — with the service trimmings: a transport observer that
//! turns accepts and per-request handle times into registry counters,
//! a plan-serve latency histogram, [`ObsEvent::SvcAccept`] events, and
//! the same plaintext metrics endpoint `netserverd` exposes.

use crate::endpoint::{HttpEndpoint, HttpHandler};
use crate::report::LatencyQuantiles;
use crate::runtime::{SharedObs, SERVE_LATENCY_BOUNDS_US};
use crate::telemetry::{self, Sampler};
use alphawan::master::server::ServerEvent;
use alphawan::master::{MasterServer, RegionSpec};
use obs::{ObsEvent, Registry, SvcConn};
use parking_lot::Mutex;
use std::io;
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Instant;

/// Daemon configuration; `Default` serves the paper's three-network
/// testbed region on ephemeral loopback ports.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// TCP plan-server socket.
    pub bind: SocketAddr,
    /// TCP metrics endpoint.
    pub metrics_bind: SocketAddr,
    /// The spectrum region the Master carves.
    pub region: RegionSpec,
    /// Lease TTL forwarded to the Master node; 0 disables expiry.
    pub lease_ttl_ms: u64,
    /// Sampler tick for the embedded time-series store backing
    /// `/series` (milliseconds; one frame per tick).
    pub series_interval_ms: u64,
}

impl Default for MasterConfig {
    fn default() -> MasterConfig {
        MasterConfig {
            bind: (Ipv4Addr::LOCALHOST, 0).into(),
            metrics_bind: (Ipv4Addr::LOCALHOST, 0).into(),
            region: RegionSpec {
                band_low_hz: 923_200_000,
                spectrum_hz: 1_600_000,
                expected_networks: 3,
            },
            lease_ttl_ms: 0,
            series_interval_ms: 1_000,
        }
    }
}

/// A running Master daemon.
pub struct MasterDaemon {
    server: Option<MasterServer>,
    endpoint: HttpEndpoint,
    registry: Arc<Mutex<Registry>>,
    sampler: Sampler,
}

impl MasterDaemon {
    /// Bind both sockets and start serving plans.
    pub fn start(cfg: MasterConfig, sink: Option<SharedObs>) -> io::Result<MasterDaemon> {
        let registry = Arc::new(Mutex::new(Registry::new()));
        let obs_registry = Arc::clone(&registry);
        let started = Instant::now();
        let observer = Arc::new(move |ev: ServerEvent| match ev {
            ServerEvent::Accepted { conn } => {
                obs_registry.lock().inc("master_conns_total", 1);
                if let Some(s) = &sink {
                    let mut s = s.lock();
                    if s.enabled() {
                        s.record(&ObsEvent::SvcAccept {
                            wall_us: started.elapsed().as_micros() as u64,
                            conn: SvcConn::Tcp,
                            peer: conn,
                        });
                    }
                }
            }
            ServerEvent::Served {
                request, handle_us, ..
            } => {
                let mut reg = obs_registry.lock();
                reg.inc("master_requests_total", 1);
                reg.inc(&format!("master_req_{request}_total"), 1);
                reg.observe("plan_serve_latency_us", &SERVE_LATENCY_BOUNDS_US, handle_us);
            }
        });
        let server = MasterServer::start_observed(cfg.region, cfg.bind, Some(observer))?;
        if cfg.lease_ttl_ms > 0 {
            server.node().lock().set_lease_ttl_ms(cfg.lease_ttl_ms);
        }
        let sampler = Sampler::start(
            Arc::clone(&registry),
            cfg.series_interval_ms,
            telemetry::master_slo_rules(),
            None,
        );
        let endpoint = HttpEndpoint::start(
            cfg.metrics_bind,
            Self::http_handler(Arc::clone(&registry), sampler.tsdb()),
        )?;
        Ok(MasterDaemon {
            server: Some(server),
            endpoint,
            registry,
            sampler,
        })
    }

    fn http_handler(registry: Arc<Mutex<Registry>>, tsdb: Arc<Mutex<obs::Tsdb>>) -> HttpHandler {
        Arc::new(move |path| match path {
            "/metrics" => Some((
                "text/plain; version=0.0.4",
                registry.lock().render_prometheus().into_bytes(),
            )),
            "/healthz" => Some(("text/plain", b"ok\n".to_vec())),
            "/bench" => {
                let reg = registry.lock();
                let q = reg
                    .histogram("plan_serve_latency_us")
                    .map(LatencyQuantiles::of)
                    .unwrap_or_default();
                let body = format!(
                    "{{\"plan_serve_latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}, \"requests\": {}}}\n",
                    q.p50,
                    q.p95,
                    q.p99,
                    reg.counter("master_requests_total")
                );
                Some(("application/json", body.into_bytes()))
            }
            "/series" => Some(("application/json", telemetry::series_body_of(&tsdb))),
            "/spans" => Some(("application/json", telemetry::spans_body())),
            _ => None,
        })
    }

    /// Snapshot of the embedded time-series store (what `/series`
    /// serves).
    pub fn series(&self) -> obs::SeriesDoc {
        self.sampler.series_doc()
    }

    /// The plan-server address operators connect to.
    pub fn addr(&self) -> SocketAddr {
        self.server.as_ref().expect("running").addr()
    }

    /// The metrics endpoint address.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.endpoint.addr()
    }

    /// Read one counter from the daemon registry.
    pub fn counter(&self, name: &str) -> u64 {
        self.registry.lock().counter(name)
    }

    /// Clone of the plan-serve latency histogram.
    pub fn plan_latency(&self) -> obs::Histogram {
        self.registry
            .lock()
            .histogram("plan_serve_latency_us")
            .cloned()
            .unwrap_or_else(|| obs::Histogram::new(&SERVE_LATENCY_BOUNDS_US))
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        self.sampler.shutdown();
    }
}
