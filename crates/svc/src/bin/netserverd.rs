//! `netserverd` — run the UDP ingest daemon until killed.
//!
//! ```text
//! netserverd [--bind ADDR] [--metrics ADDR] [--shards N]
//!            [--receivers N] [--window-us N] [--log-cap N]
//!            [--series-interval-ms N] [--flight DIR] [--slo FILE]
//!            [--spans]
//! ```
//!
//! Prints `ingest=<addr> metrics=<addr>` once both sockets are bound,
//! so launch scripts can scrape the ephemeral ports.

use std::net::SocketAddr;
use svc::{NetServerConfig, NetServerDaemon};

fn parse_flags(cfg: &mut NetServerConfig) -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--bind" => cfg.bind = parse(&value("--bind")?)?,
            "--metrics" => cfg.metrics_bind = parse(&value("--metrics")?)?,
            "--shards" => cfg.shards = parse(&value("--shards")?)?,
            "--receivers" => cfg.receivers = parse(&value("--receivers")?)?,
            "--window-us" => cfg.dedup_window_us = parse(&value("--window-us")?)?,
            "--log-cap" => cfg.decision_log_cap = parse(&value("--log-cap")?)?,
            "--series-interval-ms" => {
                cfg.series_interval_ms = parse(&value("--series-interval-ms")?)?
            }
            "--flight" => cfg.flight_dir = Some(value("--flight")?.into()),
            "--slo" => {
                let path = value("--slo")?;
                let text =
                    std::fs::read_to_string(&path).map_err(|e| format!("--slo {path}: {e}"))?;
                let set =
                    obs::SloSet::from_json(&text).map_err(|e| format!("--slo {path}: {e}"))?;
                cfg.slo_rules = Some(set.rules().to_vec());
            }
            "--spans" => obs::span::attach(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value {s:?}"))
}

fn main() {
    let mut cfg = NetServerConfig {
        bind: "127.0.0.1:1700".parse::<SocketAddr>().expect("literal"),
        metrics_bind: "127.0.0.1:9101".parse::<SocketAddr>().expect("literal"),
        ..NetServerConfig::default()
    };
    if let Err(e) = parse_flags(&mut cfg) {
        eprintln!("netserverd: {e}");
        std::process::exit(2);
    }
    let daemon = match NetServerDaemon::start(cfg, None) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("netserverd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("ingest={} metrics={}", daemon.addr(), daemon.metrics_addr());
    // Line-buffered stdout may hold the announcement back from a
    // supervising pipe; force it out before parking.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
