//! `masterd` — run the Master channel-plan daemon until killed.
//!
//! ```text
//! masterd [--bind ADDR] [--metrics ADDR] [--band-low-hz N]
//!         [--spectrum-hz N] [--networks N] [--lease-ttl-ms N]
//! ```
//!
//! Prints `plan=<addr> metrics=<addr>` once both sockets are bound.

use svc::{MasterConfig, MasterDaemon};

fn parse_flags(cfg: &mut MasterConfig) -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--bind" => cfg.bind = parse(&value("--bind")?)?,
            "--metrics" => cfg.metrics_bind = parse(&value("--metrics")?)?,
            "--band-low-hz" => cfg.region.band_low_hz = parse(&value("--band-low-hz")?)?,
            "--spectrum-hz" => cfg.region.spectrum_hz = parse(&value("--spectrum-hz")?)?,
            "--networks" => cfg.region.expected_networks = parse(&value("--networks")?)?,
            "--lease-ttl-ms" => cfg.lease_ttl_ms = parse(&value("--lease-ttl-ms")?)?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value {s:?}"))
}

fn main() {
    let mut cfg = MasterConfig {
        bind: "127.0.0.1:1701".parse().expect("literal"),
        metrics_bind: "127.0.0.1:9102".parse().expect("literal"),
        ..MasterConfig::default()
    };
    if let Err(e) = parse_flags(&mut cfg) {
        eprintln!("masterd: {e}");
        std::process::exit(2);
    }
    let daemon = match MasterDaemon::start(cfg, None) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("masterd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("plan={} metrics={}", daemon.addr(), daemon.metrics_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
