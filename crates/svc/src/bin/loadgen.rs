//! `loadgen` — replay a simulated gateway fleet against a live
//! `netserverd` and (optionally) verify the daemon's dedup decisions.
//!
//! ```text
//! loadgen --server ADDR [--master ADDR] [--metrics ADDR]
//!         [--devices N] [--gateways N] [--replicas N] [--epochs N]
//!         [--batch N] [--target-pps N] [--inflight N] [--seed N]
//!         [--window-us N] [--chaos-loss P] [--mode NAME]
//! ```
//!
//! With `--metrics`, the daemon's `/decisions` stream is scraped after
//! the run and replayed in-process; any divergence is a non-zero exit.
//! With `--chaos-loss`, an in-process [`chaos::ChaosUdpProxy`] with
//! that datagram-loss probability is spliced in front of the server.
//! Writes `BENCH_service.json` and prints it to stdout.

use chaos::{ChaosUdpProxy, FaultPlan, FaultSchedule, FaultSpec};
use std::net::SocketAddr;
use svc::runtime::parse_decisions;
use svc::{http_get, LatencyQuantiles, LoadgenConfig, ServiceBench};

struct Flags {
    cfg: LoadgenConfig,
    metrics: Option<SocketAddr>,
    window_us: u64,
    chaos_loss: Option<f64>,
    mode: String,
}

fn parse_flags() -> Result<Flags, String> {
    let mut flags = Flags {
        cfg: LoadgenConfig::default(),
        metrics: None,
        window_us: 2_000_000,
        chaos_loss: None,
        mode: "smoke".to_string(),
    };
    let mut server = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--server" => server = Some(parse(&value("--server")?)?),
            "--master" => flags.cfg.master = Some(parse(&value("--master")?)?),
            "--metrics" => flags.metrics = Some(parse(&value("--metrics")?)?),
            "--devices" => flags.cfg.devices = parse(&value("--devices")?)?,
            "--gateways" => flags.cfg.gateways = parse(&value("--gateways")?)?,
            "--replicas" => flags.cfg.replicas = parse(&value("--replicas")?)?,
            "--epochs" => flags.cfg.epochs = parse(&value("--epochs")?)?,
            "--batch" => flags.cfg.batch = parse(&value("--batch")?)?,
            "--target-pps" => flags.cfg.target_pps = Some(parse(&value("--target-pps")?)?),
            "--inflight" => flags.cfg.max_inflight_datagrams = parse(&value("--inflight")?)?,
            "--seed" => flags.cfg.seed = parse(&value("--seed")?)?,
            "--window-us" => flags.window_us = parse(&value("--window-us")?)?,
            "--chaos-loss" => flags.chaos_loss = Some(parse(&value("--chaos-loss")?)?),
            "--mode" => flags.mode = value("--mode")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    flags.cfg.server = server.ok_or("--server is required")?;
    Ok(flags)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value {s:?}"))
}

fn main() {
    let mut flags = match parse_flags() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };

    // Optional chaos splice: loadgen → proxy → server.
    let proxy = flags.chaos_loss.map(|probability| {
        let plan = FaultPlan {
            seed: flags.cfg.seed,
            faults: vec![FaultSpec::BackhaulLoss {
                probability,
                start_us: 0,
                end_us: u64::MAX,
            }],
        };
        let schedule = FaultSchedule::compile(&plan).expect("valid loss plan");
        let proxy = ChaosUdpProxy::start(flags.cfg.server, schedule).expect("start chaos proxy");
        flags.cfg.server = proxy.addr();
        proxy
    });

    let report = match svc::loadgen::run(&flags.cfg, flags.window_us) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
    };

    // Out-of-process decision verification via the metrics endpoint.
    let mut divergence = 0u64;
    let mut ingested = 0u64;
    let mut ingest_latency = LatencyQuantiles::default();
    let mut dedup = (0u64, 0u64, 0u64);
    if let Some(metrics) = flags.metrics {
        if let Ok(text) = http_get(metrics, "/metrics") {
            let counter = |name: &str| {
                text.lines()
                    .find_map(|l| l.strip_prefix(name)?.trim().parse::<u64>().ok())
                    .unwrap_or(0)
            };
            dedup = (
                counter("dedup_new_total "),
                counter("dedup_duplicate_total "),
                counter("dedup_late_total "),
            );
        }
        match http_get(metrics, "/decisions").ok().and_then(|t| {
            let logs = parse_decisions(&t)?;
            Some((t, logs))
        }) {
            Some((text, logs)) => {
                ingested = logs.iter().map(|l| l.len() as u64).sum();
                divergence = svc::replay_divergence(&logs, flags.window_us);
                // Byte-level check: re-render the replayed stream and
                // compare against the scraped bytes.
                let replayed = svc::replay_decisions(&logs, flags.window_us);
                if svc::render_decisions(&replayed) != text.as_bytes() {
                    divergence = divergence.max(1);
                }
            }
            None => {
                eprintln!("loadgen: could not scrape/parse /decisions from {metrics}");
                std::process::exit(1);
            }
        }
        if let Ok(bench_json) = http_get(metrics, "/bench") {
            // Best-effort quantile pickup from the daemon's own view.
            if let Ok(v) = serde_json::from_str::<serde::Value>(&bench_json) {
                if let Some(obj) = v.as_object() {
                    if let Some(q) = serde::field(obj, "ingest_latency_us").as_object() {
                        let grab = |k: &str| match serde::field(q, k) {
                            serde::Value::U64(n) => *n,
                            _ => 0,
                        };
                        ingest_latency = LatencyQuantiles {
                            p50: grab("p50"),
                            p95: grab("p95"),
                            p99: grab("p99"),
                        };
                    }
                }
            }
        }
    }

    let bench = ServiceBench {
        mode: flags.mode.clone(),
        sustained_pps: ingested as f64 / report.elapsed.as_secs_f64().max(1e-9),
        sent_pkts: report.sent_pkts,
        ingested_pkts: ingested,
        sent_datagrams: report.sent_datagrams,
        acked_datagrams: report.acks,
        ingest_latency_us: ingest_latency,
        ack_rtt_us: LatencyQuantiles::of(&report.ack_rtt),
        plan_serve_latency_us: LatencyQuantiles::of(&report.plan_latency),
        plan_fetches: report.plan_fetches,
        plan_cached: report.plan_cached,
        dedup_new: dedup.0,
        dedup_duplicate: dedup.1,
        dedup_late: dedup.2,
        decision_divergence: divergence,
    };
    if let Some(path) = bench.write() {
        eprintln!("loadgen: wrote {}", path.display());
    }
    print!("{}", bench.to_json());

    if let Some(p) = proxy {
        eprintln!(
            "loadgen: chaos proxy saw {} uplinks, dropped {}",
            p.uplink_seen(),
            p.uplink_dropped()
        );
        p.shutdown();
    }
    if divergence > 0 {
        eprintln!("loadgen: DEDUP DIVERGENCE: {divergence} decisions differ from replay");
        std::process::exit(3);
    }
}
