//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored `serde::Value` model to JSON text and parses
//! JSON text back, exposing the `to_string`/`to_vec`/`from_str`/
//! `from_slice` entry points the workspace uses.

use serde::{Deserialize, Serialize, Value};

/// Parse or data-model error, matching the `std::error::Error` surface
/// call sites need (e.g. conversion into `io::Error`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` on f64 is shortest-roundtrip in Rust, and prints
                // integral values without a fraction ("2"), which the
                // parser reads back as U64 — the float Deserialize impls
                // accept that, so roundtrips stay lossless.
                out.push_str(&format!("{x}"));
            } else {
                // JSON has no Inf/NaN; real serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, fv);
            }
            out.push('}');
        }
    }
}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected '{kw}' at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte '{}' at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are unused by this workspace;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }
}

/// Parse a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Parse JSON bytes into a `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::new("input is not UTF-8"))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(
            to_string("hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX - 3;
        let s = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn float_roundtrips_including_integral() {
        for x in [2.0f64, 916.9, -0.1, 1.5e300, 0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1, 2 ,3]").unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("9").unwrap(), Some(9));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("garbage-json").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("[1,").is_err());
        assert!(from_str::<u64>("\"unterminated").is_err());
        assert!(from_str::<u64>("12 34").is_err());
    }

    #[test]
    fn unknown_fields_ignored_missing_fields_null() {
        use serde::{field, Deserialize as _, Value};
        let v: Value = from_str("{\"a\": 1, \"zzz\": {\"deep\": [true]}}").unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(u64::from_value(field(obj, "a")).unwrap(), 1);
        assert!(field(obj, "missing").is_null());
    }
}
