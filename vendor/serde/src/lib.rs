//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate provides the serialization surface the workspace uses. It is
//! deliberately much simpler than real serde: [`Serialize`] converts a
//! value into a JSON-like [`Value`] tree and [`Deserialize`] reads one
//! back. The derive macros (re-exported from the vendored
//! `serde_derive`) generate those two conversions with serde's
//! external enum tagging, so JSON produced here matches what real
//! serde_json would emit for the same types (modulo `None` fields,
//! which are always omitted — the behaviour the workspace opts into
//! via `skip_serializing_if` upstream).

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree. Integers keep 64-bit precision (a plain
/// `f64` model would corrupt `u64` timestamps); object fields keep
/// insertion order so serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// The sentinel returned for absent object fields.
pub static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Look up an object field by name; missing fields read as null (how
/// `Option` fields deserialize to `None`).
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> DeError {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Convert a value into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    ref other => return Err(DeError::msg(format!(
                        "expected {}, got {:?}", stringify!($t), other
                    ))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => f as i64,
                    ref other => return Err(DeError::msg(format!(
                        "expected {}, got {:?}", stringify!($t), other
                    ))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    ref other => Err(DeError::msg(format!(
                        "expected {}, got {:?}", stringify!($t), other
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Supports `&'static str` fields in derived types (Table 1/2 rows).
/// Leaks the string — fine for the static config data it exists for.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::msg(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError::msg(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::msg(format!("expected tuple array, got {v:?}")))?;
                if items.len() != $len {
                    return Err(DeError::msg(format!(
                        "expected tuple of {}, got {} elements", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) => 1;
    (A: 0, B: 1) => 2;
    (A: 0, B: 1, C: 2) => 3;
    (A: 0, B: 1, C: 2, D: 3) => 4;
}

impl<K: Serialize + fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys by rendered name so serialization is deterministic.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + Hash + std::str::FromStr,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::msg(format!("expected object map, got {v:?}")))?;
        obj.iter()
            .map(|(k, v)| {
                let key = k
                    .parse::<K>()
                    .map_err(|_| DeError::msg(format!("unparseable map key {k:?}")))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

/// Mirrors real serde's `{secs, nanos}` encoding for `Duration`.
impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::msg(format!("expected duration object, got {v:?}")))?;
        let secs = u64::from_value(field(obj, "secs"))?;
        let nanos = u32::from_value(field(obj, "nanos"))?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn u64_full_precision() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v), Ok(u64::MAX));
    }

    #[test]
    fn option_null_and_missing() {
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Value::U64(3)), Ok(Some(3)));
        let obj = vec![("a".to_string(), Value::U64(1))];
        assert!(field(&obj, "missing").is_null());
    }

    #[test]
    fn tuples_and_vecs() {
        let v = vec![(1usize, 2usize), (3, 4)].to_value();
        let back: Vec<(usize, usize)> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn duration_matches_serde_shape() {
        let d = Duration::new(4, 620_000_000);
        let v = d.to_value();
        let obj = v.as_object().unwrap();
        assert_eq!(u64::from_value(field(obj, "secs")), Ok(4));
        assert_eq!(Duration::from_value(&v), Ok(d));
    }

    #[test]
    fn range_checks_enforced() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
    }
}
