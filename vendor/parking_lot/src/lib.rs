//! Offline stand-in for `parking_lot`.
//!
//! Provides `Mutex` with parking_lot's signature difference from std:
//! `lock()` returns the guard directly (no poisoning Result). Backed
//! by `std::sync::Mutex`; a panic while holding the lock does not
//! poison it for later users.

use std::sync::Mutex as StdMutex;
pub use std::sync::MutexGuard;

pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn basic_locking() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn not_poisoned_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
