//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! implemented directly on `proc_macro::TokenStream` (the build
//! environment has no syn/quote). Supports the shapes this workspace
//! uses: non-generic named structs, tuple structs, unit structs, and
//! enums with unit / newtype / tuple / struct variants, with serde's
//! external enum tagging.
//!
//! Field attributes: `#[serde(default)]` is honored — a missing (or
//! explicit-null) field deserializes via `Default::default()`, which
//! is what keeps old JSONL streams readable after an additive schema
//! change. Other `#[serde(...)]` attributes are accepted and ignored —
//! `Option::None` fields are always omitted from objects, which
//! subsumes `skip_serializing_if = "Option::is_none"`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier and whether `#[serde(default)]`
/// was present.
#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip attributes (`#[...]`, including expanded doc comments) at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Consume attributes at `i`, reporting whether any of them is a
/// `#[serde(...)]` attribute whose argument list contains the bare
/// ident `default`.
fn scan_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis {
                        let mut prev_was_eq = false;
                        for t in args.stream() {
                            match &t {
                                TokenTree::Ident(a)
                                    if a.to_string() == "default" && !prev_was_eq =>
                                {
                                    default = true;
                                }
                                _ => {}
                            }
                            prev_was_eq = matches!(&t, TokenTree::Punct(p) if p.as_char() == '=');
                        }
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, default)
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Fields of a `{ ... }` body (types are irrelevant: generated code
/// lets inference pick the `Deserialize` impl per field).
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (after_attrs, default) = scan_attrs(&tokens, i);
        i = skip_vis(&tokens, after_attrs);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected ':' after field, got {other}"),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        names.push(Field { name, default });
    }
    names
}

/// Field count of a `( ... )` body.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut saw_any = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    // Tolerate a trailing comma.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' && saw_any {
            count -= 1;
        }
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Optional explicit discriminant: consume to the comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic types are not supported (type {name})");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde stub derive: unsupported struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_variants(g),
                other => panic!("serde stub derive: unsupported enum body {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde stub derive: cannot derive for `{other}` items"),
    }
}

/// Statements that build `__fields` from named bindings/accessors.
fn push_named(out: &mut String, fields: &[Field], accessor: impl Fn(&str) -> String) {
    out.push_str(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        let f = &f.name;
        out.push_str(&format!(
            "{{ let __fv = ::serde::Serialize::to_value(&{acc}); \
             if !__fv.is_null() {{ __fields.push((\"{f}\".to_string(), __fv)); }} }}\n",
            acc = accessor(f),
        ));
    }
}

/// Expressions that rebuild named fields from `__obj`. Fields marked
/// `#[serde(default)]` fall back to `Default::default()` when absent
/// (or explicitly null), so additive schema changes keep old streams
/// readable.
fn read_named(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            let name = &f.name;
            if f.default {
                format!(
                    "{name}: {{ let __fv = ::serde::field(__obj, \"{name}\"); \
                     if __fv.is_null() {{ ::std::default::Default::default() }} \
                     else {{ ::serde::Deserialize::from_value(__fv)? }} }},\n"
                )
            } else {
                format!(
                    "{name}: ::serde::Deserialize::from_value(::serde::field(__obj, \"{name}\"))?,\n"
                )
            }
        })
        .collect()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut body = String::new();
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    match &item {
        Item::Struct { fields, .. } => match fields {
            Fields::Named(fs) => {
                push_named(&mut body, fs, |f| format!("self.{f}"));
                body.push_str("::serde::Value::Object(__fields)\n");
            }
            Fields::Tuple(1) => {
                body.push_str("::serde::Serialize::to_value(&self.0)\n");
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                body.push_str(&format!(
                    "::serde::Value::Array(vec![{}])\n",
                    items.join(", ")
                ));
            }
            Fields::Unit => body.push_str("::serde::Value::Null\n"),
        },
        Item::Enum { name, variants } => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => body.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Named(fs) => {
                        let bindings = fs
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inner = String::new();
                        push_named(&mut inner, fs, |f| f.to_string());
                        body.push_str(&format!(
                            "{name}::{vn} {{ {bindings} }} => {{ {inner} \
                             ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Object(__fields))]) }}\n"
                        ));
                    }
                    Fields::Tuple(1) => body.push_str(&format!(
                        "{name}::{vn}(__x0) => ::serde::Value::Object(vec![\
                         (\"{vn}\".to_string(), ::serde::Serialize::to_value(__x0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        body.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                             (\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
    .parse()
    .expect("serde stub derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut body = String::new();
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    match &item {
        Item::Struct { fields, .. } => match fields {
            Fields::Named(fs) => {
                body.push_str(&format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::msg(\"expected object for {name}\"))?;\n"
                ));
                body.push_str(&format!(
                    "::std::result::Result::Ok({name} {{\n{}}})\n",
                    read_named(fs)
                ));
            }
            Fields::Tuple(1) => body.push_str(&format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n"
            )),
            Fields::Tuple(n) => {
                body.push_str(&format!(
                    "let __items = __v.as_array().ok_or_else(|| \
                     ::serde::DeError::msg(\"expected array for {name}\"))?;\n\
                     if __items.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::DeError::msg(\"wrong tuple arity for {name}\")); }}\n"
                ));
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                body.push_str(&format!(
                    "::std::result::Result::Ok({name}({}))\n",
                    items.join(", ")
                ));
            }
            Fields::Unit => {
                body.push_str(&format!("::std::result::Result::Ok({name})\n"));
            }
        },
        Item::Enum { name, variants } => {
            body.push_str("match __v {\n::serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    body.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    ));
                }
            }
            body.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::msg(format!(\
                 \"unknown {name} variant {{__other}}\"))),\n}},\n"
            ));
            body.push_str(
                "::serde::Value::Object(__o) if __o.len() == 1 => {\n\
                 let (__k, __payload) = &__o[0];\nmatch __k.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Named(fs) => body.push_str(&format!(
                        "\"{vn}\" => {{ let __obj = __payload.as_object().ok_or_else(|| \
                         ::serde::DeError::msg(\"expected object for {name}::{vn}\"))?;\n\
                         ::std::result::Result::Ok({name}::{vn} {{\n{}}}) }}\n",
                        read_named(fs)
                    )),
                    Fields::Tuple(1) => body.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        body.push_str(&format!(
                            "\"{vn}\" => {{ let __items = __payload.as_array().ok_or_else(|| \
                             ::serde::DeError::msg(\"expected array for {name}::{vn}\"))?;\n\
                             if __items.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::msg(\"wrong arity for {name}::{vn}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({})) }}\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::msg(format!(\
                 \"unknown {name} variant {{__other}}\"))),\n}}\n}},\n"
            ));
            body.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::msg(format!(\
                 \"expected {name}, got {{__other:?}}\"))),\n}}\n"
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}}}\n}}\n"
    )
    .parse()
    .expect("serde stub derive: generated Deserialize impl parses")
}
