//! Offline stand-in for `criterion`.
//!
//! A minimal timing harness exposing the API surface the workspace's
//! benches use: `Criterion::bench_function`, `benchmark_group` with
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. It reports mean wall-clock time per
//! iteration to stdout — no statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `routine`, first warming up, then measuring a fixed number
    /// of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

fn run_bench(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // sample_size scales how many iterations we run; the real crate's
    // default is 100 samples, ours maps samples -> iterations directly.
    let iters = sample_size.max(1) as u64;
    let mut b = Bencher {
        iters,
        total: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if iters > 0 {
        b.total / iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {name:<50} {per_iter:>12.3?}/iter ({iters} iters)");
}

/// Benchmark group with shared configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(5), &(), |b, _| {
            b.iter(|| black_box(5 * 5))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
