//! Offline stand-in for `bytes`.
//!
//! Provides the subset the workspace's frame codec uses: `BytesMut`
//! with the little-endian `BufMut` putters, and `Buf` getters on
//! `&[u8]` (which consume from the front by re-slicing, matching the
//! real crate's impl for byte slices).

/// Growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write-side buffer operations.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side buffer operations. Getters panic when the buffer is too
/// short, matching the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().unwrap());
        *self = &self[2..];
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn write_then_read_back() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u16_le(0x1234);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 10);

        let v = b.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert!(r.has_remaining());
        assert_eq!(r, &[2, 3]);
    }

    #[test]
    fn deref_to_slice() {
        let mut b = BytesMut::new();
        b.put_slice(b"abc");
        let s: &[u8] = &b;
        assert_eq!(s, b"abc");
    }
}
