//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the rand 0.8 API the workspace uses:
//! [`Rng::gen_range`] over integer/float ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]. The generator
//! is xoshiro256** seeded through SplitMix64 — deterministic across
//! platforms and plenty for simulation workloads (it is NOT the
//! ChaCha-based StdRng of the real crate, so absolute sampled values
//! differ from upstream; all workspace tests assert properties or
//! self-consistency, never upstream sequences).

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Primitives `gen_range` can sample. The blanket [`SampleRange`]
/// impls below are over this trait (mirroring the real crate's shape)
/// so `Range<{float}>: SampleRange<T>` unifies `T` during inference.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `lo..hi` (exclusive) or `lo..=hi` (inclusive).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = lo as f64 + unit * (hi as f64 - lo as f64);
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && v as $t >= hi { lo } else { v as $t }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range arguments accepted by `gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (API stand-in for the real
    /// StdRng; different output sequence, same determinism guarantees).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "{hits}");
    }
}
