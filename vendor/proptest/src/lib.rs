//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro over `arg in strategy` bindings, integer/float
//! range strategies, `any::<T>()` for primitives, and
//! `collection::vec`. Each property runs a fixed number of
//! deterministically seeded cases (no shrinking) — failures report the
//! offending case via the `prop_assert*` message.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Cases per property. The real crate defaults to 256 with shrinking;
/// without shrinking, a smaller deterministic sweep keeps test time
/// proportionate.
pub const CASES: u32 = 64;

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A source of random values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values, as in the real crate's `prop_map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// Tuples of strategies are a strategy over tuples, mirroring the real
// crate (used as `(s1, s2, ...).prop_map(...)`).
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Full-domain strategy for a primitive, as returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Values `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                // Truncation keeps full coverage of the narrower domain.
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing vectors of `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Per-block configuration, as in `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: CASES }
    }
}

/// Run a property body over [`CASES`] deterministically seeded cases.
/// Used by the `proptest!` macro expansion; panics with the case
/// number and message on the first failure.
pub fn run_property<F>(name: &str, case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    run_property_with(CASES, name, case)
}

/// [`run_property`] with an explicit case count.
pub fn run_property_with<F>(cases: u32, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Seed from the property name so distinct properties explore
    // distinct sequences, reproducibly.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    for case_no in 0..cases {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (case_no as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = case(&mut rng) {
            panic!("property '{name}' failed at case {case_no}: {}", e.message);
        }
    }
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

/// The `proptest!` block: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` looping over deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_property_with(__cfg.cases, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&$strat, __rng);)*
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::run_property(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&$strat, __rng);)*
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn ranges_in_bounds(x in 10u32..20, y in 7u32..=12, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((7..=12).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        fn vec_lengths(v in collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(v.len() < 16);
        }

        fn any_bool_both_values_reachable(b in any::<bool>()) {
            // Either value is fine; this checks the macro plumbing.
            prop_assert!(b == (b as u8 == 1));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        crate::run_property("det", |rng| {
            first.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_property("det", |rng| {
            second.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case() {
        crate::run_property("always_fails", |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
