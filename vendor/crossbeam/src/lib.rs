//! Offline stand-in for `crossbeam`.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, bounded,
//! Sender, Receiver, TryRecvError, TrySendError}` (plus
//! `Receiver::recv_timeout`), all of which `std::sync::mpsc` provides
//! with compatible semantics for single-consumer use. Note the std
//! `Sender`/`SyncSender` are what crossbeam's is: cloneable; the std
//! `Receiver` is not cloneable, which this workspace never relies on.

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError, TrySendError,
    };

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// Create a bounded MPSC channel holding at most `cap` messages;
    /// `send` blocks (backpressure) and `try_send` fails once full.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn roundtrip_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 5);
        assert!(matches!(rx.try_recv(), Err(channel::TryRecvError::Empty)));
        drop(tx);
        assert!(matches!(
            rx.try_recv(),
            Err(channel::TryRecvError::Disconnected)
        ));
    }

    #[test]
    fn recv_timeout_elapses() {
        let (_tx, rx) = channel::unbounded::<u32>();
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
    }

    #[test]
    fn bounded_try_send_fills_up() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        assert_eq!(rx.try_recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv().unwrap(), 3);
        assert!(matches!(
            rx.try_recv(),
            Err(channel::TryRecvError::Disconnected)
        ));
    }
}
