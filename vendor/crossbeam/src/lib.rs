//! Offline stand-in for `crossbeam`.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, Sender,
//! Receiver, TryRecvError}` (plus `Receiver::recv_timeout`), all of
//! which `std::sync::mpsc` provides with compatible semantics for
//! single-consumer use. Note the std `Sender` is what crossbeam's is:
//! cloneable; the std `Receiver` is not cloneable, which this
//! workspace never relies on.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn roundtrip_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 5);
        assert!(matches!(rx.try_recv(), Err(channel::TryRecvError::Empty)));
        drop(tx);
        assert!(matches!(
            rx.try_recv(),
            Err(channel::TryRecvError::Disconnected)
        ));
    }

    #[test]
    fn recv_timeout_elapses() {
        let (_tx, rx) = channel::unbounded::<u32>();
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
    }
}
