//! Capacity probing tool: how many concurrent users can a deployment
//! actually receive?
//!
//! Sweeps gateway counts for a given spectrum and prints standard
//! LoRaWAN vs AlphaWAN capacity, plus the theoretical bound — a
//! miniature Fig 12a you can point at your own parameters.
//!
//! ```text
//! cargo run --release --example capacity_probe [spectrum_mhz] [max_gws]
//! ```

use alphawan_system::alphawan::planner::IntraNetworkPlanner;
use alphawan_system::gateway::config::GatewayConfig;
use alphawan_system::gateway::profile::GatewayProfile;
use alphawan_system::gateway::radio::Gateway;
use alphawan_system::lora_phy::channel::{oracle_capacity, Channel, ChannelGrid};
use alphawan_system::lora_phy::pathloss::PathLossModel;
use alphawan_system::lora_phy::types::DataRate;
use alphawan_system::sim::topology::Topology;
use alphawan_system::sim::traffic::end_aligned_burst;
use alphawan_system::sim::world::SimWorld;

fn main() {
    let mut args = std::env::args().skip(1);
    let spectrum_mhz: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4.8);
    let max_gws: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(15);
    let spectrum_hz = (spectrum_mhz * 1e6) as u32;
    let channels = ChannelGrid::standard(916_800_000, spectrum_hz).channels();
    let users = oracle_capacity(spectrum_hz);
    println!(
        "probing {spectrum_mhz} MHz ({} channels, oracle {} users), 1..{max_gws} gateways",
        channels.len(),
        users
    );
    println!(
        "{:>9}  {:>8}  {:>8}  {:>6}",
        "gateways", "standard", "alphawan", "oracle"
    );

    for gws in (1..=max_gws).step_by(2) {
        let model = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let mut topo = Topology::new((500.0, 400.0), users, gws, model, 3);
        for row in &mut topo.loss_db {
            for l in row.iter_mut() {
                *l = l.max(108.0);
            }
        }
        let std_cap = probe_standard(&topo, &channels, users, gws);
        let alpha_cap = probe_alphawan(&topo, &channels, users, gws);
        println!("{gws:>9}  {std_cap:>8}  {alpha_cap:>8}  {users:>6}");
    }
}

fn probe_standard(topo: &Topology, channels: &[Channel], users: usize, gws: usize) -> usize {
    let profile = GatewayProfile::rak7268cv2();
    let n_plans = (channels.len() / 8).max(1);
    let gateways: Vec<Gateway> = (0..gws)
        .map(|j| {
            let p = j % n_plans;
            Gateway::new(
                j,
                1,
                profile,
                GatewayConfig::new(profile, channels[p * 8..(p + 1) * 8].to_vec()).unwrap(),
            )
        })
        .collect();
    let mut world = SimWorld::new(topo.clone(), vec![1; users], gateways);
    let assigns: Vec<_> = (0..users)
        .map(|i| {
            (
                i,
                channels[i % channels.len()],
                DataRate::from_index(i / channels.len() % 6).unwrap(),
            )
        })
        .collect();
    let plans = end_aligned_burst(&assigns, 23, 2_000_000, 1_000);
    world.run(&plans).iter().filter(|r| r.delivered).count()
}

fn probe_alphawan(topo: &Topology, channels: &[Channel], users: usize, gws: usize) -> usize {
    let profile = GatewayProfile::rak7268cv2();
    let mut planner = IntraNetworkPlanner::new(channels.to_vec(), gws);
    planner.ga.population = 24;
    planner.ga.generations = 60;
    let outcome = planner.plan(topo, vec![1.0; users]);
    let gateways: Vec<Gateway> = outcome
        .gateway_channels
        .iter()
        .enumerate()
        .map(|(j, chans)| {
            Gateway::new(
                j,
                1,
                profile,
                GatewayConfig::new(profile, chans.clone()).unwrap(),
            )
        })
        .collect();
    let mut world = SimWorld::new(topo.clone(), vec![1; users], gateways);
    let assigns: Vec<_> = outcome
        .node_settings
        .iter()
        .enumerate()
        .map(|(i, &(ch, dr, _))| (i, ch, dr))
        .collect();
    let plans = end_aligned_burst(&assigns, 23, 2_000_000, 1_000);
    world.run(&plans).iter().filter(|r| r.delivered).count()
}
