//! Multi-operator coexistence through the AlphaWAN Master — over real
//! TCP, exactly the paper's §4.3.2 workflow:
//!
//! 1. a Master node starts for the region (1.6 MHz, up to 3 operators);
//! 2. each operator registers over TCP and receives a
//!    frequency-misaligned channel plan;
//! 3. operators plan their own networks on their allocation;
//! 4. a concurrent cross-network burst shows the isolation: no foreign
//!    packet ever occupies a decoder.
//!
//! ```text
//! cargo run --release --example coexistence
//! ```

use alphawan_system::alphawan::master::server::MasterServer;
use alphawan_system::alphawan::master::RegionSpec;
use alphawan_system::alphawan::planner::IntraNetworkPlanner;
use alphawan_system::alphawan::MasterClient;
use alphawan_system::gateway::config::GatewayConfig;
use alphawan_system::gateway::profile::GatewayProfile;
use alphawan_system::gateway::radio::Gateway;
use alphawan_system::lora_phy::pathloss::PathLossModel;
use alphawan_system::lora_phy::types::DataRate;
use alphawan_system::sim::topology::Topology;
use alphawan_system::sim::traffic::end_aligned_burst;
use alphawan_system::sim::world::SimWorld;

const OPERATORS: usize = 3;
const NODES_PER_OP: usize = 24;
const GWS_PER_OP: usize = 3;

fn main() {
    // 1. The Master comes up for this region.
    let server = MasterServer::start(RegionSpec {
        band_low_hz: 916_800_000,
        spectrum_hz: 1_600_000,
        expected_networks: OPERATORS,
    })
    .expect("master starts");
    println!("AlphaWAN Master listening on {}", server.addr());

    // 2. Operators register over TCP and fetch their plans.
    let mut plans = Vec::new();
    for op in 0..OPERATORS {
        let mut client = MasterClient::connect(server.addr()).expect("connect");
        let id = client
            .register(&format!("operator-{op}"))
            .expect("register");
        let plan = client.request_channels(id).expect("assignment");
        println!(
            "operator-{op} (id {id}): {} channels, first at {:.4} MHz",
            plan.len(),
            plan[0].center_hz as f64 / 1e6
        );
        client.bye().ok();
        plans.push(plan);
    }

    // 3. One shared urban area; each operator plans its own deployment.
    let total_nodes = OPERATORS * NODES_PER_OP;
    let total_gws = OPERATORS * GWS_PER_OP;
    let model = PathLossModel {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    };
    let topo = Topology::new((600.0, 450.0), total_nodes, total_gws, model, 11);

    let profile = GatewayProfile::rak7268cv2();
    let mut gateways = Vec::new();
    let mut node_network = vec![0u32; total_nodes];
    let mut assigns: Vec<(usize, _, DataRate)> = Vec::new();
    for (op, cp_plan) in plans.iter().enumerate() {
        let node_ids: Vec<usize> = (op * NODES_PER_OP..(op + 1) * NODES_PER_OP).collect();
        let gw_ids: Vec<usize> = (op * GWS_PER_OP..(op + 1) * GWS_PER_OP).collect();
        // Sub-topology for this operator's own planning.
        let sub = Topology {
            area_m: topo.area_m,
            nodes: node_ids.iter().map(|&i| topo.nodes[i]).collect(),
            gateways: gw_ids.iter().map(|&j| topo.gateways[j]).collect(),
            model: topo.model,
            loss_db: node_ids
                .iter()
                .map(|&i| gw_ids.iter().map(|&j| topo.loss_db[i][j]).collect())
                .collect(),
        };
        let mut planner = IntraNetworkPlanner::new(cp_plan.clone(), GWS_PER_OP);
        planner.ga.generations = 40;
        let outcome = planner.plan(&sub, vec![1.0; NODES_PER_OP]);
        for (slot, &g) in gw_ids.iter().enumerate() {
            gateways.push(Gateway::new(
                g,
                op as u32 + 1,
                profile,
                GatewayConfig::new(profile, outcome.gateway_channels[slot].clone()).unwrap(),
            ));
        }
        for (&n, &(ch, dr, _)) in node_ids.iter().zip(&outcome.node_settings) {
            node_network[n] = op as u32 + 1;
            assigns.push((n, ch, dr));
        }
    }

    // 4. Everyone transmits concurrently.
    let mut world = SimWorld::new(topo, node_network, gateways);
    let plans_tx = end_aligned_burst(&assigns, 23, 2_000_000, 1_000);
    let recs = world.run(&plans_tx);
    for op in 1..=OPERATORS as u32 {
        let rx = recs
            .iter()
            .filter(|r| r.network_id == op && r.delivered)
            .count();
        println!(
            "operator-{}: {rx}/{NODES_PER_OP} concurrent packets received",
            op - 1
        );
    }
    let foreign: u64 = world
        .gateways
        .iter()
        .map(|g| g.stats().foreign_filtered)
        .sum();
    println!(
        "foreign packets that consumed a decoder anywhere: {foreign} \
         (frequency misalignment keeps them out of the pipeline)"
    );
    server.shutdown();
}
