//! Fault-injection walkthrough: run the same deployment healthy and
//! under a JSON fault plan, and show the infrastructure-loss
//! attribution the chaos layer adds.
//!
//! ```text
//! cargo run --release --example chaos_demo [plan.json]
//! ```
//!
//! With no argument a built-in plan (two overlapping gateway crashes +
//! a decoder lock-up) is used; pass a path to replay your own plan.
//!
//! Set `ALPHAWAN_OBS_OUT=<dir>` to stream the faulted run's full
//! [`ObsEvent`] trace to `<dir>/chaos_demo.events.jsonl` (plan
//! announcement first), ready for `tracectl`:
//!
//! ```text
//! ALPHAWAN_OBS_OUT=out cargo run --release --example chaos_demo
//! cargo run --release -p bench --bin tracectl -- out/chaos_demo.events.jsonl --check
//! ```

use alphawan_system::chaos::{FaultPlan, FaultSchedule};
use alphawan_system::gateway::config::GatewayConfig;
use alphawan_system::gateway::profile::GatewayProfile;
use alphawan_system::gateway::radio::Gateway;
use alphawan_system::lora_phy::channel::ChannelGrid;
use alphawan_system::lora_phy::pathloss::PathLossModel;
use alphawan_system::lora_phy::types::DataRate;
use alphawan_system::sim::metrics::RunMetrics;
use alphawan_system::sim::topology::Topology;
use alphawan_system::sim::traffic::duty_cycled;
use alphawan_system::sim::world::SimWorld;

const DEFAULT_PLAN: &str = r#"{
  "seed": 802309,
  "faults": [
    { "GatewayCrash":  { "gateway": 0, "start_us": 3000000, "end_us": 9000000 } },
    { "GatewayCrash":  { "gateway": 1, "start_us": 4000000, "end_us": 8000000 } },
    { "DecoderLockup": { "gateway": 1, "decoders": 4,
                         "start_us": 10000000, "end_us": 15000000 } }
  ]
}"#;

const NODES: usize = 24;
const RUN_US: u64 = 20_000_000;

fn build_world() -> SimWorld {
    let model = PathLossModel {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    };
    let mut topo = Topology::new((500.0, 400.0), NODES, 2, model, 7);
    for row in &mut topo.loss_db {
        for l in row.iter_mut() {
            *l = l.max(108.0);
        }
    }
    let profile = GatewayProfile::rak7268cv2();
    let channels = ChannelGrid::standard(916_800_000, 1_600_000).channels();
    let gateways = (0..2)
        .map(|j| {
            Gateway::new(
                j,
                1,
                profile,
                GatewayConfig::new(profile, channels.clone()).unwrap(),
            )
        })
        .collect();
    SimWorld::new(topo, vec![1; NODES], gateways)
}

fn report(label: &str, m: &RunMetrics) {
    println!(
        "{label:>8}: sent {:4}  delivered {:4}  PDR {:>5.1}%  \
         contention {:3}  infrastructure {:3}",
        m.sent,
        m.delivered,
        100.0 * m.delivered as f64 / m.sent.max(1) as f64,
        m.losses.channel_intra
            + m.losses.channel_inter
            + m.losses.decoder_intra
            + m.losses.decoder_inter,
        m.losses.infrastructure,
    );
}

fn main() {
    let json = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        },
        None => DEFAULT_PLAN.to_string(),
    };
    let plan: FaultPlan = match FaultPlan::from_json(&json) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("invalid fault plan: {e}");
            std::process::exit(2);
        }
    };
    let schedule = match FaultSchedule::compile(&plan) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid fault plan: {e}");
            std::process::exit(2);
        }
    };

    let channels = ChannelGrid::standard(916_800_000, 1_600_000).channels();
    let assigns: Vec<_> = (0..NODES)
        .map(|i| (i, channels[i % 8], DataRate::from_index(3 + i % 3).unwrap()))
        .collect();
    let traffic = duty_cycled(&assigns, 23, 0.05, RUN_US, 11);

    println!(
        "{NODES} nodes, 2 gateways, {}s, {} fault(s), seed {}",
        RUN_US / 1_000_000,
        plan.faults.len(),
        plan.seed
    );

    let healthy = RunMetrics::from_records(&build_world().run(&traffic), None);
    report("healthy", &healthy);

    // The faulted run is the interesting one: stream its packet
    // lifecycles (and the fault-plan announcement) to JSONL when
    // ALPHAWAN_OBS_OUT is set, for offline `tracectl` analysis.
    let mut faulted_world = build_world();
    let obs_path = std::env::var_os("ALPHAWAN_OBS_OUT").map(|dir| {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("ALPHAWAN_OBS_OUT dir creatable");
        let path = dir.join("chaos_demo.events.jsonl");
        let mut sink = alphawan_system::obs::JsonlSink::create(&path).expect("events file");
        plan.observe(&mut sink);
        faulted_world.set_obs_sink(Box::new(sink));
        path
    });
    let faulted =
        RunMetrics::from_records(&faulted_world.run_with_faults(&traffic, &schedule), None);
    drop(faulted_world); // flush the JSONL stream
    report("faulted", &faulted);
    if let Some(path) = obs_path {
        println!("events: {}", path.display());
    }

    // Replay: same plan, fresh world — byte-identical metrics.
    let replay =
        RunMetrics::from_records(&build_world().run_with_faults(&traffic, &schedule), None);
    let identical = faulted == replay;
    println!(
        "replay: {}",
        if identical {
            "byte-identical metrics"
        } else {
            "MISMATCH (bug!)"
        }
    );
}
