//! Quickstart: see the decoder contention problem, then fix it.
//!
//! Builds a 48-node LoRaWAN in 1.6 MHz of spectrum with five COTS
//! gateways, demonstrates that standard (homogeneous) operation caps at
//! 16 concurrent packets regardless of gateway count, then runs the
//! AlphaWAN channel planner and shows the same hardware carrying the
//! full 48-user theoretical load.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use alphawan_system::alphawan::planner::IntraNetworkPlanner;
use alphawan_system::gateway::config::GatewayConfig;
use alphawan_system::gateway::profile::GatewayProfile;
use alphawan_system::gateway::radio::Gateway;
use alphawan_system::lora_phy::channel::{oracle_capacity, ChannelGrid};
use alphawan_system::lora_phy::pathloss::PathLossModel;
use alphawan_system::sim::topology::Topology;
use alphawan_system::sim::traffic::end_aligned_burst;
use alphawan_system::sim::world::SimWorld;

fn main() {
    let spectrum_hz = 1_600_000u32;
    let channels = ChannelGrid::standard(916_800_000, spectrum_hz).channels();
    let users = 48usize;
    let gws = 5usize;
    println!(
        "spectrum: {:.1} MHz ({} channels); theoretical capacity: {} concurrent users",
        spectrum_hz as f64 / 1e6,
        channels.len(),
        oracle_capacity(spectrum_hz)
    );

    // A compact urban deployment; links comfortably close everywhere.
    let model = PathLossModel {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    };
    let mut topo = Topology::new((600.0, 450.0), users, gws, model, 7);
    // Urban clutter floor: bounds received-power spreads to realistic
    // levels (see DESIGN.md calibration notes).
    for row in &mut topo.loss_db {
        for l in row.iter_mut() {
            *l = l.max(108.0);
        }
    }
    let profile = GatewayProfile::rak7268cv2();

    // --- Standard LoRaWAN: every gateway on the same channel plan.
    let standard_gateways: Vec<Gateway> = (0..gws)
        .map(|j| {
            Gateway::new(
                j,
                1,
                profile,
                GatewayConfig::new(profile, channels.clone()).unwrap(),
            )
        })
        .collect();
    let mut world = SimWorld::new(topo.clone(), vec![1; users], standard_gateways);
    let assigns: Vec<_> = (0..users)
        .map(|i| {
            (
                i,
                channels[i % channels.len()],
                alphawan_system::lora_phy::types::DataRate::from_index(i / channels.len() % 6)
                    .unwrap(),
            )
        })
        .collect();
    let plans = end_aligned_burst(&assigns, 23, 2_000_000, 1_000);
    let recs = world.run(&plans);
    let delivered = recs.iter().filter(|r| r.delivered).count();
    println!(
        "standard LoRaWAN, {gws} homogeneous gateways: {delivered}/{users} received \
         (the decoder contention problem: one SX1302 pool's worth)"
    );

    // --- AlphaWAN: jointly plan gateway channels and node settings.
    let mut planner = IntraNetworkPlanner::new(channels.clone(), gws);
    planner.ga.generations = 60;
    let outcome = planner.plan(&topo, vec![1.0; users]);
    println!(
        "AlphaWAN channel plan computed (objective {:.1}); gateway channel counts: {:?}",
        outcome.objective,
        outcome
            .gateway_channels
            .iter()
            .map(|c| c.len())
            .collect::<Vec<_>>()
    );
    let planned_gateways: Vec<Gateway> = outcome
        .gateway_channels
        .iter()
        .enumerate()
        .map(|(j, chans)| {
            Gateway::new(
                j,
                1,
                profile,
                GatewayConfig::new(profile, chans.clone()).unwrap(),
            )
        })
        .collect();
    let mut world = SimWorld::new(topo, vec![1; users], planned_gateways);
    let assigns: Vec<_> = outcome
        .node_settings
        .iter()
        .enumerate()
        .map(|(i, &(ch, dr, _))| (i, ch, dr))
        .collect();
    let plans = end_aligned_burst(&assigns, 23, 2_000_000, 1_000);
    let recs = world.run(&plans);
    let delivered = recs.iter().filter(|r| r.delivered).count();
    println!("AlphaWAN, same 5 gateways: {delivered}/{users} received");
}
