//! Packet-lifecycle tracing on the paper's Fig. 2b scenario: two
//! networks share one sub-band, one gateway each, and a concurrent
//! burst saturates the 16-decoder pools. Every event of every packet
//! carries a trace id, so the [`obs::TraceAnalyzer`] can reconstruct
//! who was *holding* a decoder whenever a pool-full drop happened —
//! naming the foreign blockers behind each inter-network loss instead
//! of just counting `DecoderContentionInter` in aggregate.
//!
//! ```text
//! cargo run --release --example trace_demo
//! ```

use alphawan_system::gateway::config::GatewayConfig;
use alphawan_system::gateway::profile::GatewayProfile;
use alphawan_system::gateway::radio::Gateway;
use alphawan_system::lora_phy::pathloss::PathLossModel;
use alphawan_system::lora_phy::region::StandardChannelPlan;
use alphawan_system::lora_phy::types::DataRate;
use alphawan_system::obs::{SharedSink, TraceAnalyzer, VecSink};
use alphawan_system::sim::topology::Topology;
use alphawan_system::sim::traffic::{concurrent_burst, BurstScheme};
use alphawan_system::sim::world::SimWorld;

const NODES: usize = 24;

fn main() {
    // Two operators, interleaved nodes, one gateway each — both
    // gateways listen on the same 8 channels (uncoordinated
    // coexistence, the situation AlphaWAN's Master exists to prevent).
    let model = PathLossModel {
        shadowing_sigma_db: 0.0,
        ..Default::default()
    };
    let topo = Topology::new((100.0, 100.0), NODES, 2, model, 1);
    let profile = GatewayProfile::rak7268cv2();
    let plan = StandardChannelPlan::us915_subband(0);
    let gateways = (0..2)
        .map(|j| {
            Gateway::new(
                j,
                j as u32 + 1,
                profile,
                GatewayConfig::new(profile, plan.channels.clone()).unwrap(),
            )
        })
        .collect();
    let node_network: Vec<u32> = (0..NODES).map(|i| (i % 2) as u32 + 1).collect();
    let mut world = SimWorld::new(topo, node_network, gateways);

    // Capture the full event stream in memory.
    let sink = SharedSink::new(VecSink::new());
    world.set_obs_sink(Box::new(sink.handle()));

    // An end-aligned concurrent burst on orthogonal settings: decoder
    // pools are the only bottleneck.
    let assigns: Vec<_> = (0..NODES)
        .map(|i| {
            (
                i,
                plan.channels[i % 8],
                DataRate::from_index(i / 8 % 6).unwrap(),
            )
        })
        .collect();
    let records = world.run(&concurrent_burst(
        &assigns,
        10,
        1_000_000,
        2_000,
        BurstScheme::FinalPreambleOrdered,
    ));

    for net in 1..=2u32 {
        let (sent, ok) = records
            .iter()
            .filter(|r| r.network_id == net)
            .fold((0, 0), |(s, d), r| (s + 1, d + r.delivered as usize));
        println!("network {net}: {ok}/{sent} delivered");
    }

    // Reconstruct per-packet timelines from the recorded events.
    let events = sink.with(|s| s.events().to_vec());
    let mut analyzer = TraceAnalyzer::new();
    analyzer.observe_all(&events);
    let report = analyzer.into_report();
    assert!(
        report.violations.is_empty(),
        "causality violations: {:?}",
        report.violations
    );

    println!(
        "\n{} events → {} packet timelines, {} pool-full drops",
        report.events_seen,
        report.timelines.len(),
        report.drops.len()
    );

    // Blocker → victim attribution: for each drop of an own-network
    // packet, who was sitting on the decoders?
    println!("\npool-full drops (own-network victims) and their blockers:");
    println!(
        "  {:>9} {:>3} {:>7} {:>7}   blockers (net×count)",
        "t_us", "gw", "victim", "v_net"
    );
    let mut own_net_drops = 0u32;
    let mut with_foreign = 0u32;
    for d in &report.drops {
        let own_victim = d.gw_network.is_some() && d.gw_network == d.victim_network;
        if !own_victim {
            continue;
        }
        own_net_drops += 1;
        let foreign = d.foreign_blockers().count();
        if foreign > 0 {
            with_foreign += 1;
        }
        let mut per_net: Vec<(u32, usize)> = Vec::new();
        for b in &d.blockers {
            let net = b.network.unwrap_or(0);
            match per_net.iter_mut().find(|(n, _)| *n == net) {
                Some((_, c)) => *c += 1,
                None => per_net.push((net, 1)),
            }
        }
        per_net.sort();
        let blockers: Vec<String> = per_net.iter().map(|(n, c)| format!("net{n}×{c}")).collect();
        println!(
            "  {:>9} {:>3} tx{:<5} {:>7}   {}  ({foreign} foreign)",
            d.t_us,
            d.gw,
            d.victim_tx,
            d.victim_network.map_or("?".into(), |n| format!("net{n}")),
            blockers.join(" ")
        );
    }
    assert!(own_net_drops > 0, "scenario produced no own-network drops");
    assert_eq!(
        own_net_drops, with_foreign,
        "every own-network pool-full drop must name at least one foreign blocker"
    );
    println!(
        "\nall {own_net_drops} own-network drops name ≥1 foreign blocker — \
         the losses are coexistence-induced, not self-inflicted"
    );

    // Aggregate contention attribution.
    let c = report.contention();
    println!("\ndecoder occupancy (µs):");
    for g in &c.per_gateway {
        println!(
            "  gw{} (net{}): own {:>9}  foreign {:>9}",
            g.gw,
            g.network.map_or(0, |n| n),
            g.own_decoder_us,
            g.foreign_decoder_us
        );
    }
    println!(
        "foreign decoder-µs an AlphaWAN-style Master would displace: {}",
        c.foreign_decoder_us_total
    );
    println!("\ntop blockers:");
    for b in c.top_blockers.iter().take(5) {
        println!(
            "  tx{:<4} net{}  foreign-held {:>8} µs, blocked {} drops",
            b.tx,
            b.network.map_or(0, |n| n),
            b.foreign_decoder_us,
            b.drops_blocked
        );
    }
}
