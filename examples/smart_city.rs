//! Smart-city scale-up: thousands of duty-cycled meters on one network.
//!
//! Reenacts the paper's §5.2.1 scenario at one scale: 6,000 smart-city
//! devices (meters, parking sensors, air-quality probes) at 1% duty
//! over 15 gateways / 4.8 MHz, comparing the operational baseline (ADR
//! provisioning, uncoordinated transmissions) against AlphaWAN's
//! planned channels + coordinated duty scheduling.
//!
//! ```text
//! cargo run --release --example smart_city
//! ```

use alphawan_system::alphawan::planner::IntraNetworkPlanner;
use alphawan_system::gateway::config::GatewayConfig;
use alphawan_system::gateway::profile::GatewayProfile;
use alphawan_system::gateway::radio::Gateway;
use alphawan_system::lora_mac::duty::DutyCycleGovernor;
use alphawan_system::lora_phy::channel::ChannelGrid;
use alphawan_system::lora_phy::pathloss::PathLossModel;
use alphawan_system::lora_phy::snr::demod_snr_floor_db;
use alphawan_system::lora_phy::types::{DataRate, TxPowerDbm};
use alphawan_system::sim::metrics::RunMetrics;
use alphawan_system::sim::topology::Topology;
use alphawan_system::sim::traffic::{duty_cycled, TxPlan};
use alphawan_system::sim::world::SimWorld;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const USERS: usize = 6_000;
const GWS: usize = 15;
const HORIZON_US: u64 = 30_000_000;

fn main() {
    let channels = ChannelGrid::standard(916_800_000, 4_800_000).channels();
    let model = PathLossModel {
        shadowing_sigma_db: 2.0,
        ..Default::default()
    };
    let mut topo = Topology::new((1_200.0, 900.0), USERS, GWS, model, 42);
    for row in &mut topo.loss_db {
        for l in row.iter_mut() {
            *l = l.max(108.0);
        }
    }
    let profile = GatewayProfile::rak7268cv2();

    // Sanity: the duty governor shows what 1% duty means per device.
    let gov = DutyCycleGovernor::new(0.01);
    println!(
        "a DR5 meter may send at most {:.0} packets/hour under 1% duty",
        gov.max_tx_per_hour(41_216)
    );

    // --- Operational baseline: homogeneous gateways + ADR settings.
    let baseline_gateways: Vec<Gateway> = (0..GWS)
        .map(|j| {
            Gateway::new(
                j,
                1,
                profile,
                GatewayConfig::new(profile, channels[(j % 3) * 8..(j % 3) * 8 + 8].to_vec())
                    .unwrap(),
            )
        })
        .collect();
    let mut world = SimWorld::new(topo.clone(), vec![1; USERS], baseline_gateways);
    let mut rng = StdRng::seed_from_u64(1);
    let assigns: Vec<(usize, _, DataRate)> = (0..USERS)
        .map(|i| {
            let best = (0..GWS)
                .map(|j| world.topo.snr_db(i, j, TxPowerDbm(14.0)))
                .fold(f64::NEG_INFINITY, f64::max);
            let dr = *DataRate::ALL
                .iter()
                .rev()
                .find(|dr| best - 10.0 >= demod_snr_floor_db(dr.spreading_factor()))
                .unwrap_or(&DataRate::DR0);
            (i, channels[rng.gen_range(0..channels.len())], dr)
        })
        .collect();
    let plans = duty_cycled(&assigns, 23, 0.01, HORIZON_US, 5);
    let recs = world.run(&plans);
    let m = RunMetrics::from_records(&recs, None);
    println!(
        "baseline: {} packets sent, PRR {:.1}%, throughput {:.1} kbit/s",
        m.sent,
        m.prr() * 100.0,
        m.throughput_bps() / 1e3
    );

    // --- AlphaWAN: planned channels + coordinated duty schedule.
    let mut planner = IntraNetworkPlanner::new(channels.clone(), GWS);
    planner.ga.population = 16;
    planner.ga.generations = 24;
    let outcome = planner.plan(&topo, vec![1.0; USERS]);
    let planned_gateways: Vec<Gateway> = outcome
        .gateway_channels
        .iter()
        .enumerate()
        .map(|(j, chans)| {
            Gateway::new(
                j,
                1,
                profile,
                GatewayConfig::new(profile, chans.clone()).unwrap(),
            )
        })
        .collect();
    let mut world = SimWorld::new(topo, vec![1; USERS], planned_gateways);
    // Coordinated schedule: stagger each (channel, DR) group's members.
    let mut group_pos: std::collections::HashMap<(u32, usize), u64> = Default::default();
    let mut plans: Vec<TxPlan> = Vec::new();
    for (i, &(ch, dr, _)) in outcome.node_settings.iter().enumerate() {
        let airtime =
            alphawan_system::lora_phy::airtime::lorawan_uplink_airtime(dr.spreading_factor(), 23)
                .total_us();
        let period = airtime * 100;
        let pos = group_pos.entry((ch.center_hz, dr.index())).or_insert(0);
        let phase = (*pos % 100) * (period / 100);
        *pos += 1;
        let mut t = phase;
        while t < HORIZON_US {
            plans.push(TxPlan {
                node: i,
                channel: ch,
                dr,
                start_us: t,
                payload_len: 23,
            });
            t += period;
        }
    }
    plans.sort_by_key(|p| p.start_us);
    let recs = world.run(&plans);
    let m = RunMetrics::from_records(&recs, None);
    println!(
        "alphawan: {} packets sent, PRR {:.1}%, throughput {:.1} kbit/s",
        m.sent,
        m.prr() * 100.0,
        m.throughput_bps() / 1e3
    );
}
