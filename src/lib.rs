//! Workspace facade for the AlphaWAN reproduction.
//!
//! Re-exports every crate in the workspace so the integration tests under
//! `tests/` and the runnable examples under `examples/` can exercise the
//! whole system through a single dependency. Library users should depend
//! on the individual crates directly.

pub use alphawan;
pub use baselines;
pub use chaos;
pub use gateway;
pub use lora_mac;
pub use lora_phy;
pub use netserver;
pub use obs;
pub use sim;
